(* Formula simplifier — the stand-in for the SPARK Simplifier.

   The paper measures both generated VC size and simplified VC size
   (Fig. 2(d)/(e)); this module defines "simplified".  It performs constant
   folding, boolean and comparison reduction, linear-arithmetic
   normalisation, McCarthy select/store reduction, xor-chain cancellation,
   and bounded quantifier expansion.

   Terms are hash-consed (see formula.ml): inspection matches on [.node],
   construction goes through the smart constructors, and term comparisons
   use [Formula.equal]/[Formula.compare] — never the polymorphic ones,
   which would look at interning tags.  [simplify] is memoized per domain
   on node identity; [simplify_nomemo] is the raw fixpoint, kept for
   differential testing. *)

open Formula

(* ---------------- linear forms ---------------- *)

(* A linear form is a constant plus atom*coefficient products, where an atom
   is any non-arithmetic subterm.  Only used over numeric terms. *)

module Lin = struct
  type t = { const : int; atoms : (Formula.t * int) list }

  let of_const n = { const = n; atoms = [] }
  let of_atom a = { const = 0; atoms = [ (a, 1) ] }

  let rec assoc_opt t = function
    | [] -> None
    | (t', c) :: rest -> if Formula.equal t t' then Some c else assoc_opt t rest

  let remove_assoc t l =
    List.filter (fun (t', _) -> not (Formula.equal t t')) l

  let add a b =
    let atoms =
      List.fold_left
        (fun acc (t, c) ->
          match assoc_opt t acc with
          | Some c' -> (t, c + c') :: remove_assoc t acc
          | None -> (t, c) :: acc)
        a.atoms b.atoms
    in
    { const = a.const + b.const; atoms = List.filter (fun (_, c) -> c <> 0) atoms }

  let scale k a =
    if k = 0 then of_const 0
    else { const = k * a.const; atoms = List.map (fun (t, c) -> (t, k * c)) a.atoms }

  let neg = scale (-1)
  let sub a b = add a (neg b)
  let is_const a = a.atoms = []

  (* canonical term rebuild: atoms sorted for deterministic output *)
  let to_term a =
    let atoms =
      List.sort
        (fun (t1, c1) (t2, c2) ->
          let c = Formula.compare t1 t2 in
          if c <> 0 then c else Stdlib.compare c1 c2)
        a.atoms
    in
    let term_of (t, c) =
      if c = 1 then t
      else if c = -1 then app Neg [ t ]
      else app Mul [ num c; t ]
    in
    match (atoms, a.const) with
    | [], n -> num n
    | first :: rest, n ->
        let base = List.fold_left (fun acc at -> app Add [ acc; term_of at ]) (term_of first) rest in
        if n = 0 then base
        else if n > 0 then app Add [ base; num n ]
        else app Sub [ base; num (-n) ]
end

(* Attempt to view a term as a linear form.  Non-arithmetic heads become
   atoms; [None] is returned for terms that are clearly non-numeric
   (booleans, stores), so comparisons over them are left alone. *)
let rec linearize t : Lin.t option =
  match t.node with
  | Int n -> Some (Lin.of_const n)
  | Bool _ -> None
  | App (Add, [ a; b ]) -> lin2 a b Lin.add
  | App (Sub, [ a; b ]) -> lin2 a b Lin.sub
  | App (Neg, [ a ]) -> Option.map Lin.neg (linearize a)
  | App (Mul, [ { node = Int k; _ }; b ]) -> Option.map (Lin.scale k) (linearize b)
  | App (Mul, [ a; { node = Int k; _ } ]) -> Option.map (Lin.scale k) (linearize a)
  | App (Mul, _) | App (Div, _) | App (Mod_op, _) -> Some (Lin.of_atom t)
  | App ((Eq | Ne | Lt | Le | Gt | Ge | And | Or | Not | Implies), _) -> None
  | App (Store, _) -> None
  | Var _ | App ((Select | Uf _ | Wrap _ | Band _ | Bor _ | Bxor _ | Bnot _ | Shl _ | Shr _), _) ->
      Some (Lin.of_atom t)
  | App (_, _) -> Some (Lin.of_atom t)
  | Ite _ -> Some (Lin.of_atom t)
  | Forall _ | Exists _ -> None

and lin2 a b f =
  match (linearize a, linearize b) with
  | Some la, Some lb -> Some (f la lb)
  | _ -> None

(** The canonical difference a - b as a linear form, when both numeric. *)
let difference a b =
  match (linearize a, linearize b) with
  | Some la, Some lb -> Some (Lin.sub la lb)
  | _ -> None

(* ---------------- xor / and / or chains ---------------- *)

let rec flatten_chain op t =
  match t.node with
  | App (o, [ a; b ]) when o = op -> flatten_chain op a @ flatten_chain op b
  | _ -> [ t ]

(* xor chains: sort operands, cancel equal pairs, drop zeros *)
let rebuild_xor m operands =
  let sorted = List.sort Formula.compare operands in
  let rec cancel = function
    | a :: b :: rest when Formula.equal a b -> cancel rest
    | a :: rest -> a :: cancel rest
    | [] -> []
  in
  let remaining =
    cancel sorted
    |> List.filter (fun t -> match t.node with Int 0 -> false | _ -> true)
  in
  match remaining with
  | [] -> num 0
  | first :: rest ->
      List.fold_left (fun acc t -> app (Bxor m) [ acc; t ]) first rest

(* ---------------- one bottom-up simplification pass ---------------- *)

let expand_limit = 16

let wrap_int m n = if m <= 0 then n else ((n mod m) + m) mod m

(* Is this term certainly within [0, m)?  Conservative syntactic check used
   to drop redundant Wrap nodes. *)
let rec in_range m t =
  match t.node with
  | Int n -> n >= 0 && n < m
  | App (Wrap m', [ _ ]) -> m' = m
  | App ((Band m' | Bor m' | Bxor m' | Bnot m' | Shl m' | Shr m'), _) -> m' = m && m' > 0
  | Ite (_, a, b) -> in_range m a && in_range m b
  | _ -> false

let step t =
  match t.node with
  (* ---- constant folding: arithmetic ---- *)
  | App (Add, [ { node = Int a; _ }; { node = Int b; _ } ]) -> num (a + b)
  | App (Sub, [ { node = Int a; _ }; { node = Int b; _ } ]) -> num (a - b)
  | App (Mul, [ { node = Int a; _ }; { node = Int b; _ } ]) -> num (a * b)
  | App (Div, [ { node = Int a; _ }; { node = Int b; _ } ]) when b <> 0 -> num (a / b)
  | App (Mod_op, [ { node = Int a; _ }; { node = Int b; _ } ]) when b <> 0 ->
      num (wrap_int (abs b) a)
  | App (Neg, [ { node = Int a; _ } ]) -> num (-a)
  | App (Add, [ a; { node = Int 0; _ } ]) | App (Add, [ { node = Int 0; _ }; a ]) -> a
  | App (Sub, [ a; { node = Int 0; _ } ]) -> a
  | App (Mul, [ a; { node = Int 1; _ } ]) | App (Mul, [ { node = Int 1; _ }; a ]) -> a
  | App (Mul, [ _; { node = Int 0; _ } ]) | App (Mul, [ { node = Int 0; _ }; _ ]) -> num 0
  (* canonical linear form for remaining additive terms, e.g. (i+1)-1 = i *)
  | App ((Add | Sub | Neg), _) -> (
      match linearize t with
      | Some l ->
          let t' = Lin.to_term l in
          if Formula.equal t' t then t else t'
      | None -> t)
  (* ---- wrap ---- *)
  | App (Wrap m, [ { node = Int n; _ } ]) -> num (wrap_int m n)
  | App (Wrap m, [ a ]) when in_range m a -> a
  (* ---- bit operations (operands normalised into the modulus first, so
     folding agrees with ground evaluation on negative literals) ---- *)
  | App (Band m, [ { node = Int a; _ }; { node = Int b; _ } ]) ->
      num (wrap_int m (wrap_int m a land wrap_int m b))
  | App (Bor m, [ { node = Int a; _ }; { node = Int b; _ } ]) ->
      num (wrap_int m (wrap_int m a lor wrap_int m b))
  | App (Bxor m, [ { node = Int a; _ }; { node = Int b; _ } ]) ->
      num (wrap_int m (wrap_int m a lxor wrap_int m b))
  | App (Bnot m, [ { node = Int a; _ } ]) when m > 0 -> num (m - 1 - wrap_int m a)
  | App (Shl m, [ { node = Int a; _ }; { node = Int k; _ } ]) when k >= 0 && k < 62 ->
      num (wrap_int m (wrap_int m a lsl k))
  | App (Shr m, [ { node = Int a; _ }; { node = Int k; _ } ]) when k >= 0 && k < 62 ->
      num (wrap_int m (wrap_int m a lsr k))
  | App (Bxor m, [ _; _ ]) -> rebuild_xor m (flatten_chain (Bxor m) t)
  | App (Band _, [ a; b ]) when Formula.equal a b -> a
  | App (Bor _, [ a; b ]) when Formula.equal a b -> a
  | App (Bor _, [ a; { node = Int 0; _ } ]) | App (Bor _, [ { node = Int 0; _ }; a ]) -> a
  (* ---- booleans ---- *)
  | App (And, [ { node = Bool true; _ }; a ]) | App (And, [ a; { node = Bool true; _ } ]) -> a
  | App (And, [ { node = Bool false; _ }; _ ]) | App (And, [ _; { node = Bool false; _ } ]) -> fls
  | App (And, [ a; b ]) when Formula.equal a b -> a
  | App (Or, [ { node = Bool false; _ }; a ]) | App (Or, [ a; { node = Bool false; _ } ]) -> a
  | App (Or, [ { node = Bool true; _ }; _ ]) | App (Or, [ _; { node = Bool true; _ } ]) -> tru
  | App (Or, [ a; b ]) when Formula.equal a b -> a
  | App (Not, [ { node = Bool b; _ } ]) -> bool_ (not b)
  | App (Not, [ { node = App (Not, [ a ]); _ } ]) -> a
  | App (Not, [ { node = App (Eq, [ a; b ]); _ } ]) -> app Ne [ a; b ]
  | App (Not, [ { node = App (Ne, [ a; b ]); _ } ]) -> app Eq [ a; b ]
  | App (Not, [ { node = App (Lt, [ a; b ]); _ } ]) -> app Ge [ a; b ]
  | App (Not, [ { node = App (Le, [ a; b ]); _ } ]) -> app Gt [ a; b ]
  | App (Not, [ { node = App (Gt, [ a; b ]); _ } ]) -> app Le [ a; b ]
  | App (Not, [ { node = App (Ge, [ a; b ]); _ } ]) -> app Lt [ a; b ]
  | App (Implies, [ { node = Bool true; _ }; a ]) -> a
  | App (Implies, [ { node = Bool false; _ }; _ ]) -> tru
  | App (Implies, [ _; { node = Bool true; _ } ]) -> tru
  | App (Implies, [ a; { node = Bool false; _ } ]) -> app Not [ a ]
  | App (Implies, [ a; b ]) when Formula.equal a b -> tru
  (* ---- ite ---- *)
  | Ite ({ node = Bool true; _ }, a, _) -> a
  | Ite ({ node = Bool false; _ }, _, b) -> b
  | Ite (_, a, b) when Formula.equal a b -> a
  (* ---- select / store ---- *)
  | App (Select, [ { node = App (Arrlit lo, elems); _ }; { node = Int i; _ } ])
    when i >= lo && i - lo < List.length elems ->
      List.nth elems (i - lo)
  | App (Select, [ { node = App (Store, [ arr; i; v ]); _ }; j ]) -> (
      if Formula.equal i j then v
      else
        match difference i j with
        | Some d when Lin.is_const d ->
            if d.Lin.const = 0 then v else select arr j
        | _ -> t)
  | App (Store, [ { node = App (Store, [ arr; i; _ ]); _ }; j; w ])
    when Formula.equal i j ->
      store arr j w
  (* ---- wrapped values are within [0, m) by construction ---- *)
  | App (Ge, [ { node = App (Wrap _, _); _ }; { node = Int n; _ } ]) when n <= 0 -> tru
  | App (Lt, [ { node = App (Wrap m, _); _ }; { node = Int n; _ } ]) when n >= m -> tru
  | App (Le, [ { node = App (Wrap m, _); _ }; { node = Int n; _ } ]) when n >= m - 1 -> tru
  (* ---- comparisons ---- *)
  | App (Eq, [ a; b ]) when Formula.equal a b -> tru
  | App (Ne, [ a; b ]) when Formula.equal a b -> fls
  | App (Le, [ a; b ]) when Formula.equal a b -> tru
  | App (Ge, [ a; b ]) when Formula.equal a b -> tru
  | App (Lt, [ a; b ]) when Formula.equal a b -> fls
  | App (Gt, [ a; b ]) when Formula.equal a b -> fls
  | App ((Eq | Ne | Lt | Le | Gt | Ge) as op, [ a; b ]) -> (
      match difference a b with
      | Some d when Lin.is_const d ->
          let c = d.Lin.const in
          bool_
            (match op with
            | Eq -> c = 0
            | Ne -> c <> 0
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
            | _ -> assert false)
      | Some d -> (
          (* single atom with unit coefficient: present as "atom op const" *)
          match d.Lin.atoms with
          | [ (atom, 1) ] ->
              let t' = app op [ atom; num (-d.Lin.const) ] in
              if Formula.equal t' t then t else t'
          | [ (atom, -1) ] ->
              let flipped =
                match op with
                | Eq -> Eq | Ne -> Ne
                | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
                | _ -> assert false
              in
              let t' = app flipped [ atom; num d.Lin.const ] in
              if Formula.equal t' t then t else t'
          | _ -> t)
      | None -> t)
  (* ---- quantifiers ---- *)
  | Forall (x, { node = Int lo; _ }, { node = Int hi; _ }, body) ->
      if hi < lo then tru
      else if hi - lo + 1 <= expand_limit then
        conj (List.init (hi - lo + 1) (fun k -> Formula.subst x (num (lo + k)) body))
      else t
  | Exists (x, { node = Int lo; _ }, { node = Int hi; _ }, body) ->
      if hi < lo then fls
      else if hi - lo + 1 <= expand_limit then
        let cases = List.init (hi - lo + 1) (fun k -> Formula.subst x (num (lo + k)) body) in
        List.fold_left (fun acc c -> app Or [ acc; c ]) fls cases
      else t
  | Forall (_, _, _, { node = Bool true; _ }) -> tru
  | Exists (_, _, _, { node = Bool false; _ }) -> fls
  | _ -> t

let max_passes = 12

(* cumulative count of productive rewrite passes, for profiling: telemetry
   reads deltas around proof attempts to attribute simplifier effort.
   Atomic, because the proof farm simplifies on several domains at once;
   per-attempt deltas are then only approximate under concurrency, but
   the process total stays exact.  Memo hits replay a cached result and
   so add no passes. *)
let passes = Atomic.make 0

let rewrite_passes () = Atomic.get passes

(* The fixpoint, also reporting whether it converged (as opposed to being
   cut off by [max_passes]) and the intermediate terms it went through. *)
let fixpoint t0 =
  let rec go n acc t =
    if n >= max_passes then (t, acc, false)
    else
      let t' = Formula.map step t in
      if Formula.equal t' t then (t, acc, true)
      else begin
        Atomic.incr passes;
        go (n + 1) (t' :: acc) t'
      end
  in
  go 0 [] t0

let simplify_nomemo t =
  let r, _, _ = fixpoint t in
  r

(* Per-domain memo on node identity.  The input-to-result entry is always
   sound (simplify is deterministic).  Intermediate terms map to the same
   result only when the fixpoint converged: a run cut off at [max_passes]
   may leave an intermediate that a fresh budget would simplify further,
   and caching that would change results between warm and cold runs. *)
let memo_cap = 1 lsl 17

let memo_key : (int * int, Formula.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let memo_add memo k r =
  if Hashtbl.length memo < memo_cap then Hashtbl.replace memo k r

let simplify t =
  let memo = Domain.DLS.get memo_key in
  let k = (t.dom, t.tag) in
  match Hashtbl.find_opt memo k with
  | Some r -> r
  | None ->
      let r, intermediates, converged = fixpoint t in
      memo_add memo k r;
      if converged then
        List.iter (fun t' -> memo_add memo (t'.dom, t'.tag) r) intermediates;
      r

(** Simplify a VC: hypotheses and goal; drops trivially-true hypotheses and
    detects trivially-true goals early. *)
let simplify_vc (vc : vc) =
  let hyps =
    vc.vc_hyps |> List.map simplify
    |> List.concat_map (fun h -> flatten_chain And h)
    |> List.filter (fun h -> match h.node with Bool true -> false | _ -> true)
  in
  let goal = simplify vc.vc_goal in
  if List.exists (fun h -> match h.node with Bool false -> true | _ -> false) hyps
  then { vc with vc_hyps = []; vc_goal = tru }
  else { vc with vc_hyps = hyps; vc_goal = goal }
