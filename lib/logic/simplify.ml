(* Formula simplifier — the stand-in for the SPARK Simplifier.

   The paper measures both generated VC size and simplified VC size
   (Fig. 2(d)/(e)); this module defines "simplified".  It performs constant
   folding, boolean and comparison reduction, linear-arithmetic
   normalisation, McCarthy select/store reduction, xor-chain cancellation,
   and bounded quantifier expansion. *)

open Formula

(* ---------------- linear forms ---------------- *)

(* A linear form is a constant plus atom*coefficient products, where an atom
   is any non-arithmetic subterm.  Only used over numeric terms. *)

module Lin = struct
  type t = { const : int; atoms : (Formula.t * int) list }

  let of_const n = { const = n; atoms = [] }
  let of_atom a = { const = 0; atoms = [ (a, 1) ] }

  let add a b =
    let atoms =
      List.fold_left
        (fun acc (t, c) ->
          match List.assoc_opt t acc with
          | Some c' -> (t, c + c') :: List.remove_assoc t acc
          | None -> (t, c) :: acc)
        a.atoms b.atoms
    in
    { const = a.const + b.const; atoms = List.filter (fun (_, c) -> c <> 0) atoms }

  let scale k a =
    if k = 0 then of_const 0
    else { const = k * a.const; atoms = List.map (fun (t, c) -> (t, k * c)) a.atoms }

  let neg = scale (-1)
  let sub a b = add a (neg b)
  let is_const a = a.atoms = []

  (* canonical term rebuild: atoms sorted for deterministic output *)
  let to_term a =
    let atoms = List.sort compare a.atoms in
    let term_of (t, c) =
      if c = 1 then t
      else if c = -1 then App (Neg, [ t ])
      else App (Mul, [ Int c; t ])
    in
    match (atoms, a.const) with
    | [], n -> Int n
    | first :: rest, n ->
        let base = List.fold_left (fun acc at -> App (Add, [ acc; term_of at ])) (term_of first) rest in
        if n = 0 then base
        else if n > 0 then App (Add, [ base; Int n ])
        else App (Sub, [ base; Int (-n) ])
end

(* Attempt to view a term as a linear form.  Non-arithmetic heads become
   atoms; [None] is returned for terms that are clearly non-numeric
   (booleans, stores), so comparisons over them are left alone. *)
let rec linearize t : Lin.t option =
  match t with
  | Int n -> Some (Lin.of_const n)
  | Bool _ -> None
  | App (Add, [ a; b ]) -> lin2 a b Lin.add
  | App (Sub, [ a; b ]) -> lin2 a b Lin.sub
  | App (Neg, [ a ]) -> Option.map Lin.neg (linearize a)
  | App (Mul, [ Int k; b ]) -> Option.map (Lin.scale k) (linearize b)
  | App (Mul, [ a; Int k ]) -> Option.map (Lin.scale k) (linearize a)
  | App (Mul, _) | App (Div, _) | App (Mod_op, _) -> Some (Lin.of_atom t)
  | App ((Eq | Ne | Lt | Le | Gt | Ge | And | Or | Not | Implies), _) -> None
  | App (Store, _) -> None
  | Var _ | App ((Select | Uf _ | Wrap _ | Band _ | Bor _ | Bxor _ | Bnot _ | Shl _ | Shr _), _) ->
      Some (Lin.of_atom t)
  | App (_, _) -> Some (Lin.of_atom t)
  | Ite _ -> Some (Lin.of_atom t)
  | Forall _ | Exists _ -> None

and lin2 a b f =
  match (linearize a, linearize b) with
  | Some la, Some lb -> Some (f la lb)
  | _ -> None

(** The canonical difference a - b as a linear form, when both numeric. *)
let difference a b =
  match (linearize a, linearize b) with
  | Some la, Some lb -> Some (Lin.sub la lb)
  | _ -> None

(* ---------------- xor / and / or chains ---------------- *)

let rec flatten_chain op t =
  match t with
  | App (o, [ a; b ]) when o = op -> flatten_chain op a @ flatten_chain op b
  | _ -> [ t ]

(* xor chains: sort operands, cancel equal pairs, drop zeros *)
let rebuild_xor m operands =
  let sorted = List.sort compare operands in
  let rec cancel = function
    | a :: b :: rest when a = b -> cancel rest
    | a :: rest -> a :: cancel rest
    | [] -> []
  in
  let remaining = cancel sorted |> List.filter (fun t -> t <> Int 0) in
  match remaining with
  | [] -> Int 0
  | first :: rest ->
      List.fold_left (fun acc t -> App (Bxor m, [ acc; t ])) first rest

(* ---------------- one bottom-up simplification pass ---------------- *)

let expand_limit = 16

let wrap_int m n = if m <= 0 then n else ((n mod m) + m) mod m

(* Is this term certainly within [0, m)?  Conservative syntactic check used
   to drop redundant Wrap nodes. *)
let rec in_range m t =
  match t with
  | Int n -> n >= 0 && n < m
  | App (Wrap m', [ _ ]) -> m' = m
  | App ((Band m' | Bor m' | Bxor m' | Bnot m' | Shl m' | Shr m'), _) -> m' = m && m' > 0
  | Ite (_, a, b) -> in_range m a && in_range m b
  | _ -> false

let step t =
  match t with
  (* ---- constant folding: arithmetic ---- *)
  | App (Add, [ Int a; Int b ]) -> Int (a + b)
  | App (Sub, [ Int a; Int b ]) -> Int (a - b)
  | App (Mul, [ Int a; Int b ]) -> Int (a * b)
  | App (Div, [ Int a; Int b ]) when b <> 0 -> Int (a / b)
  | App (Mod_op, [ Int a; Int b ]) when b <> 0 -> Int (wrap_int (abs b) a)
  | App (Neg, [ Int a ]) -> Int (-a)
  | App (Add, [ a; Int 0 ]) | App (Add, [ Int 0; a ]) -> a
  | App (Sub, [ a; Int 0 ]) -> a
  | App (Mul, [ a; Int 1 ]) | App (Mul, [ Int 1; a ]) -> a
  | App (Mul, [ _; Int 0 ]) | App (Mul, [ Int 0; _ ]) -> Int 0
  (* canonical linear form for remaining additive terms, e.g. (i+1)-1 = i *)
  | App ((Add | Sub | Neg), _) as t -> (
      match linearize t with
      | Some l ->
          let t' = Lin.to_term l in
          if t' = t then t else t'
      | None -> t)
  (* ---- wrap ---- *)
  | App (Wrap m, [ Int n ]) -> Int (wrap_int m n)
  | App (Wrap m, [ a ]) when in_range m a -> a
  (* ---- bit operations (operands normalised into the modulus first, so
     folding agrees with ground evaluation on negative literals) ---- *)
  | App (Band m, [ Int a; Int b ]) -> Int (wrap_int m (wrap_int m a land wrap_int m b))
  | App (Bor m, [ Int a; Int b ]) -> Int (wrap_int m (wrap_int m a lor wrap_int m b))
  | App (Bxor m, [ Int a; Int b ]) -> Int (wrap_int m (wrap_int m a lxor wrap_int m b))
  | App (Bnot m, [ Int a ]) when m > 0 -> Int (m - 1 - wrap_int m a)
  | App (Shl m, [ Int a; Int k ]) when k >= 0 && k < 62 -> Int (wrap_int m (wrap_int m a lsl k))
  | App (Shr m, [ Int a; Int k ]) when k >= 0 && k < 62 -> Int (wrap_int m (wrap_int m a lsr k))
  | App (Bxor m, [ _; _ ]) as t -> rebuild_xor m (flatten_chain (Bxor m) t)
  | App (Band _, [ a; b ]) when a = b -> a
  | App (Bor _, [ a; b ]) when a = b -> a
  | App (Bor _, [ a; Int 0 ]) | App (Bor _, [ Int 0; a ]) -> a
  (* ---- booleans ---- *)
  | App (And, [ Bool true; a ]) | App (And, [ a; Bool true ]) -> a
  | App (And, [ Bool false; _ ]) | App (And, [ _; Bool false ]) -> fls
  | App (And, [ a; b ]) when a = b -> a
  | App (Or, [ Bool false; a ]) | App (Or, [ a; Bool false ]) -> a
  | App (Or, [ Bool true; _ ]) | App (Or, [ _; Bool true ]) -> tru
  | App (Or, [ a; b ]) when a = b -> a
  | App (Not, [ Bool b ]) -> Bool (not b)
  | App (Not, [ App (Not, [ a ]) ]) -> a
  | App (Not, [ App (Eq, [ a; b ]) ]) -> App (Ne, [ a; b ])
  | App (Not, [ App (Ne, [ a; b ]) ]) -> App (Eq, [ a; b ])
  | App (Not, [ App (Lt, [ a; b ]) ]) -> App (Ge, [ a; b ])
  | App (Not, [ App (Le, [ a; b ]) ]) -> App (Gt, [ a; b ])
  | App (Not, [ App (Gt, [ a; b ]) ]) -> App (Le, [ a; b ])
  | App (Not, [ App (Ge, [ a; b ]) ]) -> App (Lt, [ a; b ])
  | App (Implies, [ Bool true; a ]) -> a
  | App (Implies, [ Bool false; _ ]) -> tru
  | App (Implies, [ _; Bool true ]) -> tru
  | App (Implies, [ a; Bool false ]) -> App (Not, [ a ])
  | App (Implies, [ a; b ]) when a = b -> tru
  (* ---- ite ---- *)
  | Ite (Bool true, a, _) -> a
  | Ite (Bool false, _, b) -> b
  | Ite (_, a, b) when a = b -> a
  (* ---- select / store ---- *)
  | App (Select, [ App (Arrlit lo, elems); Int i ])
    when i >= lo && i - lo < List.length elems ->
      List.nth elems (i - lo)
  | App (Select, [ App (Store, [ arr; i; v ]); j ]) -> (
      if i = j then v
      else
        match difference i j with
        | Some d when Lin.is_const d ->
            if d.Lin.const = 0 then v else App (Select, [ arr; j ])
        | _ -> t)
  | App (Store, [ App (Store, [ arr; i; _ ]); j; w ]) when i = j ->
      App (Store, [ arr; j; w ])
  (* ---- wrapped values are within [0, m) by construction ---- *)
  | App (Ge, [ App (Wrap _, _); Int n ]) when n <= 0 -> tru
  | App (Lt, [ App (Wrap m, _); Int n ]) when n >= m -> tru
  | App (Le, [ App (Wrap m, _); Int n ]) when n >= m - 1 -> tru
  (* ---- comparisons ---- *)
  | App (Eq, [ a; b ]) when a = b -> tru
  | App (Ne, [ a; b ]) when a = b -> fls
  | App (Le, [ a; b ]) when a = b -> tru
  | App (Ge, [ a; b ]) when a = b -> tru
  | App (Lt, [ a; b ]) when a = b -> fls
  | App (Gt, [ a; b ]) when a = b -> fls
  | App ((Eq | Ne | Lt | Le | Gt | Ge) as op, [ a; b ]) -> (
      match difference a b with
      | Some d when Lin.is_const d ->
          let c = d.Lin.const in
          Bool
            (match op with
            | Eq -> c = 0
            | Ne -> c <> 0
            | Lt -> c < 0
            | Le -> c <= 0
            | Gt -> c > 0
            | Ge -> c >= 0
            | _ -> assert false)
      | Some d -> (
          (* single atom with unit coefficient: present as "atom op const" *)
          match d.Lin.atoms with
          | [ (atom, 1) ] ->
              let rhs = Int (-d.Lin.const) in
              if App (op, [ atom; rhs ]) = t then t else App (op, [ atom; rhs ])
          | [ (atom, -1) ] ->
              let flipped =
                match op with
                | Eq -> Eq | Ne -> Ne
                | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
                | _ -> assert false
              in
              let rhs = Int d.Lin.const in
              if App (flipped, [ atom; rhs ]) = t then t
              else App (flipped, [ atom; rhs ])
          | _ -> t)
      | None -> t)
  (* ---- quantifiers ---- *)
  | Forall (x, Int lo, Int hi, body) ->
      if hi < lo then tru
      else if hi - lo + 1 <= expand_limit then
        conj (List.init (hi - lo + 1) (fun k -> Formula.subst x (Int (lo + k)) body))
      else t
  | Exists (x, Int lo, Int hi, body) ->
      if hi < lo then fls
      else if hi - lo + 1 <= expand_limit then
        let cases = List.init (hi - lo + 1) (fun k -> Formula.subst x (Int (lo + k)) body) in
        List.fold_left (fun acc c -> App (Or, [ acc; c ])) fls cases
      else t
  | Forall (_, _, _, Bool true) -> tru
  | Exists (_, _, _, Bool false) -> fls
  | t -> t

let max_passes = 12

(* cumulative count of productive rewrite passes, for profiling: telemetry
   reads deltas around proof attempts to attribute simplifier effort.
   Atomic, because the proof farm simplifies on several domains at once;
   per-attempt deltas are then only approximate under concurrency, but
   the process total stays exact. *)
let passes = Atomic.make 0

let rewrite_passes () = Atomic.get passes

let simplify t =
  let rec fixpoint n t =
    if n >= max_passes then t
    else
      let t' = Formula.map step t in
      if t' = t then t
      else begin
        Atomic.incr passes;
        fixpoint (n + 1) t'
      end
  in
  fixpoint 0 t

(** Simplify a VC: hypotheses and goal; drops trivially-true hypotheses and
    detects trivially-true goals early. *)
let simplify_vc (vc : vc) =
  let hyps =
    vc.vc_hyps |> List.map simplify
    |> List.concat_map (fun h -> flatten_chain And h)
    |> List.filter (fun h -> h <> Bool true)
  in
  let goal = simplify vc.vc_goal in
  if List.exists (fun h -> h = Bool false) hyps then { vc with vc_hyps = []; vc_goal = tru }
  else { vc with vc_hyps = hyps; vc_goal = goal }
