(** Automatic discharger for verification conditions — the stand-in for the
    SPARK proof checker, with the paper's "straightforward manual
    interventions" modelled as explicit hint capabilities so automation can
    be measured. *)

type outcome =
  | Proved
  | Unknown of string  (** reason / residual goal *)
  | Timeout of float   (** wall-clock deadline hit after this many seconds *)

(** Interactive steps (§6.2.3): each hint enables one prover capability. *)
type hint =
  | Hint_induction
      (** split the last index off quantified goals and case-split
          unresolved stores — "induction on loop invariants" *)
  | Hint_apply_hyp
      (** instantiate quantified hypotheses at goal index terms —
          "application of preconditions" *)
  | Hint_unfold of string * string list * Formula.t
      (** function name, formals, defining body: definitional rewriting *)

type config = {
  interp : (string -> int list -> int option) option;
      (** evaluate a program function on ground integer arguments *)
  max_split : int;    (** widest range eligible for case splitting *)
  max_steps : int;    (** proof-search budget *)
  deadline_s : float option;
      (** per-VC wall-clock budget: the search loop checks a monotonic
          clock ({!Clock.now}) and answers {!Timeout} once exceeded *)
}

val default_config : config

val eval_ground : config -> Formula.t -> int option
(** Ground integer evaluation (consults [interp] for program functions). *)

val eval_ground_bool : config -> Formula.t -> bool option

type proof_result = {
  pr_vc : Formula.vc;
  pr_outcome : outcome;
  pr_hints_used : int;   (** 0 = fully automatic *)
  pr_time : float;       (** seconds on the monotonic clock, never negative *)
  pr_steps : int;        (** search steps spent across all capability levels *)
}

val prove_vc : ?cfg:config -> ?hints:hint list -> Formula.vc -> proof_result
(** Try automatically first; each listed hint then enables one more
    capability (a capability ladder), so [pr_hints_used] counts the
    interactive steps a VC needed. *)

val is_proved : proof_result -> bool

val pp_outcome : outcome Fmt.t
