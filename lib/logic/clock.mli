(** Monotonic time for proof-search deadlines and telemetry timestamps.

    [Unix.gettimeofday] can step backwards (NTP adjustment, manual clock
    change); a deadline computed against it could then never fire, or an
    elapsed time could come out negative.  [now] clamps the time source to
    be non-decreasing within the process, which is all budget enforcement
    needs: durations are never negative and deadlines always eventually
    trigger.

    The source is injectable: tests install a scripted clock so deadline
    and telemetry tests are deterministic instead of sleeping on the wall
    clock. *)

val now : unit -> float
(** Seconds, non-decreasing across calls within this process. *)

val set_source : (unit -> float) -> unit
(** Replace the time source (default [Unix.gettimeofday]) and restart the
    monotone clamp, so a scripted clock may start below previously
    observed wall-clock values.  The clamp still applies: a source that
    steps backwards is held at its high-water mark. *)

val reset_source : unit -> unit
(** Restore the wall-clock source. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** [with_source f body] runs [body] with [f] installed as the source,
    restoring the previous source (and its monotone high-water mark) on
    exit, including exceptional exit. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], never negative. *)

val deadline : float option -> float
(** [deadline (Some s)] is the absolute clock value [s] seconds from now;
    [deadline None] is [infinity] (no deadline). *)

val expired : float -> bool
(** [expired d] is true once [now () > d]. *)
