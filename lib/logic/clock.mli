(** Monotonic time for proof-search deadlines.

    [Unix.gettimeofday] can step backwards (NTP adjustment, manual clock
    change); a deadline computed against it could then never fire, or an
    elapsed time could come out negative.  [now] clamps the wall clock to
    be non-decreasing within the process, which is all budget enforcement
    needs: durations are never negative and deadlines always eventually
    trigger. *)

val now : unit -> float
(** Seconds, non-decreasing across calls within this process. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0], never negative. *)

val deadline : float option -> float
(** [deadline (Some s)] is the absolute clock value [s] seconds from now;
    [deadline None] is [infinity] (no deadline). *)

val expired : float -> bool
(** [expired d] is true once [now () > d]. *)
