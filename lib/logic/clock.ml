(* Monotonic clamp over an injectable time source: the OCaml stdlib
   exposes no monotonic clock and we add no dependencies, so we make the
   source (gettimeofday by default) monotone by never letting it go
   backwards within the process.  Tests install a scripted source with
   [set_source]/[with_source] so deadline and telemetry behaviour is
   deterministic instead of sleeping on the wall clock.

   The high-water mark is an [Atomic] updated by compare-and-set: the
   proof farm polls deadlines from several domains at once, and a plain
   ref could lose a later time to a racing earlier store, letting the
   clamp step backwards.  The CAS loop keeps [now] lock-free on the
   prover's hot path. *)

let wall_clock = Unix.gettimeofday

let source = ref wall_clock

let last = Atomic.make neg_infinity

let rec raise_to t =
  let cur = Atomic.get last in
  if t <= cur then cur
  else if Atomic.compare_and_set last cur t then t
  else raise_to t

let now () = raise_to (!source ())

let set_source f =
  source := f;
  (* a fresh source restarts the monotone clamp: a test clock starting at
     0.0 must not be pinned below the wall-clock time already observed *)
  Atomic.set last neg_infinity

let reset_source () = set_source wall_clock

let with_source f body =
  let saved_source = !source and saved_last = Atomic.get last in
  set_source f;
  Fun.protect
    ~finally:(fun () ->
      source := saved_source;
      Atomic.set last saved_last)
    body

let elapsed t0 = Float.max 0.0 (now () -. t0)

let deadline = function Some s -> now () +. s | None -> infinity

let expired d = now () > d
