(* Monotonic clamp over the wall clock: the OCaml stdlib exposes no
   monotonic clock and we add no dependencies, so we make gettimeofday
   monotone by never letting it go backwards within the process. *)

let last = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !last then last := t;
  !last

let elapsed t0 = Float.max 0.0 (now () -. t0)

let deadline = function Some s -> now () +. s | None -> infinity

let expired d = now () > d
