(* First-order terms and formulas for verification conditions.

   The language mirrors what weakest-precondition generation over MiniSpark
   needs: linear integer arithmetic, modular (wrapping) arithmetic and bit
   operations carrying their modulus, McCarthy array select/store, bounded
   quantifiers, and uninterpreted occurrences of program functions.

   Representation: hash-consed records.  Every structurally distinct term
   is interned once per domain (see hc.ml), so within a domain structural
   equality is physical equality, and each node carries cached attributes
   — hash, unfolded tree size, free variables, and (lazily) the content
   digest.  [tag] is the per-domain identity; it is deliberately the
   first field so the polymorphic [=] (which must never be used on terms,
   but tests on single-domain data may) fails fast on distinct terms.

   Cross-domain discipline: [hash]/[size]/[fvs] are computed structurally
   (never from tags), so they agree across domains; [tag]/[dom] do not.
   Smart constructors localize foreign children, and [equal]/[compare]
   fall back to a structural walk when the domains differ. *)

type t = {
  tag : int;
  hash : int;
  size : int;
  node : node;
  fvs : string list;
  mutable digest_memo : string;
  dom : int;
}

and node =
  | Int of int
  | Bool of bool
  | Var of string
  | App of op * t list
  | Ite of t * t * t
  | Forall of string * t * t * t  (** var, lo, hi, body *)
  | Exists of string * t * t * t

and op =
  | Add | Sub | Mul | Div | Mod_op
  | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not | Implies
  | Band of int | Bor of int | Bxor of int | Bnot of int
  | Shl of int | Shr of int   (** int payload: the modulus of the left operand, 0 = unbounded *)
  | Wrap of int               (** reduce into [0, m) *)
  | Select | Store
  | Arrlit of int             (** array literal; payload = first index *)
  | Uf of string              (** program function symbol *)

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Rebuild a list only if some element changed — callers rely on the
   physical-identity test to skip re-interning untouched spines. *)
let rec map_sharing f l =
  match l with
  | [] -> []
  | x :: xs ->
      let x' = f x in
      let xs' = map_sharing f xs in
      if x' == x && xs' == xs then l else x' :: xs'

(* Structural hash from the children's cached hashes, one mixing step
   per node.  Tags must not leak in: the hash has to agree for the same
   term interned by different domains. *)
let hash_node node =
  (match node with
  | Int n -> Hashtbl.hash (0, n)
  | Bool b -> Hashtbl.hash (1, b)
  | Var x -> Hashtbl.hash (2, x)
  | App (op, args) ->
      List.fold_left
        (fun acc a -> (acc * 131) + a.hash)
        (Hashtbl.hash (3, op))
        args
  | Ite (c, a, b) -> (((4 * 131) + c.hash) * 131 + a.hash) * 131 + b.hash
  | Forall (x, lo, hi, body) ->
      ((((Hashtbl.hash (5, x) * 131) + lo.hash) * 131 + hi.hash) * 131)
      + body.hash
  | Exists (x, lo, hi, body) ->
      ((((Hashtbl.hash (6, x) * 131) + lo.hash) * 131 + hi.hash) * 131)
      + body.hash)
  land max_int

let size_node = function
  | Int _ | Bool _ | Var _ -> 1
  | App (_, args) -> List.fold_left (fun acc a -> acc + a.size) 1 args
  | Ite (c, a, b) -> 1 + c.size + a.size + b.size
  | Forall (_, lo, hi, body) | Exists (_, lo, hi, body) ->
      1 + lo.size + hi.size + body.size

(* Free-variable sets are sorted-uniq string lists merged with maximal
   physical sharing (a node whose fvs equal a child's reuse that list). *)
let rec union_fvs a b =
  match (a, b) with
  | [], ys -> ys
  | xs, [] -> xs
  | x :: xs, y :: ys ->
      let c = String.compare x y in
      if c = 0 then
        let r = union_fvs xs ys in
        if r == xs then a else x :: r
      else if c < 0 then
        let r = union_fvs xs b in
        if r == xs then a else x :: r
      else
        let r = union_fvs a ys in
        if r == ys then b else y :: r

let rec remove_fv x l =
  match l with
  | [] -> []
  | y :: ys ->
      let c = String.compare y x in
      if c = 0 then ys
      else if c < 0 then
        let r = remove_fv x ys in
        if r == ys then l else y :: r
      else l

let rec mem_fv x = function
  | [] -> false
  | y :: ys ->
      let c = String.compare y x in
      if c < 0 then mem_fv x ys else c = 0

let fvs_node = function
  | Int _ | Bool _ -> []
  | Var x -> [ x ]
  | App (_, args) -> List.fold_left (fun acc a -> union_fvs acc a.fvs) [] args
  | Ite (c, a, b) -> union_fvs (union_fvs c.fvs a.fvs) b.fvs
  | Forall (x, lo, hi, body) | Exists (x, lo, hi, body) ->
      union_fvs (union_fvs lo.fvs hi.fvs) (remove_fv x body.fvs)

(* Shallow equality for the interning table: children are compared with
   [==], which is complete because they are localized and interned
   before a candidate node is built. *)
let shallow_equal n1 n2 =
  match (n1, n2) with
  | Int a, Int b -> a = b
  | Bool a, Bool b -> a = b
  | Var a, Var b -> String.equal a b
  | App (o1, a1), App (o2, a2) ->
      o1 = o2
      &&
      let rec eq l1 l2 =
        match (l1, l2) with
        | [], [] -> true
        | x :: xs, y :: ys -> x == y && eq xs ys
        | _ -> false
      in
      eq a1 a2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) -> c1 == c2 && a1 == a2 && b1 == b2
  | Forall (x1, l1, h1, b1), Forall (x2, l2, h2, b2)
  | Exists (x1, l1, h1, b1), Exists (x2, l2, h2, b2) ->
      String.equal x1 x2 && l1 == l2 && h1 == h2 && b1 == b2
  | _ -> false

module Interner = Hc.Make (struct
  type nonrec t = t

  let equal a b = shallow_equal a.node b.node
  let hash t = t.hash
end)

(* Localization memo: (source domain, source tag) -> local node.  Tags
   are never reused, so stale entries can only waste space, never alias;
   the cap bounds that waste. *)
let localize_memo : (int * int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let localize_cap = 1 lsl 17

let rec mk node =
  let it = Interner.interner () in
  let my = Interner.domain_id it in
  let node =
    match node with
    | Int _ | Bool _ | Var _ -> node
    | App (op, args) ->
        let args' = map_sharing (localize_to my) args in
        if args' == args then node else App (op, args')
    | Ite (c, a, b) ->
        let c' = localize_to my c
        and a' = localize_to my a
        and b' = localize_to my b in
        if c' == c && a' == a && b' == b then node else Ite (c', a', b')
    | Forall (x, lo, hi, body) ->
        let lo' = localize_to my lo
        and hi' = localize_to my hi
        and body' = localize_to my body in
        if lo' == lo && hi' == hi && body' == body then node
        else Forall (x, lo', hi', body')
    | Exists (x, lo, hi, body) ->
        let lo' = localize_to my lo
        and hi' = localize_to my hi
        and body' = localize_to my body in
        if lo' == lo && hi' == hi && body' == body then node
        else Exists (x, lo', hi', body')
  in
  let h = hash_node node in
  let probe =
    { tag = -1; hash = h; size = 0; node; fvs = []; digest_memo = ""; dom = my }
  in
  Interner.find_or_add it ~probe ~build:(fun () ->
      {
        tag = Interner.fresh_tag it;
        hash = h;
        size = size_node node;
        node;
        fvs = fvs_node node;
        digest_memo = "";
        dom = my;
      })

and localize_to my t =
  if t.dom = my then t
  else begin
    let memo = Domain.DLS.get localize_memo in
    let k = (t.dom, t.tag) in
    match Hashtbl.find_opt memo k with
    | Some t' -> t'
    | None ->
        let t' = mk t.node in
        if Hashtbl.length memo < localize_cap then Hashtbl.add memo k t';
        t'
  end

let localize t =
  let it = Interner.interner () in
  localize_to (Interner.domain_id it) t

let live_nodes () = Interner.population (Interner.interner ())
let interned_nodes () = Interner.interns (Interner.interner ())

(* ------------------------------------------------------------------ *)
(* Smart constructors                                                  *)
(* ------------------------------------------------------------------ *)

let num n = mk (Int n)
let bool_ b = mk (Bool b)
let var x = mk (Var x)
let app op args = mk (App (op, args))
let ite c a b = mk (Ite (c, a, b))
let forall x lo hi body = mk (Forall (x, lo, hi, body))
let exists x lo hi body = mk (Exists (x, lo, hi, body))

(* Interned on the loading domain; other domains localize on use. *)
let tru = bool_ true
let fls = bool_ false

let rec conj = function
  | [] -> tru
  | [ f ] -> f
  | f :: rest -> app And [ f; conj rest ]

let implies a b = match a.node with Bool true -> b | _ -> app Implies [ a; b ]
let eq a b = app Eq [ a; b ]
let select a i = app Select [ a; i ]
let store a i v = app Store [ a; i; v ]

(* ------------------------------------------------------------------ *)
(* Identity                                                            *)
(* ------------------------------------------------------------------ *)

let hash t = t.hash

(* Same domain: interning makes [==] complete, so two distinct live
   nodes are distinct terms.  Different domains: hash-pruned structural
   walk (children interned by the same two domains recurse the same
   way). *)
let rec equal a b =
  a == b
  || (a.dom <> b.dom && a.hash = b.hash && equal_node a.node b.node)

and equal_node n1 n2 =
  match (n1, n2) with
  | Int a, Int b -> a = b
  | Bool a, Bool b -> a = b
  | Var a, Var b -> String.equal a b
  | App (o1, a1), App (o2, a2) -> o1 = o2 && List.equal equal a1 a2
  | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
      equal c1 c2 && equal a1 a2 && equal b1 b2
  | Forall (x1, l1, h1, b1), Forall (x2, l2, h2, b2)
  | Exists (x1, l1, h1, b1), Exists (x2, l2, h2, b2) ->
      String.equal x1 x2 && equal l1 l2 && equal h1 h2 && equal b1 b2
  | _ -> false

let node_rank = function
  | Int _ -> 0
  | Bool _ -> 1
  | Var _ -> 2
  | App _ -> 3
  | Ite _ -> 4
  | Forall _ -> 5
  | Exists _ -> 6

(* The order [Stdlib.compare] gave on the pre-hash-consing ADT: term
   constructors by declaration order; ops by the polymorphic order on
   the (term-free) [op] type itself — every historic sort is preserved.
   Sorting decides simplifier/prover search order, and search order
   decides step counts and proof transcripts. *)
let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Int m, Int n -> Stdlib.compare m n
    | Bool m, Bool n -> Stdlib.compare m n
    | Var x, Var y -> Stdlib.compare x y
    | App (o1, a1), App (o2, a2) ->
        let c = Stdlib.compare o1 o2 in
        if c <> 0 then c else compare_list a1 a2
    | Ite (c1, a1, b1), Ite (c2, a2, b2) ->
        let c = compare c1 c2 in
        if c <> 0 then c
        else
          let c = compare a1 a2 in
          if c <> 0 then c else compare b1 b2
    | Forall (x1, l1, h1, b1), Forall (x2, l2, h2, b2)
    | Exists (x1, l1, h1, b1), Exists (x2, l2, h2, b2) ->
        let c = Stdlib.compare x1 x2 in
        if c <> 0 then c
        else
          let c = compare l1 l2 in
          if c <> 0 then c
          else
            let c = compare h1 h2 in
            if c <> 0 then c else compare b1 b2
    | n1, n2 -> Stdlib.compare (node_rank n1) (node_rank n2)

and compare_list l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs ys

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let rec map f t =
  let t' =
    match t.node with
    | Int _ | Bool _ | Var _ -> t
    | App (op, args) ->
        let args' = map_sharing (map f) args in
        if args' == args then t else mk (App (op, args'))
    | Ite (c, a, b) ->
        let c' = map f c and a' = map f a and b' = map f b in
        if c' == c && a' == a && b' == b then t else mk (Ite (c', a', b'))
    | Forall (x, lo, hi, body) ->
        let lo' = map f lo and hi' = map f hi and body' = map f body in
        if lo' == lo && hi' == hi && body' == body then t
        else mk (Forall (x, lo', hi', body'))
    | Exists (x, lo, hi, body) ->
        let lo' = map f lo and hi' = map f hi and body' = map f body in
        if lo' == lo && hi' == hi && body' == body then t
        else mk (Exists (x, lo', hi', body'))
  in
  f t'

(* Preorder over the unfolded tree, shared subterms once per occurrence
   — consumers (conflict finders, instance collectors) depend on the
   historic visit order, so no occurrence deduplication here. *)
let rec iter f t =
  f t;
  match t.node with
  | Int _ | Bool _ | Var _ -> ()
  | App (_, args) -> List.iter (iter f) args
  | Ite (c, a, b) ->
      iter f c;
      iter f a;
      iter f b
  | Forall (_, lo, hi, body) | Exists (_, lo, hi, body) ->
      iter f lo;
      iter f hi;
      iter f body

(** Capture-naive substitution of a variable by a term (quantified variables
    shadow as expected).  The cached free-variable set prunes untouched
    subtrees in O(1); a per-call memo keyed on node identity rewrites each
    shared subterm once. *)
let subst x v t =
  let memo : (int * int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go t =
    if not (mem_fv x t.fvs) then t
    else
      let k = (t.dom, t.tag) in
      match Hashtbl.find_opt memo k with
      | Some r -> r
      | None ->
          let r =
            match t.node with
            | Var _ -> v (* x free in a Var means the Var is x *)
            | Int _ | Bool _ -> t
            | App (op, args) -> mk (App (op, map_sharing go args))
            | Ite (c, a, b) -> mk (Ite (go c, go a, go b))
            | Forall (y, lo, hi, body) ->
                if String.equal x y then mk (Forall (y, go lo, go hi, body))
                else mk (Forall (y, go lo, go hi, go body))
            | Exists (y, lo, hi, body) ->
                if String.equal x y then mk (Exists (y, go lo, go hi, body))
                else mk (Exists (y, go lo, go hi, go body))
          in
          Hashtbl.add memo k r;
          r
  in
  go t

let free_vars t = t.fvs
let node_count t = t.size

(* ------------------------------------------------------------------ *)
(* Printing (defines the byte-size metric for VCs)                     *)
(* ------------------------------------------------------------------ *)

let op_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod_op -> "mod"
  | Neg -> "-"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or" | Not -> "not" | Implies -> "->"
  | Band _ -> "band" | Bor _ -> "bor" | Bxor _ -> "bxor" | Bnot _ -> "bnot"
  | Shl _ -> "shl" | Shr _ -> "shr"
  | Wrap m -> Printf.sprintf "wrap%d" m
  | Select -> "select" | Store -> "store"
  | Arrlit lo -> Printf.sprintf "arr%d" lo
  | Uf name -> name

let rec pp ppf t =
  match t.node with
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Var x -> Fmt.string ppf x
  | App ((Add | Sub | Mul | Div | Mod_op | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Implies) as op, [ a; b ]) ->
      Fmt.pf ppf "(%a %s %a)" pp a (op_name op) pp b
  | App (Not, [ a ]) -> Fmt.pf ppf "(not %a)" pp a
  | App (Neg, [ a ]) -> Fmt.pf ppf "(- %a)" pp a
  | App (op, args) ->
      Fmt.pf ppf "%s(%a)" (op_name op) (Fmt.list ~sep:(Fmt.any ", ") pp) args
  | Ite (c, a, b) -> Fmt.pf ppf "(if %a then %a else %a)" pp c pp a pp b
  | Forall (x, lo, hi, body) ->
      Fmt.pf ppf "(forall %s in %a .. %a: %a)" x pp lo pp hi pp body
  | Exists (x, lo, hi, body) ->
      Fmt.pf ppf "(exists %s in %a .. %a: %a)" x pp lo pp hi pp body

let to_string t = Fmt.str "%a" pp t

(** Byte size of the printed form — the paper reports VC sizes in MB/KB. *)
let byte_size t = String.length (to_string t)

(* ------------------------------------------------------------------ *)
(* Canonical serialization and content digests                         *)
(* ------------------------------------------------------------------ *)

(* The printed form is ambiguous — [Var "f()"] and [App (Uf "f", [])]
   render identically — so the proof cache keys on an injective encoding
   instead: every constructor gets a distinct tag, integers are
   ';'-terminated, strings are length-prefixed, and argument lists carry
   their arity.  Two terms serialize equally iff they are structurally
   equal.  The byte format is unchanged from the plain-ADT days — only
   [vc_digest]'s composition differs (see below). *)

let add_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_op buf op =
  let c t = Buffer.add_char buf t in
  let ci t m = Buffer.add_char buf t; add_int buf m in
  match op with
  | Add -> c 'a' | Sub -> c 'b' | Mul -> c 'c' | Div -> c 'd' | Mod_op -> c 'e'
  | Neg -> c 'f'
  | Eq -> c 'g' | Ne -> c 'h' | Lt -> c 'i' | Le -> c 'j' | Gt -> c 'k' | Ge -> c 'l'
  | And -> c 'm' | Or -> c 'n' | Not -> c 'o' | Implies -> c 'p'
  | Band m -> ci 'q' m | Bor m -> ci 'r' m | Bxor m -> ci 's' m | Bnot m -> ci 't' m
  | Shl m -> ci 'u' m | Shr m -> ci 'v' m
  | Wrap m -> ci 'w' m
  | Select -> c 'x' | Store -> c 'y'
  | Arrlit lo -> ci 'z' lo
  | Uf name -> c 'U'; add_str buf name

let rec add_term buf t =
  match t.node with
  | Int n -> Buffer.add_char buf 'I'; add_int buf n
  | Bool true -> Buffer.add_char buf 'T'
  | Bool false -> Buffer.add_char buf 'F'
  | Var x -> Buffer.add_char buf 'V'; add_str buf x
  | App (op, args) ->
      Buffer.add_char buf 'A';
      add_op buf op;
      add_int buf (List.length args);
      List.iter (add_term buf) args
  | Ite (c, a, b) ->
      Buffer.add_char buf '?';
      add_term buf c; add_term buf a; add_term buf b
  | Forall (x, lo, hi, body) ->
      Buffer.add_char buf '!';
      add_str buf x;
      add_term buf lo; add_term buf hi; add_term buf body
  | Exists (x, lo, hi, body) ->
      Buffer.add_char buf 'E';
      add_str buf x;
      add_term buf lo; add_term buf hi; add_term buf body

let serialize t =
  let buf = Buffer.create 1024 in
  add_term buf t;
  Buffer.contents buf

(* Cached on the node.  A concurrent race recomputes the same hex string
   and stores it twice — idempotent, and OCaml field writes do not tear. *)
let digest t =
  match t.digest_memo with
  | "" ->
      let d = Digest.to_hex (Digest.string (serialize t)) in
      t.digest_memo <- d;
      d
  | d -> d

(* ------------------------------------------------------------------ *)
(* Verification conditions                                             *)
(* ------------------------------------------------------------------ *)

type vc_kind =
  | Vc_postcondition
  | Vc_precondition_call   (** callee precondition holds at a call site *)
  | Vc_assert
  | Vc_invariant_init
  | Vc_invariant_preserve
  | Vc_index_check
  | Vc_range_check
  | Vc_div_check
  | Vc_overflow_check
  | Vc_equivalence
      (** old fragment = new fragment of a certified refactoring step *)

let vc_kind_name = function
  | Vc_postcondition -> "postcondition"
  | Vc_precondition_call -> "call-precondition"
  | Vc_assert -> "assert"
  | Vc_invariant_init -> "invariant-init"
  | Vc_invariant_preserve -> "invariant-preserve"
  | Vc_index_check -> "index-check"
  | Vc_range_check -> "range-check"
  | Vc_div_check -> "div-check"
  | Vc_overflow_check -> "overflow-check"
  | Vc_equivalence -> "equivalence"

type vc = {
  vc_name : string;        (** e.g. "encrypt.3" *)
  vc_sub : string;         (** owning subprogram *)
  vc_kind : vc_kind;
  vc_hyps : t list;
  vc_goal : t;
}

let vc_formula vc = implies (conj vc.vc_hyps) vc.vc_goal

let vc_byte_size vc =
  List.fold_left (fun acc h -> acc + byte_size h + 1) (byte_size vc.vc_goal) vc.vc_hyps

(** Printed lines of one VC — the paper's "maximum length of verification
    conditions" metric (>10,000 lines at block 1, 68 at block 14, 126 with
    full annotations). *)
let vc_line_count vc =
  let line_width = 78 in
  List.fold_left
    (fun acc h -> acc + 1 + (byte_size h / line_width))
    (1 + (byte_size vc.vc_goal / line_width))
    vc.vc_hyps

(* Hypotheses are digested as an explicit list (order and grouping both
   matter to the proof search, so [vc_formula]'s conjunction — which
   conflates [H: a and b] with [H: a, H: b] — is not used here).  The
   name, subprogram and kind are labels, not proof inputs: renaming a VC
   must still hit the cache.

   Composition: a count prefix plus each term's cached 32-hex digest,
   hashed once more.  Injective up to MD5 collisions (as before — the
   whole encoding was MD5'd anyway), but O(1) per already-digested term
   instead of a fresh serialization of every hypothesis.  The byte
   stream differs from the pre-hash-consing vc_digest, so the proof
   cache's format version is bumped alongside this change. *)
let vc_digest vc =
  let buf = Buffer.create 256 in
  add_int buf (List.length vc.vc_hyps);
  List.iter (fun h -> Buffer.add_string buf (digest h)) vc.vc_hyps;
  Buffer.add_string buf (digest vc.vc_goal);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let localize_vc vc =
  let hyps = map_sharing localize vc.vc_hyps in
  let goal = localize vc.vc_goal in
  if hyps == vc.vc_hyps && goal == vc.vc_goal then vc
  else { vc with vc_hyps = hyps; vc_goal = goal }

let pp_vc ppf vc =
  Fmt.pf ppf "@[<v>%s [%s]@,%a@,|- %a@]" vc.vc_name (vc_kind_name vc.vc_kind)
    Fmt.(list ~sep:(any "@,") (fun ppf h -> Fmt.pf ppf "H: %a" pp h))
    vc.vc_hyps pp vc.vc_goal
