(* First-order terms and formulas for verification conditions.

   The language mirrors what weakest-precondition generation over MiniSpark
   needs: linear integer arithmetic, modular (wrapping) arithmetic and bit
   operations carrying their modulus, McCarthy array select/store, bounded
   quantifiers, and uninterpreted occurrences of program functions. *)

type t =
  | Int of int
  | Bool of bool
  | Var of string
  | App of op * t list
  | Ite of t * t * t
  | Forall of string * t * t * t  (** var, lo, hi, body *)
  | Exists of string * t * t * t

and op =
  | Add | Sub | Mul | Div | Mod_op
  | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not | Implies
  | Band of int | Bor of int | Bxor of int | Bnot of int
  | Shl of int | Shr of int   (** int payload: the modulus of the left operand, 0 = unbounded *)
  | Wrap of int               (** reduce into [0, m) *)
  | Select | Store
  | Arrlit of int             (** array literal; payload = first index *)
  | Uf of string              (** program function symbol *)

let tru = Bool true
let fls = Bool false
let var x = Var x
let num n = Int n

let rec conj = function
  | [] -> tru
  | [ f ] -> f
  | f :: rest -> App (And, [ f; conj rest ])

let implies a b =
  match a with Bool true -> b | _ -> App (Implies, [ a; b ])

let eq a b = App (Eq, [ a; b ])
let select a i = App (Select, [ a; i ])
let store a i v = App (Store, [ a; i; v ])

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let rec map f t =
  let t' =
    match t with
    | Int _ | Bool _ | Var _ -> t
    | App (op, args) -> App (op, List.map (map f) args)
    | Ite (c, a, b) -> Ite (map f c, map f a, map f b)
    | Forall (x, lo, hi, body) -> Forall (x, map f lo, map f hi, map f body)
    | Exists (x, lo, hi, body) -> Exists (x, map f lo, map f hi, map f body)
  in
  f t'

let rec iter f t =
  f t;
  match t with
  | Int _ | Bool _ | Var _ -> ()
  | App (_, args) -> List.iter (iter f) args
  | Ite (c, a, b) ->
      iter f c;
      iter f a;
      iter f b
  | Forall (_, lo, hi, body) | Exists (_, lo, hi, body) ->
      iter f lo;
      iter f hi;
      iter f body

(** Capture-naive substitution of a variable by a term (quantified variables
    shadow as expected). *)
let rec subst x v t =
  match t with
  | Var y when String.equal x y -> v
  | Int _ | Bool _ | Var _ -> t
  | App (op, args) -> App (op, List.map (subst x v) args)
  | Ite (c, a, b) -> Ite (subst x v c, subst x v a, subst x v b)
  | Forall (y, lo, hi, body) ->
      if String.equal x y then Forall (y, subst x v lo, subst x v hi, body)
      else Forall (y, subst x v lo, subst x v hi, subst x v body)
  | Exists (y, lo, hi, body) ->
      if String.equal x y then Exists (y, subst x v lo, subst x v hi, body)
      else Exists (y, subst x v lo, subst x v hi, subst x v body)

let free_vars t =
  let rec go bound acc = function
    | Int _ | Bool _ -> acc
    | Var x -> if List.mem x bound then acc else x :: acc
    | App (_, args) -> List.fold_left (go bound) acc args
    | Ite (c, a, b) -> go bound (go bound (go bound acc c) a) b
    | Forall (x, lo, hi, body) | Exists (x, lo, hi, body) ->
        go (x :: bound) (go bound (go bound acc lo) hi) body
  in
  List.sort_uniq String.compare (go [] [] t)

let node_count t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

(* ------------------------------------------------------------------ *)
(* Printing (defines the byte-size metric for VCs)                     *)
(* ------------------------------------------------------------------ *)

let op_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Mod_op -> "mod"
  | Neg -> "-"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or" | Not -> "not" | Implies -> "->"
  | Band _ -> "band" | Bor _ -> "bor" | Bxor _ -> "bxor" | Bnot _ -> "bnot"
  | Shl _ -> "shl" | Shr _ -> "shr"
  | Wrap m -> Printf.sprintf "wrap%d" m
  | Select -> "select" | Store -> "store"
  | Arrlit lo -> Printf.sprintf "arr%d" lo
  | Uf name -> name

let rec pp ppf t =
  match t with
  | Int n -> Fmt.int ppf n
  | Bool b -> Fmt.bool ppf b
  | Var x -> Fmt.string ppf x
  | App ((Add | Sub | Mul | Div | Mod_op | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Implies) as op, [ a; b ]) ->
      Fmt.pf ppf "(%a %s %a)" pp a (op_name op) pp b
  | App (Not, [ a ]) -> Fmt.pf ppf "(not %a)" pp a
  | App (Neg, [ a ]) -> Fmt.pf ppf "(- %a)" pp a
  | App (op, args) ->
      Fmt.pf ppf "%s(%a)" (op_name op) (Fmt.list ~sep:(Fmt.any ", ") pp) args
  | Ite (c, a, b) -> Fmt.pf ppf "(if %a then %a else %a)" pp c pp a pp b
  | Forall (x, lo, hi, body) ->
      Fmt.pf ppf "(forall %s in %a .. %a: %a)" x pp lo pp hi pp body
  | Exists (x, lo, hi, body) ->
      Fmt.pf ppf "(exists %s in %a .. %a: %a)" x pp lo pp hi pp body

let to_string t = Fmt.str "%a" pp t

(** Byte size of the printed form — the paper reports VC sizes in MB/KB. *)
let byte_size t = String.length (to_string t)

(* ------------------------------------------------------------------ *)
(* Canonical serialization and content digests                         *)
(* ------------------------------------------------------------------ *)

(* The printed form is ambiguous — [Var "f()"] and [App (Uf "f", [])]
   render identically — so the proof cache keys on an injective encoding
   instead: every constructor gets a distinct tag, integers are
   ';'-terminated, strings are length-prefixed, and argument lists carry
   their arity.  Two terms serialize equally iff they are structurally
   equal. *)

let add_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_str buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_op buf op =
  let c t = Buffer.add_char buf t in
  let ci t m = Buffer.add_char buf t; add_int buf m in
  match op with
  | Add -> c 'a' | Sub -> c 'b' | Mul -> c 'c' | Div -> c 'd' | Mod_op -> c 'e'
  | Neg -> c 'f'
  | Eq -> c 'g' | Ne -> c 'h' | Lt -> c 'i' | Le -> c 'j' | Gt -> c 'k' | Ge -> c 'l'
  | And -> c 'm' | Or -> c 'n' | Not -> c 'o' | Implies -> c 'p'
  | Band m -> ci 'q' m | Bor m -> ci 'r' m | Bxor m -> ci 's' m | Bnot m -> ci 't' m
  | Shl m -> ci 'u' m | Shr m -> ci 'v' m
  | Wrap m -> ci 'w' m
  | Select -> c 'x' | Store -> c 'y'
  | Arrlit lo -> ci 'z' lo
  | Uf name -> c 'U'; add_str buf name

let rec add_term buf t =
  match t with
  | Int n -> Buffer.add_char buf 'I'; add_int buf n
  | Bool true -> Buffer.add_char buf 'T'
  | Bool false -> Buffer.add_char buf 'F'
  | Var x -> Buffer.add_char buf 'V'; add_str buf x
  | App (op, args) ->
      Buffer.add_char buf 'A';
      add_op buf op;
      add_int buf (List.length args);
      List.iter (add_term buf) args
  | Ite (c, a, b) ->
      Buffer.add_char buf '?';
      add_term buf c; add_term buf a; add_term buf b
  | Forall (x, lo, hi, body) ->
      Buffer.add_char buf '!';
      add_str buf x;
      add_term buf lo; add_term buf hi; add_term buf body
  | Exists (x, lo, hi, body) ->
      Buffer.add_char buf 'E';
      add_str buf x;
      add_term buf lo; add_term buf hi; add_term buf body

let serialize t =
  let buf = Buffer.create 1024 in
  add_term buf t;
  Buffer.contents buf

let digest t = Digest.to_hex (Digest.string (serialize t))

(* ------------------------------------------------------------------ *)
(* Verification conditions                                             *)
(* ------------------------------------------------------------------ *)

type vc_kind =
  | Vc_postcondition
  | Vc_precondition_call   (** callee precondition holds at a call site *)
  | Vc_assert
  | Vc_invariant_init
  | Vc_invariant_preserve
  | Vc_index_check
  | Vc_range_check
  | Vc_div_check
  | Vc_overflow_check

let vc_kind_name = function
  | Vc_postcondition -> "postcondition"
  | Vc_precondition_call -> "call-precondition"
  | Vc_assert -> "assert"
  | Vc_invariant_init -> "invariant-init"
  | Vc_invariant_preserve -> "invariant-preserve"
  | Vc_index_check -> "index-check"
  | Vc_range_check -> "range-check"
  | Vc_div_check -> "div-check"
  | Vc_overflow_check -> "overflow-check"

type vc = {
  vc_name : string;        (** e.g. "encrypt.3" *)
  vc_sub : string;         (** owning subprogram *)
  vc_kind : vc_kind;
  vc_hyps : t list;
  vc_goal : t;
}

let vc_formula vc = implies (conj vc.vc_hyps) vc.vc_goal

let vc_byte_size vc =
  List.fold_left (fun acc h -> acc + byte_size h + 1) (byte_size vc.vc_goal) vc.vc_hyps

(** Printed lines of one VC — the paper's "maximum length of verification
    conditions" metric (>10,000 lines at block 1, 68 at block 14, 126 with
    full annotations). *)
let vc_line_count vc =
  let line_width = 78 in
  List.fold_left
    (fun acc h -> acc + 1 + (byte_size h / line_width))
    (1 + (byte_size vc.vc_goal / line_width))
    vc.vc_hyps

(* Hypotheses are serialized as an explicit list (order and grouping both
   matter to the proof search, so [vc_formula]'s conjunction — which
   conflates [H: a and b] with [H: a, H: b] — is not used here).  The
   name, subprogram and kind are labels, not proof inputs: renaming a VC
   must still hit the cache. *)
let vc_digest vc =
  let buf = Buffer.create 4096 in
  add_int buf (List.length vc.vc_hyps);
  List.iter (add_term buf) vc.vc_hyps;
  add_term buf vc.vc_goal;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_vc ppf vc =
  Fmt.pf ppf "@[<v>%s [%s]@,%a@,|- %a@]" vc.vc_name (vc_kind_name vc.vc_kind)
    Fmt.(list ~sep:(any "@,") (fun ppf h -> Fmt.pf ppf "H: %a" pp h))
    vc.vc_hyps pp vc.vc_goal
