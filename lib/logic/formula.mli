(** First-order terms and formulas for verification conditions.

    The language mirrors what weakest-precondition generation over
    MiniSpark needs: linear integer arithmetic, modular (wrapping)
    arithmetic and bit operations carrying their modulus, McCarthy array
    select/store, bounded quantifiers, and uninterpreted occurrences of
    program functions.

    Terms are hash-consed per domain ({!Hc}): every structurally
    distinct term is interned once, so within a domain physical equality
    is semantic equality, and each node carries its hash, size and free
    variables as O(1) cached attributes.  Terms are built exclusively
    through the smart constructors below and inspected by matching on
    the [node] field. *)

type t = private {
  tag : int;            (** per-domain identity, unique for the process *)
  hash : int;           (** structural hash, stable across domains *)
  size : int;           (** unfolded tree node count *)
  node : node;
  fvs : string list;    (** free variables, sorted and deduplicated *)
  mutable digest_memo : string;  (** "" until {!digest} first runs *)
  dom : int;            (** owning domain *)
}

and node =
  | Int of int
  | Bool of bool
  | Var of string
  | App of op * t list
  | Ite of t * t * t
  | Forall of string * t * t * t  (** var, lo, hi, body *)
  | Exists of string * t * t * t

and op =
  | Add | Sub | Mul | Div | Mod_op
  | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not | Implies
  | Band of int | Bor of int | Bxor of int | Bnot of int
  | Shl of int | Shr of int
      (** int payload: the modulus of the left operand, 0 = unbounded *)
  | Wrap of int               (** reduce into [0, m) *)
  | Select | Store
  | Arrlit of int             (** array literal; payload = first index *)
  | Uf of string              (** program function symbol *)

(** {1 Smart constructors}

    Each returns the interned node for the calling domain; arguments
    interned by another domain are localized transparently. *)

val num : int -> t
val bool_ : bool -> t
val var : string -> t
val app : op -> t list -> t
val ite : t -> t -> t -> t
val forall : string -> t -> t -> t -> t
val exists : string -> t -> t -> t -> t

val tru : t
val fls : t

val conj : t list -> t
(** Right-nested conjunction; [conj [] = tru]. *)

val implies : t -> t -> t
(** Implication, collapsing a [true] antecedent. *)

val eq : t -> t -> t
val select : t -> t -> t
val store : t -> t -> t -> t

(** {1 Identity} *)

val equal : t -> t -> bool
(** Structural equality.  O(1) for two terms interned by the same
    domain (physical identity); cross-domain terms fall back to a
    hash-pruned structural walk.  Never use the polymorphic [=] on
    terms: it would compare interning tags. *)

val hash : t -> int

val compare : t -> t -> int
(** Deterministic structural order — the order the polymorphic
    [Stdlib.compare] gave on the pre-hash-consing representation, so
    every sort in the simplifier and prover keeps its historic result. *)

val localize : t -> t
(** Re-intern a term (and its subterms) in the calling domain's table.
    The identity on terms the domain already owns; memoized per source
    node otherwise. *)

(** {1 Traversal} *)

val map : (t -> t) -> t -> t
(** Bottom-up rewriting: children first, then the node itself.
    Subtrees the function leaves unchanged are returned as the original
    node, not reallocated. *)

val iter : (t -> unit) -> t -> unit
(** Preorder walk of the unfolded tree (shared subterms are visited once
    per occurrence, as they were before hash-consing). *)

val subst : string -> t -> t -> t
(** [subst x v t]: capture-naive substitution of a variable by a term
    (quantified variables shadow as expected).  Returns [t] itself when
    [x] is not free in [t]; memoized on node identity within a call, so
    shared subterms are rewritten once. *)

val free_vars : t -> string list
(** Free variable names, sorted and deduplicated.  O(1): cached. *)

val node_count : t -> int
(** Unfolded tree size.  O(1): cached. *)

(** {1 Printing}

    The printed form defines the byte-size metric for VCs (the paper
    reports VC sizes in MB/KB). *)

val op_name : op -> string
val pp : t Fmt.t
val to_string : t -> string

val byte_size : t -> int
(** Byte size of the printed form. *)

(** {1 Canonical serialization and content digests}

    The printed form is ambiguous ([Var "f()"] and [App (Uf "f", [])]
    render identically), so content addressing uses an injective binary
    encoding: [serialize a = serialize b] iff [a] and [b] are
    structurally equal. *)

val serialize : t -> string
(** Deterministic, injective encoding of the term (byte-identical to
    the pre-hash-consing encoding). *)

val digest : t -> string
(** Hex digest of {!serialize} — the content address of a formula.
    Computed once per node and cached. *)

(** {1 Interner statistics} *)

val live_nodes : unit -> int
(** Terms currently interned by the calling domain. *)

val interned_nodes : unit -> int
(** Total terms the calling domain has interned so far. *)

(** {1 Verification conditions} *)

type vc_kind =
  | Vc_postcondition
  | Vc_precondition_call   (** callee precondition holds at a call site *)
  | Vc_assert
  | Vc_invariant_init
  | Vc_invariant_preserve
  | Vc_index_check
  | Vc_range_check
  | Vc_div_check
  | Vc_overflow_check
  | Vc_equivalence
      (** old fragment = new fragment of a certified refactoring step *)

val vc_kind_name : vc_kind -> string

type vc = {
  vc_name : string;        (** e.g. "encrypt.3" *)
  vc_sub : string;         (** owning subprogram *)
  vc_kind : vc_kind;
  vc_hyps : t list;
  vc_goal : t;
}

val vc_formula : vc -> t
(** The VC as one closed formula: hypotheses imply goal. *)

val vc_byte_size : vc -> int

val vc_digest : vc -> string
(** Content address of a VC's proof inputs: the hypothesis list (order
    preserved — it matters to the search) and the goal.  The name,
    subprogram and kind are labels and excluded, so a renamed but
    otherwise unchanged VC keeps its digest.  Composed from the cached
    per-term digests, so the encoding differs from the pre-hash-consing
    one — the proof-cache format version is bumped in step. *)

val localize_vc : vc -> vc
(** {!localize} applied to every hypothesis and the goal. *)

val vc_line_count : vc -> int
(** Printed lines of one VC — the paper's "maximum length of verification
    conditions" metric (>10,000 lines at block 1, 68 at block 14, 126
    with full annotations). *)

val pp_vc : vc Fmt.t
