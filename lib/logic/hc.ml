(* Per-domain hash-consing support (Filliâtre & Conchon, "Type-safe
   modular hash-consing", ML Workshop 2006), adapted for OCaml 5
   multicore: every domain owns a private weak interning table reached
   through [Domain.DLS], so the proof farm's workers intern terms
   without ever contending on a shared lock.

   The table is weak: interned nodes stay canonical for as long as
   anything else references them, and the GC reclaims the rest — a
   strong table would pin every transient term a simplification chain
   ever produced for the life of the process.

   Tags are per-domain and never reused (a monotonically increasing
   counter), so a (domain, tag) pair identifies a node for the life of
   the process and is safe to use as a memoization key even after the
   node itself has been collected. *)

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  (** Shallow structural equality: children are compared with [==],
      which is sound because children are themselves interned (and
      localized to this domain) before a candidate node is built. *)

  val hash : t -> int
  (** Precomputed structural hash; must agree with [equal]. *)
end

module type S = sig
  type elt

  type interner
  (** One domain's private interning state. *)

  val interner : unit -> interner
  (** The calling domain's interner (created on first use). *)

  val domain_id : interner -> int
  val fresh_tag : interner -> int

  val find_or_add : interner -> probe:elt -> build:(unit -> elt) -> elt
  (** [find_or_add it ~probe ~build] returns the canonical node equal to
      [probe] if one is live in this domain's table, otherwise interns
      [build ()] (which must be equal to [probe] under [H.equal]).  The
      probe itself never escapes, so it may be a cheap throwaway that
      carries only the fields [H.equal]/[H.hash] inspect. *)

  val population : interner -> int
  (** Number of live interned nodes in this domain's table. *)

  val interns : interner -> int
  (** Total nodes interned by this domain so far (monotonic). *)
end

module Make (H : HashedType) : S with type elt = H.t = struct
  type elt = H.t

  module W = Weak.Make (H)

  type interner = {
    w : W.t;
    mutable next_tag : int;
    mutable interned : int;
    dom : int;
  }

  let key : interner Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        {
          w = W.create 20011;
          next_tag = 0;
          interned = 0;
          dom = (Domain.self () :> int);
        })

  let interner () = Domain.DLS.get key
  let domain_id it = it.dom

  let fresh_tag it =
    let t = it.next_tag in
    it.next_tag <- t + 1;
    t

  let find_or_add it ~probe ~build =
    match W.find_opt it.w probe with
    | Some t -> t
    | None ->
        let t = build () in
        it.interned <- it.interned + 1;
        W.add it.w t;
        t

  let population it = W.count it.w
  let interns it = it.interned
end
