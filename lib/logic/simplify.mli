(** Formula simplifier — the stand-in for the SPARK Simplifier.

    Constant folding, boolean/comparison reduction, canonical linear forms,
    McCarthy select/store reduction, xor-chain cancellation, and bounded
    quantifier expansion.  Fig. 2(e)'s "simplified VC size" is defined by
    this module's output. *)

(** Canonical linear forms over opaque atoms. *)
module Lin : sig
  type t = { const : int; atoms : (Formula.t * int) list }

  val of_const : int -> t
  val of_atom : Formula.t -> t
  val add : t -> t -> t
  val scale : int -> t -> t
  val neg : t -> t
  val sub : t -> t -> t
  val is_const : t -> bool
  val to_term : t -> Formula.t
end

val linearize : Formula.t -> Lin.t option
(** View a numeric term as a linear form; [None] for boolean/array terms. *)

val difference : Formula.t -> Formula.t -> Lin.t option
(** Canonical [a - b], when both sides are numeric. *)

val flatten_chain : Formula.op -> Formula.t -> Formula.t list
(** Operands of a nested chain of one associative operator. *)

val wrap_int : int -> int -> int
(** [wrap_int m n] reduces [n] into [0, m) ([n] itself when [m <= 0]). *)

val expand_limit : int
(** Widest constant quantifier range expanded into a conjunction. *)

val simplify : Formula.t -> Formula.t
(** Bottom-up rewriting to a bounded fixpoint.  Memoized per domain on
    node identity (terms are hash-consed), so re-simplifying a term the
    domain has already processed is O(1). *)

val simplify_nomemo : Formula.t -> Formula.t
(** The raw fixpoint without the memo table — what {!simplify} computes
    on a cold entry.  Kept for differential testing. *)

val rewrite_passes : unit -> int
(** Cumulative count of productive rewrite passes since process start
    (monotone).  Profilers read deltas around an operation to attribute
    simplifier effort to it. *)

val simplify_vc : Formula.vc -> Formula.vc
(** Simplify hypotheses (flattening conjunctions, dropping trivial ones)
    and goal; a contradictory hypothesis set yields a [true] goal. *)
