(* Static semantics for MiniSpark.

   [check] validates a program and returns a *normalised* copy:
   - [Call (a, [i])] where [a] names an object of array type becomes
     [Index (Var a, i)];
   - intrinsic calls [shift_left]/[shift_right] become [Shl]/[Shr];
   - logical [And]/[Or] whose operands are modular become bitwise
     [Band]/[Bor].

   SPARK-like restrictions enforced here (they are what make WP generation
   and refactoring sound):
   - functions are pure: [in] parameters only, no global writes, no
     procedure calls, must return on all paths (checked shallowly);
   - procedures cannot be called in expressions;
   - [in] parameters and constants are never assigned;
   - [Old]/[Result]/quantifiers appear only in annotations ([Result] only in
     function postconditions);
   - no two [out]/[in out] actuals of one call alias the same variable. *)

open Ast

exception Type_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type obj_kind =
  | Obj_const
  | Obj_global
  | Obj_local
  | Obj_param of param_mode

type env = {
  types : (ident * typ) list;      (* fully resolved right-hand sides *)
  objects : (ident * (obj_kind * typ)) list;  (* resolved types *)
  subs : (ident * subprogram) list;
}

let empty_env = { types = []; objects = []; subs = [] }

let rec resolve env t =
  match t with
  | Tbool | Tint _ | Tmod _ -> t
  | Tarray (lo, hi, elt) -> Tarray (lo, hi, resolve env elt)
  | Tnamed n -> (
      match List.assoc_opt n env.types with
      | Some t -> t
      | None -> error "unknown type %s" n)

let is_numeric = function Tint _ | Tmod _ -> true | Tbool | Tarray _ | Tnamed _ -> false

(* Base-type compatibility: range subtypes of integer are inter-assignable
   (range membership is a proof obligation, not a typing fact — as in SPARK,
   where it yields a run-time-check VC). *)
let rec compatible a b =
  match (a, b) with
  | Tbool, Tbool -> true
  | (Tint _ | Tmod _), Tint _ | Tint _, Tmod _ -> true
  (* modular types are inter-assignable when one modulus divides the
     other: widening preserves the value, narrowing wraps at the
     assignment (deterministic, mirrored by the interpreter's coercion).
     Mixing modular operands inside one operation stays rejected. *)
  | Tmod m, Tmod n -> m = n || (m < n && n mod m = 0) || (n < m && m mod n = 0)
  | Tarray (lo, hi, x), Tarray (lo', hi', y) -> lo = lo' && hi = hi' && compatible x y
  | (Tbool | Tint _ | Tmod _ | Tarray _ | Tnamed _), _ -> false

(* Result type of a numeric binop given operand types. *)
let join a b =
  match (a, b) with
  | Tmod m, _ | _, Tmod m -> Tmod m
  | Tint _, Tint _ -> Tint None
  | _ -> error "numeric operands expected"

type annot_ctx =
  | Ctx_code        (* ordinary executable code *)
  | Ctx_pre
  | Ctx_post
  | Ctx_invariant   (* loop invariants and assert statements *)

type ctx = {
  env : env;
  locals : (ident * (obj_kind * typ)) list;  (* params + locals + loop vars *)
  current : subprogram option;
  annot : annot_ctx;
}

let lookup_obj ctx name =
  match List.assoc_opt name ctx.locals with
  | Some x -> Some x
  | None -> List.assoc_opt name ctx.env.objects

let lookup_obj_exn ctx name =
  match lookup_obj ctx name with
  | Some x -> x
  | None -> error "unknown object %s" name

(* ------------------------------------------------------------------ *)
(* Expression checking: returns the normalised expression and its type *)
(* ------------------------------------------------------------------ *)

let rec check_expr ?expected ctx e =
  let e', t = infer ctx e in
  (match expected with
  | Some want when not (compatible t want) ->
      error "type mismatch in %s: expected %s, got %s" (Pretty.expr_to_string e)
        (Pretty.typ_to_string want) (Pretty.typ_to_string t)
  | _ -> ());
  (e', t)

and infer ctx e =
  match e with
  | Bool_lit _ -> (e, Tbool)
  | Int_lit _ -> (e, Tint None)
  | Var x -> (
      match lookup_obj ctx x with
      | Some (_, t) -> (e, t)
      | None -> error "unknown variable %s" x)
  | Old x ->
      if ctx.annot = Ctx_code then error "%s~ is only legal in annotations" x;
      let _, t = lookup_obj_exn ctx x in
      (e, t)
  | Result -> (
      if ctx.annot <> Ctx_post then error "result is only legal in postconditions";
      match ctx.current with
      | Some { sub_return = Some t; _ } -> (e, resolve ctx.env t)
      | Some _ | None -> error "result used outside a function")
  | Index (a, i) -> (
      let a', ta = infer ctx a in
      let i', _ = check_numeric ctx i in
      match ta with
      | Tarray (_, _, elt) -> (Index (a', i'), elt)
      | _ -> error "indexing a non-array: %s" (Pretty.expr_to_string a))
  | Unop (Neg, a) ->
      let a', t = check_numeric ctx a in
      (Unop (Neg, a'), t)
  | Unop (Not, a) -> (
      let a', t = infer ctx a in
      match t with
      | Tbool -> (Unop (Not, a'), Tbool)
      | Tmod _ -> (Unop (Not, a'), t) (* bitwise complement on modular *)
      | _ -> error "not applied to non-boolean")
  | Binop ((Add | Sub | Mul | Div | Mod) as op, a, b) ->
      let a', ta = check_numeric ctx a in
      let b', tb = check_numeric ctx b in
      check_mod_agreement ta tb;
      (Binop (op, a', b'), join ta tb)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
      let a', ta = infer ctx a in
      let b', tb = infer ctx b in
      if not (compatible ta tb) then
        error "comparison between incompatible types in %s"
          (Pretty.expr_to_string e);
      (Binop (op, a', b'), Tbool)
  | Binop ((And | Or) as op, a, b) -> (
      let a', ta = infer ctx a in
      let b', tb = infer ctx b in
      match (ta, tb) with
      | Tbool, Tbool -> (Binop (op, a', b'), Tbool)
      | (Tmod _ | Tint _), (Tmod _ | Tint _) ->
          check_mod_agreement ta tb;
          let op' = match op with And -> Band | _ -> Bor in
          (Binop (op', a', b'), join ta tb)
      | _ -> error "and/or operands must both be boolean or both modular")
  | Binop ((Band | Bor) as op, a, b) ->
      let a', ta = check_numeric ctx a in
      let b', tb = check_numeric ctx b in
      check_mod_agreement ta tb;
      (Binop (op, a', b'), join ta tb)
  | Binop ((And_then | Or_else) as op, a, b) ->
      let a', _ = check_expr ~expected:Tbool ctx a in
      let b', _ = check_expr ~expected:Tbool ctx b in
      (Binop (op, a', b'), Tbool)
  | Binop (Bxor, a, b) -> (
      let a', ta = infer ctx a in
      let b', tb = infer ctx b in
      match (ta, tb) with
      | Tbool, Tbool -> (Binop (Bxor, a', b'), Tbool)
      | (Tmod _ | Tint _), (Tmod _ | Tint _) ->
          check_mod_agreement ta tb;
          (Binop (Bxor, a', b'), join ta tb)
      | _ -> error "xor operands must both be boolean or both modular")
  | Binop ((Shl | Shr) as op, a, b) ->
      let a', ta = check_numeric ctx a in
      let b', _ = check_numeric ctx b in
      (Binop (op, a', b'), ta)
  | Call (("shift_left" | "shift_right") as name, [ a; b ]) ->
      let op = if String.equal name "shift_left" then Shl else Shr in
      infer ctx (Binop (op, a, b))
  | Call (name, args) -> (
      match lookup_obj ctx name with
      | Some (_, t) ->
          (* object applied to arguments: indexing written call-style *)
          let indexed =
            List.fold_left (fun acc i -> Index (acc, i)) (Var name) args
          in
          let _ = t in
          infer ctx indexed
      | None -> (
          match List.assoc_opt name ctx.env.subs with
          | Some callee -> (
              match callee.sub_return with
              | None -> error "procedure %s called in an expression" name
              | Some ret ->
                  if List.length args <> List.length callee.sub_params then
                    error "wrong number of arguments to %s" name;
                  let args' =
                    List.map2
                      (fun p a ->
                        let want = resolve ctx.env p.par_typ in
                        fst (check_expr ~expected:want ctx a))
                      callee.sub_params args
                  in
                  (Call (name, args'), resolve ctx.env ret))
          | None -> error "unknown function %s" name))
  | Aggregate es ->
      (* Aggregates are only typeable against an expected array type; infer
         element-wise and leave shape checking to the declaration site. *)
      let es' = List.map (fun e -> fst (infer ctx e)) es in
      (Aggregate es', Tarray (0, List.length es - 1, Tint None))
  | Quantified (q, v, lo, hi, body) ->
      if ctx.annot = Ctx_code then error "quantifier outside annotation";
      let lo', _ = check_numeric ctx lo in
      let hi', _ = check_numeric ctx hi in
      let ctx' =
        { ctx with locals = (v, (Obj_local, Tint None)) :: ctx.locals }
      in
      let body', _ = check_expr ~expected:Tbool ctx' body in
      (Quantified (q, v, lo', hi', body'), Tbool)

and check_numeric ctx e =
  let e', t = infer ctx e in
  if not (is_numeric t) then
    error "numeric expression expected: %s" (Pretty.expr_to_string e);
  (e', t)

and check_mod_agreement ta tb =
  match (ta, tb) with
  | Tmod m, Tmod n when m <> n -> error "mixed moduli %d and %d" m n
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec check_lvalue ctx lv =
  match lv with
  | Lvar x -> (
      let kind, t = lookup_obj_exn ctx x in
      match kind with
      | Obj_const -> error "assignment to constant %s" x
      | Obj_param Mode_in -> error "assignment to in-parameter %s" x
      | Obj_param (Mode_out | Mode_in_out) | Obj_global | Obj_local -> (lv, t))
  | Lindex (lv, i) -> (
      let lv', t = check_lvalue ctx lv in
      let i', _ = check_numeric ctx i in
      match t with
      | Tarray (_, _, elt) -> (Lindex (lv', i'), elt)
      | _ -> error "indexed assignment to non-array")

let in_function ctx =
  match ctx.current with Some { sub_return = Some _; _ } -> true | _ -> false

let check_call_aliasing callee args =
  let outs =
    List.concat
      (List.map2
         (fun p a ->
           match (p.par_mode, a) with
           | (Mode_out | Mode_in_out), Var x -> [ x ]
           | (Mode_out | Mode_in_out), _ ->
               error "out-mode actual of %s must be a variable" callee.sub_name
           | Mode_in, _ -> [])
         callee.sub_params args)
  in
  let sorted = List.sort String.compare outs in
  let rec dup = function
    | a :: b :: _ when String.equal a b -> Some a
    | _ :: rest -> dup rest
    | [] -> None
  in
  match dup sorted with
  | Some x -> error "aliased out-parameter %s in call to %s" x callee.sub_name
  | None -> ()

let rec check_stmt ctx stmt =
  match stmt with
  | Null -> Null
  | Assert e ->
      let e', _ = check_expr ~expected:Tbool { ctx with annot = Ctx_invariant } e in
      Assert e'
  | Assign (lv, e) ->
      let lv', t = check_lvalue ctx lv in
      let e', _ = check_expr ~expected:t ctx e in
      Assign (lv', e')
  | If (branches, els) ->
      let branch (g, body) =
        let g', _ = check_expr ~expected:Tbool ctx g in
        (g', check_stmts ctx body)
      in
      If (List.map branch branches, check_stmts ctx els)
  | For fl ->
      let lo', _ = check_numeric ctx fl.for_lo in
      let hi', _ = check_numeric ctx fl.for_hi in
      let ctx' =
        { ctx with locals = (fl.for_var, (Obj_const, Tint None)) :: ctx.locals }
      in
      let invs =
        List.map
          (fun inv ->
            fst (check_expr ~expected:Tbool { ctx' with annot = Ctx_invariant } inv))
          fl.for_invariants
      in
      For
        {
          fl with
          for_lo = lo';
          for_hi = hi';
          for_invariants = invs;
          for_body = check_stmts ctx' fl.for_body;
        }
  | While wl ->
      let cond', _ = check_expr ~expected:Tbool ctx wl.while_cond in
      let invs =
        List.map
          (fun inv ->
            fst (check_expr ~expected:Tbool { ctx with annot = Ctx_invariant } inv))
          wl.while_invariants
      in
      While
        { while_cond = cond'; while_invariants = invs; while_body = check_stmts ctx wl.while_body }
  | Call_stmt (name, args) -> (
      if in_function ctx then error "procedure call inside function %s"
          (match ctx.current with Some s -> s.sub_name | None -> "?");
      match List.assoc_opt name ctx.env.subs with
      | None -> error "unknown procedure %s" name
      | Some callee ->
          if callee.sub_return <> None then error "%s is a function, not a procedure" name;
          if List.length args <> List.length callee.sub_params then
            error "wrong number of arguments to %s" name;
          let args' =
            List.map2
              (fun p a ->
                let want = resolve ctx.env p.par_typ in
                match p.par_mode with
                | Mode_in -> fst (check_expr ~expected:want ctx a)
                | Mode_out | Mode_in_out -> (
                    match a with
                    | Var _ ->
                        let a', ta = infer ctx a in
                        if not (compatible ta want) then
                          error "argument type mismatch in call to %s" name;
                        (* the actual must itself be writable *)
                        let _ =
                          check_lvalue ctx
                            (match a' with Var x -> Lvar x | _ -> assert false)
                        in
                        a'
                    | _ -> error "out-mode actual of %s must be a variable" name))
              callee.sub_params args
          in
          check_call_aliasing callee args';
          Call_stmt (name, args'))
  | Return None ->
      if in_function ctx then error "return without value in a function";
      Return None
  | Return (Some e) -> (
      match ctx.current with
      | Some { sub_return = Some t; _ } ->
          let e', _ = check_expr ~expected:(resolve ctx.env t) ctx e in
          Return (Some e')
      | Some _ | None -> error "return with value outside a function")

and check_stmts ctx stmts = List.map (check_stmt ctx) stmts

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let check_aggregate_shape env t e =
  (* validate aggregate literals against the declared (array) type *)
  let rec go t e =
    match (resolve env t, e) with
    | Tarray (lo, hi, elt), Aggregate es ->
        if List.length es <> hi - lo + 1 then
          error "aggregate has %d elements, type wants %d" (List.length es)
            (hi - lo + 1);
        List.iter (go elt) es
    | Tarray _, _ -> error "array object initialised with a non-aggregate"
    | _, Aggregate _ -> error "aggregate initialising a scalar"
    | _ -> ()
  in
  go t e

let check_subprogram env sub =
  let env_params =
    List.map
      (fun p ->
        let mode =
          if sub.sub_return <> None && p.par_mode <> Mode_in then
            error "function %s has a non-in parameter %s" sub.sub_name p.par_name
          else p.par_mode
        in
        (p.par_name, (Obj_param mode, resolve env p.par_typ)))
      sub.sub_params
  in
  let env_locals =
    List.map (fun v -> (v.v_name, (Obj_local, resolve env v.v_typ))) sub.sub_locals
  in
  let ctx = { env; locals = env_locals @ env_params; current = Some sub; annot = Ctx_code } in
  (* function purity: no writes to globals *)
  if sub.sub_return <> None then begin
    let locally_bound = List.map fst ctx.locals in
    iter_stmts
      (fun s ->
        match s with
        | Assign (lv, _) ->
            let base = lvalue_base lv in
            if not (List.mem base locally_bound) then begin
              (* a for-loop variable is also fine; collect them lazily *)
              let is_loop_var = ref false in
              iter_stmts
                (function
                  | For fl when String.equal fl.for_var base -> is_loop_var := true
                  | _ -> ())
                sub.sub_body;
              if not !is_loop_var then
                error "function %s writes global %s" sub.sub_name base
            end
        | _ -> ())
      sub.sub_body
  end;
  let locals' =
    List.map
      (fun v ->
        match v.v_init with
        | None -> v
        | Some e ->
            let t = resolve env v.v_typ in
            (match e with
            | Aggregate _ -> check_aggregate_shape env v.v_typ e
            | _ ->
                let _, te = infer ctx e in
                if not (compatible te t) then
                  error "initialiser type mismatch for %s" v.v_name);
            v)
      sub.sub_locals
  in
  let pre =
    Option.map
      (fun e -> fst (check_expr ~expected:Tbool { ctx with annot = Ctx_pre } e))
      sub.sub_pre
  in
  let post =
    Option.map
      (fun e -> fst (check_expr ~expected:Tbool { ctx with annot = Ctx_post } e))
      sub.sub_post
  in
  let body = check_stmts ctx sub.sub_body in
  { sub with sub_pre = pre; sub_post = post; sub_locals = locals'; sub_body = body }

(** Check one declaration against the environment accumulated so far;
    returns the extended environment and the normalised declaration.  The
    result is interned ({!Share.intern_decl}), so re-deriving a
    structurally equal declaration yields the same physical object — the
    incremental checker and downstream memo layers key on this. *)
let check_decl env decl =
  match decl with
  | Dtype (n, t) ->
      if List.mem_assoc n env.types then error "duplicate type %s" n;
      let t' = resolve env t in
      ({ env with types = (n, t') :: env.types }, Share.intern_decl (Dtype (n, t)))
  | Dconst c ->
      if List.mem_assoc c.k_name env.objects then error "duplicate object %s" c.k_name;
      let t = resolve env c.k_typ in
      let ctx = { env; locals = []; current = None; annot = Ctx_code } in
      let value =
        match c.k_value with
        | Aggregate _ ->
            check_aggregate_shape env c.k_typ c.k_value;
            (* normalise elements *)
            let rec norm t e =
              match (resolve env t, e) with
              | Tarray (_, _, elt), Aggregate es -> Aggregate (List.map (norm elt) es)
              | _, e -> fst (infer ctx e)
            in
            norm c.k_typ c.k_value
        | e ->
            let e', te = infer ctx e in
            if not (compatible te t) then error "constant %s type mismatch" c.k_name;
            e'
      in
      ( { env with objects = (c.k_name, (Obj_const, t)) :: env.objects },
        Share.intern_decl (Dconst { c with k_value = value }) )
  | Dvar v ->
      if List.mem_assoc v.v_name env.objects then error "duplicate object %s" v.v_name;
      let t = resolve env v.v_typ in
      let ctx = { env; locals = []; current = None; annot = Ctx_code } in
      let init =
        Option.map
          (fun e ->
            match e with
            | Aggregate _ ->
                check_aggregate_shape env v.v_typ e;
                e
            | _ ->
                let e', te = infer ctx e in
                if not (compatible te t) then
                  error "initialiser type mismatch for %s" v.v_name;
                e')
          v.v_init
      in
      ( { env with objects = (v.v_name, (Obj_global, t)) :: env.objects },
        Share.intern_decl (Dvar { v with v_init = init }) )
  | Dsub sub ->
      if List.mem_assoc sub.sub_name env.subs then
        error "duplicate subprogram %s" sub.sub_name;
      (* allow recursion: add the signature before checking the body *)
      let env' = { env with subs = (sub.sub_name, sub) :: env.subs } in
      let sub' = check_subprogram env' sub in
      let d' = Share.intern_decl (Dsub sub') in
      let sub'' = match d' with Dsub s -> s | _ -> assert false in
      ({ env with subs = (sub.sub_name, sub'') :: env.subs }, d')

(** Type-check a program; returns the normalised program.
    Declarations are processed in order, so every name must be declared
    before use (as in Ada). *)
let check program =
  let env, rev_decls =
    List.fold_left
      (fun (env, acc) d ->
        let env', d' = check_decl env d in
        (env', d' :: acc))
      (empty_env, []) program.prog_decls
  in
  (env, { program with prog_decls = List.rev rev_decls })

(* ------------------------------------------------------------------ *)
(* Incremental re-checking                                             *)
(* ------------------------------------------------------------------ *)

(* The "surface" of a declaration is the part of it other declarations'
   checking can observe: a type's resolved right-hand side, an object's
   kind and resolved type, a subprogram's resolved signature.  Bodies,
   contract annotations, parameter names and constant values are not
   surface — a body-only edit never dirties its callers. *)
type surface =
  | Sf_type of typ
  | Sf_obj of obj_kind * typ
  | Sf_sub of (param_mode * typ) list * typ option

let decl_name = function
  | Dtype (n, _) -> n
  | Dconst c -> c.k_name
  | Dvar v -> v.v_name
  | Dsub s -> s.sub_name

let sub_surface env s =
  Sf_sub
    ( List.map (fun p -> (p.par_mode, resolve env p.par_typ)) s.sub_params,
      Option.map (resolve env) s.sub_return )

let surface_of env d =
  match d with
  | Dtype (n, _) -> Sf_type (List.assoc n env.types)
  | Dconst c ->
      let k, t = List.assoc c.k_name env.objects in
      Sf_obj (k, t)
  | Dvar v ->
      let k, t = List.assoc v.v_name env.objects in
      Sf_obj (k, t)
  | Dsub s -> sub_surface env s

(** Re-check a program against a checked baseline, reusing every
    declaration that is physically equal to its baseline namesake and
    whose referenced names all kept their surface.  The result is
    structurally identical to [check program] — agreement is what the
    QCheck properties in [test_typecheck_incremental] assert — at the
    cost of re-checking only the edited declarations and their
    surface-affected dependents.

    Precondition: [baseline] is a pair returned by {!check} or by this
    function (the baseline program must be normalised, or a physically
    reused declaration could skip normalisation). *)
let check_incremental ~baseline:(env0, prog0) program =
  let base_decl = Hashtbl.create 64 in
  List.iter
    (fun d ->
      let n = decl_name d in
      if not (Hashtbl.mem base_decl n) then Hashtbl.add base_decl n d)
    prog0.prog_decls;
  let base_surface = Hashtbl.create 64 in
  List.iter (fun (n, t) -> Hashtbl.replace base_surface n (Sf_type t)) env0.types;
  List.iter
    (fun (n, (k, t)) -> Hashtbl.replace base_surface n (Sf_obj (k, t)))
    env0.objects;
  List.iter
    (fun (n, s) -> Hashtbl.replace base_surface n (sub_surface env0 s))
    env0.subs;
  let declared = Hashtbl.create 64 in
  let new_surface = Hashtbl.create 64 in
  let process (env, acc) d =
    let n = decl_name d in
    let reusable =
      (not (Hashtbl.mem declared n))
      &&
      match Hashtbl.find_opt base_decl n with
      | Some d0 when d0 == d ->
          (* every name the declaration mentions must denote the same
             surface it denoted in the baseline (or be absent in both:
             locals, loop variables, intrinsics) *)
          List.for_all
            (fun r ->
              String.equal r n
              ||
              match
                (Hashtbl.find_opt base_surface r, Hashtbl.find_opt new_surface r)
              with
              | None, None -> true
              | Some s0, Some s1 -> s0 = s1
              | None, Some _ | Some _, None -> false)
            (Share.decl_refs d)
      | Some _ | None -> false
    in
    Hashtbl.replace declared n ();
    if reusable then (
      let env' =
        match d with
        | Dtype (tn, _) ->
            let t = List.assoc tn env0.types in
            { env with types = (tn, t) :: env.types }
        | Dconst _ | Dvar _ ->
            let entry = List.assoc n env0.objects in
            { env with objects = (n, entry) :: env.objects }
        | Dsub s -> { env with subs = (n, s) :: env.subs }
      in
      Hashtbl.replace new_surface n (Hashtbl.find base_surface n);
      (env', d :: acc))
    else
      let env', d' = check_decl env d in
      Hashtbl.replace new_surface n (surface_of env' d');
      (env', d' :: acc)
  in
  let env, rev_decls =
    List.fold_left process (empty_env, []) program.prog_decls
  in
  let decls = List.rev rev_decls in
  (* a fully reused declaration list preserves the program record itself,
     so no-op re-checks keep digest memos and downstream == fast paths *)
  let prog =
    if
      List.length decls = List.length program.prog_decls
      && List.for_all2 ( == ) decls program.prog_decls
    then program
    else { program with prog_decls = decls }
  in
  (env, prog)

(** Convenience: the resolved type of a (checked) expression in the context
    of a given subprogram — used by the VC generator. *)
let expr_type env sub e =
  let locals =
    match sub with
    | None -> []
    | Some s ->
        List.map (fun p -> (p.par_name, (Obj_param p.par_mode, resolve env p.par_typ))) s.sub_params
        @ List.map (fun v -> (v.v_name, (Obj_local, resolve env v.v_typ))) s.sub_locals
  in
  let ctx = { env; locals; current = sub; annot = Ctx_post } in
  snd (infer ctx e)
