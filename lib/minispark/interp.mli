(** Big-step interpreter for MiniSpark.

    Annotations ([Assert], loop invariants, pre/post) are not executed —
    they are comments to Ada — so an annotated program and its bare version
    have identical dynamic semantics, which the refactoring equivalence
    checks rely on.  Procedure calls use SPARK copy-in/copy-out passing;
    arrays are values, so there is no aliasing at runtime. *)

exception Stuck of string
(** Execution cannot proceed: out-of-range index, division by zero,
    unbound name. *)

exception Out_of_fuel
(** The step budget ([?fuel]) was exhausted.  Distinct from {!Stuck} so a
    differential oracle can report a rewrite that introduces divergence as
    a counterexample rather than a generic runtime fault. *)

type rt
(** A runtime: a type-checked program with initialised globals and a fuel
    budget. *)

val default_fuel : int

val make : ?fuel:int -> Typecheck.env -> Ast.program -> rt
(** Build a runtime; evaluates global constant and variable initialisers.
    The program must already be type-checked (normalised). *)

val fresh_runtime : ?fuel:int -> Typecheck.env -> Ast.program -> rt
(** Alias of {!make}. *)

val default_value : Typecheck.env -> Ast.typ -> Value.t
(** Zero/default value of a type (range types default to their lower
    bound). *)

val coerce : Typecheck.env -> Ast.typ -> Value.t -> Value.t
(** Coerce a value to a declared type: wraps plain integers into modular
    values and fixes array bounds, recursively. *)

val run_function : rt -> string -> Value.t list -> Value.t
(** Call a function by name.  @raise Stuck on runtime errors. *)

val run_procedure : rt -> string -> Value.t list -> Value.t list
(** Call a procedure with values for its [in] and [in out] parameters (in
    declaration order); [out] parameters are synthesised.  Returns the
    final values of out / in-out parameters, in declaration order. *)

val global_value : rt -> string -> Value.t
(** Current value of a global object (e.g. a table constant). *)

val eval_expr : rt -> (string * Value.t) list -> Ast.expr -> Value.t
(** Evaluate an expression under explicit bindings; globals of the program
    are visible.  Quantifiers are evaluated by enumeration. *)
