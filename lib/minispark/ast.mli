(** Abstract syntax of MiniSpark, the SPARK-Ada-like subset used as the
    implementation language for Echo verification.

    Design note: nodes carry no source locations.  Verification
    refactoring compares, rewrites and synthesises subtrees all the time,
    and structural equality of semantically identical fragments is
    load-bearing (e.g. for loop rerolling and clone detection).
    Line-oriented metrics are computed on the pretty-printed form
    instead. *)

type ident = string

(** Types.  [Tint None] is unconstrained integer; [Tint (Some (lo, hi))] a
    range subtype; [Tmod m] a modular (wrapping) type of modulus [m];
    [Tarray (lo, hi, elt)] a constrained array; [Tnamed n] a reference to
    a declared type name, resolved by the type checker. *)
type typ =
  | Tbool
  | Tint of (int * int) option
  | Tmod of int
  | Tarray of int * int * typ
  | Tnamed of ident

type unop = Neg | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | And_then | Or_else
  | Band | Bor | Bxor | Shl | Shr

type quantifier = Forall | Exists

(** Expressions.  [Old] and [Result] are only legal inside annotations
    (postconditions); [Quantified] only inside annotations. *)
type expr =
  | Bool_lit of bool
  | Int_lit of int
  | Var of ident
  | Index of expr * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of ident * expr list
  | Aggregate of expr list
  | Old of ident
  | Result
  | Quantified of quantifier * ident * expr * expr * expr
      (** [Quantified (q, i, lo, hi, body)]: [for all i in lo .. hi => body] *)

type lvalue =
  | Lvar of ident
  | Lindex of lvalue * expr

type stmt =
  | Null
  | Assign of lvalue * expr
  | If of (expr * stmt list) list * stmt list
      (** branches (if/elsif guards with bodies) and the else body *)
  | For of for_loop
  | While of while_loop
  | Call_stmt of ident * expr list
  | Return of expr option
  | Assert of expr

and for_loop = {
  for_var : ident;
  for_reverse : bool;
  for_lo : expr;
  for_hi : expr;
  for_invariants : expr list;
  for_body : stmt list;
}

and while_loop = {
  while_cond : expr;
  while_invariants : expr list;
  while_body : stmt list;
}

type param_mode = Mode_in | Mode_out | Mode_in_out

type param = {
  par_name : ident;
  par_mode : param_mode;
  par_typ : typ;
}

type var_decl = {
  v_name : ident;
  v_typ : typ;
  v_init : expr option;
}

type subprogram = {
  sub_name : ident;
  sub_params : param list;
  sub_return : typ option;
      (** [Some t] for a function, [None] for a procedure *)
  sub_pre : expr option;
  sub_post : expr option;
  sub_locals : var_decl list;
  sub_body : stmt list;
}

type const_decl = {
  k_name : ident;
  k_typ : typ;
  k_value : expr;
}

type decl =
  | Dtype of ident * typ
  | Dconst of const_decl
  | Dvar of var_decl
  | Dsub of subprogram

type program = {
  prog_name : ident;
  prog_decls : decl list;
}

(** {1 Lookup helpers} *)

val subprograms : program -> subprogram list
val find_sub : program -> ident -> subprogram option
val find_sub_exn : program -> ident -> subprogram
val constants : program -> const_decl list
val type_decls : program -> (ident * typ) list
val global_vars : program -> var_decl list

val replace_sub : program -> subprogram -> program
(** Replace the named subprogram wholesale; raises if absent. *)

val update_sub : program -> ident -> (subprogram -> subprogram) -> program
(** Apply the function to the named subprogram, leaving the rest
    unchanged. *)

val insert_decl_before : program -> anchor:ident -> decl -> program
(** Insert a declaration immediately before the subprogram [anchor] (used
    by refactorings that synthesise helper functions next to their call
    site); appends if the anchor is absent. *)

val remove_decl : program -> ident -> program

(** {1 Traversal and rewriting}

    All rewriting combinators preserve physical sharing: a node (or list)
    none of whose parts changed is returned as-is, not rebuilt.  A
    one-procedure transformation therefore leaves every other declaration
    physically identical — the incremental re-typechecker and the
    applicability memoization layer key on this. *)

val map_sharing : ('a -> 'a) -> 'a list -> 'a list
(** [List.map] that returns the original list when every element is
    physically unchanged. *)

val map_expr : (expr -> expr) -> expr -> expr
(** Bottom-up expression rewriting: children first (left to right, in a
    deterministic order — effectful rewriters rely on it), then the node
    itself. *)

val map_lvalue_exprs : (expr -> expr) -> lvalue -> lvalue

val map_stmt_exprs : (expr -> expr) -> stmt -> stmt
(** Rewrite every expression occurring in a statement (guards, bounds,
    right-hand sides, call arguments, invariants, assertions), including
    inside nested bodies. *)

val map_stmts : (stmt -> stmt list) -> stmt list -> stmt list
(** Rewrite statements bottom-up: the function sees each statement after
    its sub-statements have been rewritten, and may expand one statement
    into a list (or delete it by returning []). *)

val iter_expr : (expr -> unit) -> expr -> unit
val iter_lvalue_exprs : (expr -> unit) -> lvalue -> unit

val map_own_exprs : (expr -> expr) -> stmt -> stmt
(** Rewrite the expressions attached directly to one statement node
    (guards, bounds, invariants, arguments), leaving nested bodies alone.
    The function is a whole-expression transformer (compose with
    [map_expr] for a node-local rewrite); it is applied exactly once per
    attached expression, left to right, so effectful rewriters (literal
    collectors) see a deterministic single traversal. *)

val iter_own_exprs : (expr -> unit) -> stmt -> unit
(** Apply the function once to each whole expression attached directly to
    one statement node — the read-side mirror of [map_own_exprs].
    Compose with [iter_expr] inside the callback to visit individual
    nodes. *)

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Visit every statement, including nested bodies, parents first. *)

(** {1 Derived queries} *)

val lvalue_base : lvalue -> ident
(** The root variable of an lvalue: [a (i) (j)] gives [a]. *)

val expr_vars : expr -> ident list
(** Free variable names of an expression, sorted and deduplicated
    (quantified variables excluded; called function names are not
    variables). *)

val written_vars : out_params_of:(ident -> int list) -> stmt list -> ident list
(** All variables a statement list may write: assignment targets, loop
    variables, plus [out] arguments of procedure calls, resolved through
    [out_params_of] (positions of out/in-out parameters per callee). *)

val read_vars : stmt list -> ident list
(** Variables read anywhere in a statement list (including guards and
    loop bounds). *)

val subst_expr : (ident * expr) list -> expr -> expr
(** Substitute variables by expressions (capture-naive: callers must
    avoid substituting under a quantifier binding the same name, which
    the refactoring library guarantees by generating fresh loop
    variables). *)

val subst_lvalue : (ident * expr) list -> lvalue -> lvalue
val subst_stmts : (ident * expr) list -> stmt list -> stmt list
val expr_of_lvalue : lvalue -> expr

val equal_expr : expr -> expr -> bool
(** Structural equality (OCaml [=] is correct here: pure data, no
    closures, no cyclic structure), named for readability at call
    sites. *)

val equal_stmts : stmt list -> stmt list -> bool
val equal_typ : typ -> typ -> bool

val stmt_count : stmt list -> int
(** Number of statement nodes, counting nested bodies; used by metrics
    and by refactoring heuristics. *)

val expr_node_count : stmt list -> int
(** Number of expression nodes in a statement list. *)
