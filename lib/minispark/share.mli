(** Hash-consing / maximal-sharing layer for the MiniSpark AST (§17).

    The plain-variant node types of {!Ast} are kept as-is — structural
    equality on bare constructors is load-bearing for clone detection and
    rerolling — so sharing is provided by an external interning layer:
    per-domain weak tables of [{node; info}] cells with a full structural
    hash computed bottom-up and shallow (pointer-children) equality, plus
    a strong physical-identity memo so re-interning an unchanged subtree
    is O(1).

    Interning is what makes pointer comparison meaningful across
    transformation steps: a rebuilt-but-structurally-equal declaration is
    unified with its canonical object, which {!Typecheck.check_incremental}
    then recognises as untouched by [==] alone.

    All state is per-domain ([Domain.DLS]): farm workers intern
    independently and never see another domain's pointers. *)

type info = {
  i_tag : int;   (** unique per distinct structure within a domain *)
  i_hash : int;  (** full structural hash, cached *)
  i_size : int;  (** node count of the subtree *)
}

val intern_expr : Ast.expr -> Ast.expr
(** Canonical representative; physically equal input subtrees are touched
    once, structurally equal results are pointer-equal. *)

val intern_stmts : Ast.stmt list -> Ast.stmt list
val intern_decl : Ast.decl -> Ast.decl

val intern_program : Ast.program -> Ast.program
(** Interns every declaration; declarations (and the program itself) that
    are already canonical come back physically unchanged. *)

val expr_info : Ast.expr -> info
(** Interns the expression and returns its cached hash/size/tag. *)

val stmt_info : Ast.stmt -> info

val decl_refs : Ast.decl -> Ast.ident list
(** Conservative syntactic name references of a declaration (variables,
    called subprograms, named types — including local shadowers), sorted
    and deduplicated; memoized by physical identity.  Used by the
    incremental re-typechecker as the dependency frontier. *)

val decl_digest : Ast.decl -> string
val program_digest : Ast.program -> string
(** Content digest (hex), independent of pointer sharing; memoized by
    physical identity. *)

type stats = { st_population : int; st_interns : int; st_hits : int }

val stats : unit -> stats
(** Live interned nodes, total interning allocations, and canonical-memo
    hits for the calling domain. *)

val clear : unit -> unit
(** Drop all interning state of the calling domain (tests, long-lived
    servers).  Only the fast path is affected. *)
