(* Abstract syntax of MiniSpark, the SPARK-Ada-like subset used as the
   implementation language for Echo verification.

   Design note: nodes carry no source locations.  Verification refactoring
   compares, rewrites and synthesises subtrees all the time, and structural
   equality of semantically identical fragments is load-bearing (e.g. for
   loop rerolling and clone detection).  Line-oriented metrics are computed
   on the pretty-printed form instead. *)

type ident = string

(** Types.  [Tint None] is unconstrained integer; [Tint (Some (lo, hi))] a
    range subtype; [Tmod m] a modular (wrapping) type of modulus [m];
    [Tarray (lo, hi, elt)] a constrained array; [Tnamed n] a reference to a
    declared type name, resolved by the type checker. *)
type typ =
  | Tbool
  | Tint of (int * int) option
  | Tmod of int
  | Tarray of int * int * typ
  | Tnamed of ident

type unop =
  | Neg
  | Not

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | And_then | Or_else
  | Band | Bor | Bxor | Shl | Shr

type quantifier =
  | Forall
  | Exists

(** Expressions.  [Old] and [Result] are only legal inside annotations
    (postconditions); [Quantified] only inside annotations. *)
type expr =
  | Bool_lit of bool
  | Int_lit of int
  | Var of ident
  | Index of expr * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Call of ident * expr list
  | Aggregate of expr list
  | Old of ident
  | Result
  | Quantified of quantifier * ident * expr * expr * expr
      (** [Quantified (q, i, lo, hi, body)]: [for all i in lo .. hi => body] *)

type lvalue =
  | Lvar of ident
  | Lindex of lvalue * expr

type stmt =
  | Null
  | Assign of lvalue * expr
  | If of (expr * stmt list) list * stmt list
      (** branches (if/elsif guards with bodies) and the else body *)
  | For of for_loop
  | While of while_loop
  | Call_stmt of ident * expr list
  | Return of expr option
  | Assert of expr

and for_loop = {
  for_var : ident;
  for_reverse : bool;
  for_lo : expr;
  for_hi : expr;
  for_invariants : expr list;
  for_body : stmt list;
}

and while_loop = {
  while_cond : expr;
  while_invariants : expr list;
  while_body : stmt list;
}

type param_mode =
  | Mode_in
  | Mode_out
  | Mode_in_out

type param = {
  par_name : ident;
  par_mode : param_mode;
  par_typ : typ;
}

type var_decl = {
  v_name : ident;
  v_typ : typ;
  v_init : expr option;
}

type subprogram = {
  sub_name : ident;
  sub_params : param list;
  sub_return : typ option;  (** [Some t] for a function, [None] for a procedure *)
  sub_pre : expr option;
  sub_post : expr option;
  sub_locals : var_decl list;
  sub_body : stmt list;
}

type const_decl = {
  k_name : ident;
  k_typ : typ;
  k_value : expr;
}

type decl =
  | Dtype of ident * typ
  | Dconst of const_decl
  | Dvar of var_decl
  | Dsub of subprogram

type program = {
  prog_name : ident;
  prog_decls : decl list;
}

(* ------------------------------------------------------------------ *)
(* Lookup helpers                                                      *)
(* ------------------------------------------------------------------ *)

let subprograms program =
  List.filter_map
    (function Dsub s -> Some s | Dtype _ | Dconst _ | Dvar _ -> None)
    program.prog_decls

let find_sub program name =
  List.find_opt (fun s -> String.equal s.sub_name name) (subprograms program)

let find_sub_exn program name =
  match find_sub program name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Ast.find_sub_exn: no subprogram %S" name)

let constants program =
  List.filter_map
    (function Dconst c -> Some c | Dtype _ | Dvar _ | Dsub _ -> None)
    program.prog_decls

let type_decls program =
  List.filter_map
    (function Dtype (n, t) -> Some (n, t) | Dconst _ | Dvar _ | Dsub _ -> None)
    program.prog_decls

let global_vars program =
  List.filter_map
    (function Dvar v -> Some v | Dtype _ | Dconst _ | Dsub _ -> None)
    program.prog_decls

(** Replace the named subprogram wholesale; raises if absent. *)
let replace_sub program sub =
  let found = ref false in
  let decls =
    List.map
      (function
        | Dsub s when String.equal s.sub_name sub.sub_name ->
            found := true;
            Dsub sub
        | d -> d)
      program.prog_decls
  in
  if not !found then
    invalid_arg (Printf.sprintf "Ast.replace_sub: no subprogram %S" sub.sub_name);
  { program with prog_decls = decls }

(** Apply [f] to the named subprogram, leaving the rest unchanged. *)
let update_sub program name f =
  replace_sub program (f (find_sub_exn program name))

(** Insert a declaration immediately before the subprogram [anchor] (used by
    refactorings that synthesise helper functions next to their call site). *)
let insert_decl_before program ~anchor decl =
  let rec go = function
    | [] -> [ decl ]
    | Dsub s :: rest when String.equal s.sub_name anchor -> decl :: Dsub s :: rest
    | d :: rest -> d :: go rest
  in
  { program with prog_decls = go program.prog_decls }

let remove_decl program name =
  let keep = function
    | Dtype (n, _) -> not (String.equal n name)
    | Dconst c -> not (String.equal c.k_name name)
    | Dvar v -> not (String.equal v.v_name name)
    | Dsub s -> not (String.equal s.sub_name name)
  in
  { program with prog_decls = List.filter keep program.prog_decls }

(* ------------------------------------------------------------------ *)
(* Traversal and rewriting                                             *)
(* ------------------------------------------------------------------ *)

(* All rewriting combinators below preserve physical sharing: a node (or
   list) none of whose parts changed is returned as-is, not rebuilt.  A
   one-procedure transformation therefore leaves every other declaration
   physically identical, which the incremental re-typechecker and the
   applicability-memoization layer key on. *)

(** [List.map] that returns the original list when every element is
    physically unchanged. *)
let map_sharing f xs =
  let changed = ref false in
  let ys =
    List.map
      (fun x ->
        let y = f x in
        if y != x then changed := true;
        y)
      xs
  in
  if !changed then ys else xs

(** Bottom-up expression rewriting: children first (left to right, in a
    deterministic order — effectful rewriters rely on it), then the node
    itself. *)
let rec map_expr f e =
  let e' =
    match e with
    | Bool_lit _ | Int_lit _ | Var _ | Old _ | Result -> e
    | Index (a, i) ->
        let a' = map_expr f a in
        let i' = map_expr f i in
        if a' == a && i' == i then e else Index (a', i')
    | Unop (op, a) ->
        let a' = map_expr f a in
        if a' == a then e else Unop (op, a')
    | Binop (op, a, b) ->
        let a' = map_expr f a in
        let b' = map_expr f b in
        if a' == a && b' == b then e else Binop (op, a', b')
    | Call (name, args) ->
        let args' = map_sharing (map_expr f) args in
        if args' == args then e else Call (name, args')
    | Aggregate es ->
        let es' = map_sharing (map_expr f) es in
        if es' == es then e else Aggregate es'
    | Quantified (q, i, lo, hi, body) ->
        let lo' = map_expr f lo in
        let hi' = map_expr f hi in
        let body' = map_expr f body in
        if lo' == lo && hi' == hi && body' == body then e
        else Quantified (q, i, lo', hi', body')
  in
  f e'

let rec map_lvalue_exprs f lv =
  match lv with
  | Lvar _ -> lv
  | Lindex (inner, i) ->
      let inner' = map_lvalue_exprs f inner in
      let i' = map_expr f i in
      if inner' == inner && i' == i then lv else Lindex (inner', i')

(** Rewrite every expression occurring in a statement (guards, bounds,
    right-hand sides, call arguments, invariants, assertions). *)
let rec map_stmt_exprs f stmt =
  match stmt with
  | Null -> stmt
  | Assign (lv, e) ->
      let lv' = map_lvalue_exprs f lv in
      let e' = map_expr f e in
      if lv' == lv && e' == e then stmt else Assign (lv', e')
  | If (branches, els) ->
      let branch ((g, body) as br) =
        let g' = map_expr f g in
        let body' = map_sharing (map_stmt_exprs f) body in
        if g' == g && body' == body then br else (g', body')
      in
      let branches' = map_sharing branch branches in
      let els' = map_sharing (map_stmt_exprs f) els in
      if branches' == branches && els' == els then stmt
      else If (branches', els')
  | For fl ->
      let lo' = map_expr f fl.for_lo in
      let hi' = map_expr f fl.for_hi in
      let invs' = map_sharing (map_expr f) fl.for_invariants in
      let body' = map_sharing (map_stmt_exprs f) fl.for_body in
      if
        lo' == fl.for_lo && hi' == fl.for_hi
        && invs' == fl.for_invariants
        && body' == fl.for_body
      then stmt
      else
        For
          {
            fl with
            for_lo = lo';
            for_hi = hi';
            for_invariants = invs';
            for_body = body';
          }
  | While wl ->
      let cond' = map_expr f wl.while_cond in
      let invs' = map_sharing (map_expr f) wl.while_invariants in
      let body' = map_sharing (map_stmt_exprs f) wl.while_body in
      if
        cond' == wl.while_cond
        && invs' == wl.while_invariants
        && body' == wl.while_body
      then stmt
      else
        While
          { while_cond = cond'; while_invariants = invs'; while_body = body' }
  | Call_stmt (name, args) ->
      let args' = map_sharing (map_expr f) args in
      if args' == args then stmt else Call_stmt (name, args')
  | Return None -> stmt
  | Return (Some e) ->
      let e' = map_expr f e in
      if e' == e then stmt else Return (Some e')
  | Assert e ->
      let e' = map_expr f e in
      if e' == e then stmt else Assert e'

(** Rewrite statements bottom-up: [f] sees each statement after its
    sub-statements have been rewritten, and may expand one statement into a
    list (or delete it by returning []). *)
let rec map_stmts f stmts =
  let changed = ref false in
  let groups =
    List.map
      (fun stmt ->
        let stmt' =
          match stmt with
          | Null | Assign _ | Call_stmt _ | Return _ | Assert _ -> stmt
          | If (branches, els) ->
              let branch ((g, body) as br) =
                let body' = map_stmts f body in
                if body' == body then br else (g, body')
              in
              let branches' = map_sharing branch branches in
              let els' = map_stmts f els in
              if branches' == branches && els' == els then stmt
              else If (branches', els')
          | For fl ->
              let body' = map_stmts f fl.for_body in
              if body' == fl.for_body then stmt
              else For { fl with for_body = body' }
          | While wl ->
              let body' = map_stmts f wl.while_body in
              if body' == wl.while_body then stmt
              else While { wl with while_body = body' }
        in
        match f stmt' with
        | [ s ] when s == stmt -> [ s ]
        | group ->
            changed := true;
            group)
      stmts
  in
  if !changed then List.concat groups else stmts

let rec iter_expr f e =
  f e;
  match e with
  | Bool_lit _ | Int_lit _ | Var _ | Old _ | Result -> ()
  | Index (a, i) ->
      iter_expr f a;
      iter_expr f i
  | Unop (_, a) -> iter_expr f a
  | Binop (_, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Call (_, args) -> List.iter (iter_expr f) args
  | Aggregate es -> List.iter (iter_expr f) es
  | Quantified (_, _, lo, hi, body) ->
      iter_expr f lo;
      iter_expr f hi;
      iter_expr f body

let rec iter_lvalue_exprs f = function
  | Lvar _ -> ()
  | Lindex (lv, i) ->
      iter_lvalue_exprs f lv;
      iter_expr f i

(** Rewrite the expressions attached directly to one statement node
    (guards, bounds, invariants, arguments), leaving nested bodies alone.
    [f] is a whole-expression transformer (compose with [map_expr] for a
    node-local rewrite); it is applied exactly once per attached
    expression, left to right, so effectful rewriters (literal collectors)
    see a deterministic single traversal. *)
let map_own_exprs f stmt =
  let rec lv_map lv =
    match lv with
    | Lvar _ -> lv
    | Lindex (inner, i) ->
        let inner' = lv_map inner in
        let i' = f i in
        if inner' == inner && i' == i then lv else Lindex (inner', i')
  in
  match stmt with
  | Null -> stmt
  | Assign (lv, e) ->
      let lv' = lv_map lv in
      let e' = f e in
      if lv' == lv && e' == e then stmt else Assign (lv', e')
  | If (branches, els) ->
      let branch ((g, body) as br) =
        let g' = f g in
        if g' == g then br else (g', body)
      in
      let branches' = map_sharing branch branches in
      if branches' == branches then stmt else If (branches', els)
  | For fl ->
      let lo = f fl.for_lo in
      let hi = f fl.for_hi in
      let invs = map_sharing f fl.for_invariants in
      if lo == fl.for_lo && hi == fl.for_hi && invs == fl.for_invariants then
        stmt
      else For { fl with for_lo = lo; for_hi = hi; for_invariants = invs }
  | While wl ->
      let cond = f wl.while_cond in
      let invs = map_sharing f wl.while_invariants in
      if cond == wl.while_cond && invs == wl.while_invariants then stmt
      else While { wl with while_cond = cond; while_invariants = invs }
  | Call_stmt (name, args) ->
      let args' = map_sharing f args in
      if args' == args then stmt else Call_stmt (name, args')
  | Return None -> stmt
  | Return (Some e) ->
      let e' = f e in
      if e' == e then stmt else Return (Some e')
  | Assert e ->
      let e' = f e in
      if e' == e then stmt else Assert e'

(** Apply [f] once to each whole expression attached directly to one
    statement node (guards, bounds, invariants, arguments), not to nested
    bodies — the read-side mirror of [map_own_exprs].  Compose with
    [iter_expr] inside [f] to visit individual nodes. *)
let iter_own_exprs f stmt =
  let rec lv_iter = function
    | Lvar _ -> ()
    | Lindex (lv, i) ->
        lv_iter lv;
        f i
  in
  match stmt with
  | Null -> ()
  | Assign (lv, e) ->
      lv_iter lv;
      f e
  | If (branches, _) -> List.iter (fun (g, _) -> f g) branches
  | For fl ->
      f fl.for_lo;
      f fl.for_hi;
      List.iter f fl.for_invariants
  | While wl ->
      f wl.while_cond;
      List.iter f wl.while_invariants
  | Call_stmt (_, args) -> List.iter f args
  | Return e -> Option.iter f e
  | Assert e -> f e

let rec iter_stmts f stmts =
  List.iter
    (fun stmt ->
      f stmt;
      match stmt with
      | Null | Assign _ | Call_stmt _ | Return _ | Assert _ -> ()
      | If (branches, els) ->
          List.iter (fun (_, body) -> iter_stmts f body) branches;
          iter_stmts f els
      | For fl -> iter_stmts f fl.for_body
      | While wl -> iter_stmts f wl.while_body)
    stmts

(* ------------------------------------------------------------------ *)
(* Derived queries                                                     *)
(* ------------------------------------------------------------------ *)

let lvalue_base lv =
  let rec go = function Lvar x -> x | Lindex (lv, _) -> go lv in
  go lv

(** Free variable names of an expression (quantified variables excluded;
    called function names are not variables). *)
let expr_vars e =
  let rec go bound acc e =
    match e with
    | Bool_lit _ | Int_lit _ | Result -> acc
    | Var x | Old x -> if List.mem x bound then acc else x :: acc
    | Index (a, i) -> go bound (go bound acc a) i
    | Unop (_, a) -> go bound acc a
    | Binop (_, a, b) -> go bound (go bound acc a) b
    | Call (_, args) -> List.fold_left (go bound) acc args
    | Aggregate es -> List.fold_left (go bound) acc es
    | Quantified (_, i, lo, hi, body) ->
        go (i :: bound) (go bound (go bound acc lo) hi) body
  in
  List.sort_uniq String.compare (go [] [] e)

(** All variables a statement list may write (assignment targets plus [out]
    arguments of procedure calls, resolved through [out_params_of]). *)
let written_vars ~out_params_of stmts =
  let acc = ref [] in
  iter_stmts
    (fun stmt ->
      match stmt with
      | Assign (lv, _) -> acc := lvalue_base lv :: !acc
      | Call_stmt (name, args) ->
          List.iteri
            (fun k arg ->
              if List.mem k (out_params_of name) then
                match arg with
                | Var x -> acc := x :: !acc
                | Index _ | Bool_lit _ | Int_lit _ | Unop _ | Binop _ | Call _
                | Aggregate _ | Old _ | Result | Quantified _ ->
                    ())
            args
      | For fl -> acc := fl.for_var :: !acc
      | Null | If _ | While _ | Return _ | Assert _ -> ())
    stmts;
  List.sort_uniq String.compare !acc

(** Variables read anywhere in a statement list (including guards and
    loop bounds). *)
let read_vars stmts =
  let acc = ref [] in
  iter_stmts
    (fun stmt ->
      let add e = acc := expr_vars e @ !acc in
      match stmt with
      | Assign (lv, e) ->
          iter_lvalue_exprs (fun e -> add e) lv;
          add e
      | If (branches, _) -> List.iter (fun (g, _) -> add g) branches
      | For fl ->
          add fl.for_lo;
          add fl.for_hi
      | While wl -> add wl.while_cond
      | Call_stmt (_, args) -> List.iter add args
      | Return (Some e) -> add e
      | Assert e -> add e
      | Null | Return None -> ())
    stmts;
  List.sort_uniq String.compare !acc

(** Substitute variables by expressions (capture-naive: callers must avoid
    substituting under a quantifier binding the same name, which the
    refactoring library guarantees by generating fresh loop variables). *)
let subst_expr env e =
  map_expr
    (function
      | Var x as e -> ( match List.assoc_opt x env with Some e' -> e' | None -> e)
      | e -> e)
    e

let rec subst_lvalue env lv =
  match lv with
  | Lvar x -> (
      match List.assoc_opt x env with
      | Some (Var y) -> if String.equal y x then lv else Lvar y
      | Some _ | None -> lv)
  | Lindex (inner, i) ->
      let inner' = subst_lvalue env inner in
      let i' = subst_expr env i in
      if inner' == inner && i' == i then lv else Lindex (inner', i')

let subst_stmts env stmts =
  map_stmts
    (fun stmt ->
      match stmt with
      | Assign (lv, e) ->
          let lv' = subst_lvalue env lv in
          let e' = subst_expr env e in
          [ (if lv' == lv && e' == e then stmt else Assign (lv', e')) ]
      | other -> [ map_own_exprs (subst_expr env) other ])
    stmts

let expr_of_lvalue lv =
  let rec go = function
    | Lvar x -> Var x
    | Lindex (lv, i) -> Index (go lv, i)
  in
  go lv

(** Structural equality (OCaml [=] is correct here: pure data, no closures,
    no cyclic structure), named for readability at call sites. *)
let equal_expr (a : expr) (b : expr) = a = b

let equal_stmts (a : stmt list) (b : stmt list) = a = b
let equal_typ (a : typ) (b : typ) = a = b

(** Number of statement nodes, counting nested bodies; used by metrics and
    by refactoring heuristics. *)
let stmt_count stmts =
  let n = ref 0 in
  iter_stmts (fun _ -> incr n) stmts;
  !n

(** Number of expression nodes in a statement list. *)
let expr_node_count stmts =
  let n = ref 0 in
  iter_stmts (fun s -> iter_own_exprs (fun e -> iter_expr (fun _ -> incr n) e) s) stmts;
  !n
