(* Big-step interpreter for MiniSpark.

   Annotations ([Assert], loop invariants, pre/post) are *not* executed:
   they are comments to Ada, and ignoring them here guarantees that an
   annotated program and its bare version have identical dynamic semantics —
   the property the refactoring equivalence checks rely on.

   Procedure calls use SPARK copy-in/copy-out parameter passing; arrays are
   values (copy-on-update), so there is no aliasing at runtime either. *)

open Ast

exception Stuck of string
(** Raised when execution cannot proceed (runtime check failure such as an
    out-of-range index or division by zero). *)

exception Out_of_fuel
(** The step budget ran out.  A distinct outcome from {!Stuck}: a
    differential oracle treats it as (suspected) divergence introduced by a
    rewrite, not as a runtime fault of the program under test. *)

let stuck fmt = Printf.ksprintf (fun s -> raise (Stuck s)) fmt

(* Per-program interpreter data, cached per domain and keyed by the
   *physical* program (transformation steps share unchanged programs by
   pointer, see Share):

   - a subprogram index replacing the linear [env.subs] scan on every
     call (built from the program's declarations, first name wins, the
     same resolution order as [Ast.find_sub]);
   - the evaluated global initialisers as a template, so a fresh runtime
     copies one small table instead of re-evaluating ten 256-element AES
     tables;
   - a memo of "const functions" (scalar in-parameters, reads no mutable
     global, transitively) and their results — gf_mul/xtime-style helpers
     dominate differential-oracle time.

   Values are immutable (arrays are copy-on-update), so sharing the
   template values and memoized results across runtimes is safe.  A memo
   hit skips the callee's fuel consumption: fuel stays an upper bound on
   work actually performed, and a divergence can only be reported when
   the body was actually run. *)
type progdata = {
  pd_subs : (ident, subprogram) Hashtbl.t;
  pd_fn_memo : (ident * Value.t list, Value.t) Hashtbl.t;
  pd_fn_const : (ident, bool) Hashtbl.t;
  mutable pd_template : (ident, Value.t) Hashtbl.t option;
  mutable pd_init_cost : int;
}

type rt = {
  env : Typecheck.env;
  program : program;
  globals : (ident, Value.t) Hashtbl.t;
  mutable fuel : int;
  pd : progdata;
}

let rec default_value env t =
  match Typecheck.resolve env t with
  | Tbool -> Value.Vbool false
  | Tint (Some (lo, _)) -> Value.Vint lo
  | Tint None -> Value.Vint 0
  | Tmod m -> Value.Vmod (0, m)
  | Tarray (lo, hi, elt) ->
      Value.Varray (lo, Array.init (hi - lo + 1) (fun _ -> default_value env elt))
  | Tnamed _ -> assert false

(** Coerce a value to a declared type: wraps plain ints into modular values,
    fixes array bounds of aggregate-produced arrays, recursively. *)
let rec coerce env t v =
  match (Typecheck.resolve env t, v) with
  | Tmod m, (Value.Vint n | Value.Vmod (n, _)) -> Value.wrap m n
  | Tint _, Value.Vmod (n, _) -> Value.Vint n
  | Tarray (lo, hi, elt), Value.Varray (_, data) ->
      if Array.length data <> hi - lo + 1 then
        stuck "array value of length %d where %d expected" (Array.length data)
          (hi - lo + 1);
      Value.Varray (lo, Array.map (coerce env elt) data)
  | _, v -> v

(* ---------------- frames ---------------- *)

type frame = (ident, Value.t) Hashtbl.t

let frame_create () : frame = Hashtbl.create 16

let lookup rt (frame : frame) x =
  match Hashtbl.find_opt frame x with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt rt.globals x with
      | Some v -> v
      | None -> stuck "unbound variable %s" x)

let assign rt (frame : frame) x v =
  if Hashtbl.mem frame x then Hashtbl.replace frame x v
  else if Hashtbl.mem rt.globals x then Hashtbl.replace rt.globals x v
  else stuck "assignment to unbound variable %s" x

(* ---------------- expression evaluation ---------------- *)

let arith op a b =
  let wrap_like r =
    match (a, b) with
    | Value.Vmod (_, m), _ | _, Value.Vmod (_, m) -> Value.wrap m r
    | _ -> Value.Vint r
  in
  let x = Value.as_int a and y = Value.as_int b in
  match op with
  | Add -> wrap_like (x + y)
  | Sub -> wrap_like (x - y)
  | Mul -> wrap_like (x * y)
  | Div ->
      if y = 0 then stuck "division by zero";
      wrap_like (x / y)
  | Mod ->
      if y = 0 then stuck "mod by zero";
      wrap_like (((x mod y) + abs y) mod abs y)
  | _ -> assert false

let bitwise op a b =
  let x = Value.as_int a and y = Value.as_int b in
  let r = match op with
    | Band -> x land y
    | Bor -> x lor y
    | Bxor -> x lxor y
    | _ -> assert false
  in
  match (a, b) with
  | Value.Vmod (_, m), _ | _, Value.Vmod (_, m) -> Value.wrap m r
  | _ -> Value.Vint r

let shift op a b =
  let x = Value.as_int a and k = Value.as_int b in
  if k < 0 || k > 62 then stuck "shift amount %d out of range" k;
  match op with
  | Shl -> (
      match a with
      | Value.Vmod (_, m) -> Value.wrap m (x lsl k)
      | _ -> Value.Vint (x lsl k))
  | Shr -> (
      match a with
      | Value.Vmod (_, m) -> Value.wrap m (x lsr k)
      | _ -> Value.Vint (x lsr k))
  | _ -> assert false

let compare_values op a b =
  match op with
  | Eq -> Value.Vbool (Value.equal a b)
  | Ne -> Value.Vbool (not (Value.equal a b))
  | Lt -> Value.Vbool (Value.as_int a < Value.as_int b)
  | Le -> Value.Vbool (Value.as_int a <= Value.as_int b)
  | Gt -> Value.Vbool (Value.as_int a > Value.as_int b)
  | Ge -> Value.Vbool (Value.as_int a >= Value.as_int b)
  | _ -> assert false

(* ---------------- per-program data ---------------- *)

let pd_bucket_cap = 8
let pd_table_cap = 256
let fn_memo_cap = 131_072

let pd_cache : (int, (program * progdata) list ref) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let progdata_of program =
  let cache = Domain.DLS.get pd_cache in
  let h = Hashtbl.hash program in
  let bucket =
    match Hashtbl.find_opt cache h with
    | Some b -> b
    | None ->
        if Hashtbl.length cache >= pd_table_cap then Hashtbl.reset cache;
        let b = ref [] in
        Hashtbl.replace cache h b;
        b
  in
  match List.find_opt (fun (p, _) -> p == program) !bucket with
  | Some (_, pd) -> pd
  | None ->
      let subs = Hashtbl.create 32 in
      List.iter
        (function
          | Dsub s ->
              if not (Hashtbl.mem subs s.sub_name) then
                Hashtbl.add subs s.sub_name s
          | Dtype _ | Dconst _ | Dvar _ -> ())
        program.prog_decls;
      let pd =
        {
          pd_subs = subs;
          pd_fn_memo = Hashtbl.create 64;
          pd_fn_const = Hashtbl.create 16;
          pd_template = None;
          pd_init_cost = 0;
        }
      in
      let rest =
        if List.length !bucket >= pd_bucket_cap then
          List.filteri (fun i _ -> i < pd_bucket_cap - 1) !bucket
        else !bucket
      in
      bucket := (program, pd) :: rest;
      pd

let scalar_typ env t =
  match Typecheck.resolve env t with
  | Tbool | Tint _ | Tmod _ -> true
  | Tarray _ | Tnamed _ -> false

(* A name is "global-free" when evaluating its body can never read a
   mutable global: no identifier in its body or local initialisers names
   an [Obj_global], and every subprogram it calls is itself global-free.
   Conservative: a local shadowing a global name disqualifies, cycles are
   resolved optimistically (a recursive function is global-free unless
   some body in the cycle reads a global — the provisional [true] is
   corrected before anyone observes it because the whole cycle is
   analysed within this call). *)
let rec global_free pd env name =
  match Hashtbl.find_opt pd.pd_fn_const ("g:" ^ name) with
  | Some b -> b
  | None -> (
      Hashtbl.replace pd.pd_fn_const ("g:" ^ name) true;
      let result =
        match Hashtbl.find_opt pd.pd_subs name with
        | None -> false
        | Some s ->
            let ok = ref true in
            let check_ident x =
              match List.assoc_opt x env.Typecheck.objects with
              | Some (Typecheck.Obj_global, _) -> ok := false
              | Some _ | None -> ()
            in
            let visit_expr e =
              iter_expr
                (fun e ->
                  match e with
                  | Var x | Old x -> check_ident x
                  | Call (f, _) ->
                      if Hashtbl.mem pd.pd_subs f then (
                        if not (global_free pd env f) then ok := false)
                      else check_ident f
                  | Bool_lit _ | Int_lit _ | Index _ | Unop _ | Binop _
                  | Aggregate _ | Result | Quantified _ ->
                      ())
                e
            in
            List.iter (fun v -> Option.iter visit_expr v.v_init) s.sub_locals;
            iter_stmts
              (fun st ->
                (match st with
                | Call_stmt (f, _) -> if not (global_free pd env f) then ok := false
                | Null | Assign _ | If _ | For _ | While _ | Return _ | Assert _
                  ->
                    ());
                iter_own_exprs visit_expr st)
              s.sub_body;
            !ok
      in
      Hashtbl.replace pd.pd_fn_const ("g:" ^ name) result;
      result)

(* Memoizable calls: functions whose parameters are all scalar (the key
   stays small and hash-friendly) and that never read mutable globals, so
   the result is a pure function of the argument values. *)
let fn_const pd env name =
  match Hashtbl.find_opt pd.pd_fn_const name with
  | Some b -> b
  | None ->
      let result =
        match Hashtbl.find_opt pd.pd_subs name with
        | None -> false
        | Some s ->
            s.sub_return <> None
            && List.for_all
                 (fun p -> p.par_mode = Mode_in && scalar_typ env p.par_typ)
                 s.sub_params
            && global_free pd env name
      in
      Hashtbl.replace pd.pd_fn_const name result;
      result

let rec eval rt (frame : frame) e =
  match e with
  | Bool_lit b -> Value.Vbool b
  | Int_lit n -> Value.Vint n
  | Var x -> lookup rt frame x
  | Old x -> lookup rt frame x (* annotations are not executed; defensive *)
  | Result -> stuck "result outside postcondition"
  | Index (a, i) ->
      let av = eval rt frame a in
      let iv = Value.as_int (eval rt frame i) in
      (try Value.array_get av iv with Value.Runtime_error m -> stuck "%s" m)
  | Unop (Neg, a) -> (
      match eval rt frame a with
      | Value.Vint n -> Value.Vint (-n)
      | Value.Vmod (n, m) -> Value.wrap m (-n)
      | v -> stuck "negating %s" (Value.to_string v))
  | Unop (Not, a) -> (
      match eval rt frame a with
      | Value.Vbool b -> Value.Vbool (not b)
      | Value.Vmod (n, m) -> Value.wrap m (m - 1 - n)
      | v -> stuck "not applied to %s" (Value.to_string v))
  | Binop ((Add | Sub | Mul | Div | Mod) as op, a, b) ->
      arith op (eval rt frame a) (eval rt frame b)
  | Binop ((Band | Bor) as op, a, b) -> bitwise op (eval rt frame a) (eval rt frame b)
  | Binop (Bxor, a, b) -> (
      match (eval rt frame a, eval rt frame b) with
      | Value.Vbool x, Value.Vbool y -> Value.Vbool (x <> y)
      | x, y -> bitwise Bxor x y)
  | Binop ((Shl | Shr) as op, a, b) -> shift op (eval rt frame a) (eval rt frame b)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
      compare_values op (eval rt frame a) (eval rt frame b)
  | Binop (And, a, b) -> (
      match (eval rt frame a, eval rt frame b) with
      | Value.Vbool x, Value.Vbool y -> Value.Vbool (x && y)
      | x, y -> bitwise Band x y)
  | Binop (Or, a, b) -> (
      match (eval rt frame a, eval rt frame b) with
      | Value.Vbool x, Value.Vbool y -> Value.Vbool (x || y)
      | x, y -> bitwise Bor x y)
  | Binop (And_then, a, b) ->
      if Value.as_bool (eval rt frame a) then eval rt frame b else Value.Vbool false
  | Binop (Or_else, a, b) ->
      if Value.as_bool (eval rt frame a) then Value.Vbool true else eval rt frame b
  | Call (name, args) -> (
      match Hashtbl.find_opt rt.pd.pd_subs name with
      | Some callee when callee.sub_return <> None ->
          let argv = List.map (eval rt frame) args in
          call_function rt callee argv
      | Some _ -> stuck "procedure %s in expression" name
      | None -> (
          (* array indexing written call-style (pre-normalisation input) *)
          match (Hashtbl.find_opt rt.globals name, args) with
          | Some arr, [ i ] -> (
              let iv = Value.as_int (eval rt frame i) in
              try Value.array_get arr iv
              with Value.Runtime_error m -> stuck "%s" m)
          | _ -> stuck "unknown function %s" name))
  | Aggregate es ->
      Value.Varray (0, Array.of_list (List.map (eval rt frame) es))
  | Quantified (q, v, lo, hi, body) ->
      (* evaluable for testing annotation semantics *)
      let lov = Value.as_int (eval rt frame lo) in
      let hiv = Value.as_int (eval rt frame hi) in
      let frame' = Hashtbl.copy frame in
      let holds i =
        Hashtbl.replace frame' v (Value.Vint i);
        Value.as_bool (eval rt frame' body)
      in
      let rec all i = i > hiv || (holds i && all (i + 1)) in
      let rec some i = i <= hiv && (holds i || some (i + 1)) in
      Value.Vbool (match q with Forall -> all lov | Exists -> some lov)

(* ---------------- statements ---------------- *)

and exec_stmts rt frame stmts : Value.t option option =
  (* [None] = fell through; [Some r] = returned (with optional value) *)
  match stmts with
  | [] -> None
  | stmt :: rest -> (
      match exec_stmt rt frame stmt with
      | None -> exec_stmts rt frame rest
      | Some _ as r -> r)

and exec_stmt rt frame stmt =
  rt.fuel <- rt.fuel - 1;
  if rt.fuel <= 0 then raise Out_of_fuel;
  match stmt with
  | Null -> None
  | Assert _ -> None (* annotation: not executed *)
  | Assign (lv, e) ->
      let v = eval rt frame e in
      let v =
        (* wrap into the modulus of the current target value if modular *)
        match (current_value rt frame lv, v) with
        | Value.Vmod (_, m), (Value.Vint n | Value.Vmod (n, _)) -> Value.wrap m n
        | _, v -> v
      in
      write_lvalue rt frame lv v;
      None
  | If (branches, els) ->
      let rec pick = function
        | [] -> exec_stmts rt frame els
        | (g, body) :: rest ->
            if Value.as_bool (eval rt frame g) then exec_stmts rt frame body
            else pick rest
      in
      pick branches
  | For fl ->
      let lo = Value.as_int (eval rt frame fl.for_lo) in
      let hi = Value.as_int (eval rt frame fl.for_hi) in
      let had_binding = Hashtbl.mem frame fl.for_var in
      let saved = if had_binding then Some (Hashtbl.find frame fl.for_var) else None in
      let result =
        if lo > hi then None
        else begin
          let first = if fl.for_reverse then hi else lo in
          let last = if fl.for_reverse then lo else hi in
          let step = if fl.for_reverse then -1 else 1 in
          let rec run i =
            Hashtbl.replace frame fl.for_var (Value.Vint i);
            match exec_stmts rt frame fl.for_body with
            | None -> if i = last then None else run (i + step)
            | Some _ as r -> r
          in
          run first
        end
      in
      (match saved with
      | Some v -> Hashtbl.replace frame fl.for_var v
      | None -> Hashtbl.remove frame fl.for_var);
      result
  | While wl ->
      let rec run () =
        if Value.as_bool (eval rt frame wl.while_cond) then begin
          rt.fuel <- rt.fuel - 1;
          if rt.fuel <= 0 then raise Out_of_fuel;
          match exec_stmts rt frame wl.while_body with
          | None -> run ()
          | Some _ as r -> r
        end
        else None
      in
      run ()
  | Return e -> Some (Option.map (eval rt frame) e)
  | Call_stmt (name, args) -> (
      match Hashtbl.find_opt rt.pd.pd_subs name with
      | None -> stuck "unknown procedure %s" name
      | Some callee ->
          let results = call_procedure_values rt frame callee args in
          (* copy-out *)
          List.iter2
            (fun p (arg, out_value) ->
              match (p.par_mode, out_value) with
              | (Mode_out | Mode_in_out), Some v -> (
                  match arg with
                  | Var x -> assign rt frame x v
                  | _ -> stuck "out actual is not a variable")
              | _ -> ())
            callee.sub_params
            (List.combine args results);
          None)

and current_value rt frame lv =
  match lv with
  | Lvar x -> lookup rt frame x
  | Lindex (lv', i) ->
      let av = current_value rt frame lv' in
      let iv = Value.as_int (eval rt frame i) in
      (try Value.array_get av iv with Value.Runtime_error m -> stuck "%s" m)

and write_lvalue rt frame lv v =
  match lv with
  | Lvar x -> assign rt frame x v
  | Lindex (lv', i) ->
      let av = current_value rt frame lv' in
      let iv = Value.as_int (eval rt frame i) in
      let av' =
        try Value.array_set av iv v with Value.Runtime_error m -> stuck "%s" m
      in
      write_lvalue rt frame lv' av'

and bind_params rt callee argv =
  let frame = frame_create () in
  List.iter2
    (fun p v ->
      let v' =
        match p.par_mode with
        | Mode_in | Mode_in_out -> coerce rt.env p.par_typ v
        | Mode_out -> default_value rt.env p.par_typ
      in
      Hashtbl.replace frame p.par_name v')
    callee.sub_params argv;
  List.iter
    (fun vd ->
      let v =
        match vd.v_init with
        | Some e -> coerce rt.env vd.v_typ (eval rt frame e)
        | None -> default_value rt.env vd.v_typ
      in
      Hashtbl.replace frame vd.v_name v)
    callee.sub_locals;
  frame

and call_function rt callee argv =
  if fn_const rt.pd rt.env callee.sub_name then begin
    let key = (callee.sub_name, argv) in
    match Hashtbl.find_opt rt.pd.pd_fn_memo key with
    | Some v -> v
    | None ->
        let v = call_function_uncached rt callee argv in
        if Hashtbl.length rt.pd.pd_fn_memo < fn_memo_cap then
          Hashtbl.add rt.pd.pd_fn_memo key v;
        v
  end
  else call_function_uncached rt callee argv

and call_function_uncached rt callee argv =
  let frame = bind_params rt callee argv in
  match exec_stmts rt frame callee.sub_body with
  | Some (Some v) ->
      let ret = match callee.sub_return with Some t -> t | None -> assert false in
      coerce rt.env ret v
  | Some None | None -> stuck "function %s did not return a value" callee.sub_name

and call_procedure_values rt caller_frame callee args =
  (* returns, per parameter, the value to copy out (None for in-params) *)
  let argv =
    List.map2
      (fun p a ->
        match p.par_mode with
        | Mode_in | Mode_in_out -> eval rt caller_frame a
        | Mode_out -> Value.Vint 0 (* placeholder; bind_params defaults it *))
      callee.sub_params args
  in
  let frame = bind_params rt callee argv in
  (match exec_stmts rt frame callee.sub_body with
  | None | Some None -> ()
  | Some (Some _) -> stuck "procedure %s returned a value" callee.sub_name);
  List.map
    (fun p ->
      match p.par_mode with
      | Mode_in -> None
      | Mode_out | Mode_in_out ->
          Some (coerce rt.env p.par_typ (Hashtbl.find frame p.par_name)))
    callee.sub_params

(* ---------------- public API ---------------- *)

let default_fuel = 50_000_000

(** Build a runtime for a type-checked program: evaluates global constant
    and variable initialisers.  The evaluated initialisers are cached per
    (domain, physical program) and copied into subsequent runtimes — the
    values are immutable, so sharing them is safe.  A cached construction
    still accounts the fuel the initialisers consumed when first built. *)
let make ?(fuel = default_fuel) (env : Typecheck.env) (program : program) =
  let pd = progdata_of program in
  match pd.pd_template with
  | Some template ->
      let remaining = fuel - pd.pd_init_cost in
      if remaining <= 0 then raise Out_of_fuel;
      { env; program; globals = Hashtbl.copy template; fuel = remaining; pd }
  | None ->
      let rt = { env; program; globals = Hashtbl.create 64; fuel; pd } in
      List.iter
        (fun decl ->
          match decl with
          | Dtype _ | Dsub _ -> ()
          | Dconst c ->
              let frame = frame_create () in
              Hashtbl.replace rt.globals c.k_name
                (coerce env c.k_typ (eval rt frame c.k_value))
          | Dvar v ->
              let frame = frame_create () in
              let value =
                match v.v_init with
                | Some e -> coerce env v.v_typ (eval rt frame e)
                | None -> default_value env v.v_typ
              in
              Hashtbl.replace rt.globals v.v_name value)
        program.prog_decls;
      pd.pd_template <- Some (Hashtbl.copy rt.globals);
      pd.pd_init_cost <- fuel - rt.fuel;
      rt

let fresh_runtime ?fuel env program = make ?fuel env program

(** Call a function by name with OCaml-side argument values. *)
let run_function rt name argv =
  match Ast.find_sub rt.program name with
  | Some callee when callee.sub_return <> None -> call_function rt callee argv
  | Some _ -> stuck "%s is a procedure" name
  | None -> stuck "no function %s" name

(** Call a procedure with values for its [in] and [in out] parameters (in
    declaration order); [out] parameters are synthesised.  Returns the final
    values of out / in-out parameters, in declaration order. *)
let run_procedure rt name argv =
  match Ast.find_sub rt.program name with
  | Some callee when callee.sub_return = None ->
      let frame = frame_create () in
      let remaining = ref argv in
      let next_arg () =
        match !remaining with
        | v :: rest ->
            remaining := rest;
            v
        | [] -> stuck "too few arguments to %s" name
      in
      let args =
        List.mapi
          (fun k p ->
            let x = Printf.sprintf "__actual_%d" k in
            let v =
              match p.par_mode with
              | Mode_in | Mode_in_out -> next_arg ()
              | Mode_out -> default_value rt.env p.par_typ
            in
            Hashtbl.replace frame x v;
            Var x)
          callee.sub_params
      in
      if !remaining <> [] then stuck "too many arguments to %s" name;
      let outs = call_procedure_values rt frame callee args in
      List.filter_map (fun v -> v) outs
  | Some _ -> stuck "%s is a function" name
  | None -> stuck "no procedure %s" name

let global_value rt name =
  match Hashtbl.find_opt rt.globals name with
  | Some v -> v
  | None -> stuck "no global %s" name

(** Evaluate a closed expression in a frame of given bindings (pure: global
    constants of the program are visible). *)
let eval_expr rt bindings e =
  let frame = frame_create () in
  List.iter (fun (x, v) -> Hashtbl.replace frame x v) bindings;
  eval rt frame e
