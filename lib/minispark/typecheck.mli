(** Static semantics for MiniSpark.

    [check] validates a program and returns a *normalised* copy: call-style
    indexing becomes [Index], intrinsic shifts become [Shl]/[Shr], logical
    [and]/[or] on modular operands become bitwise.

    SPARK-like restrictions enforced here underpin WP generation and
    refactoring: pure functions (in-parameters only, no global writes, no
    procedure calls), no procedures in expressions, no writes to
    in-parameters or constants, annotation-only constructs confined to
    annotations, and no aliased writable actuals. *)

open Ast

exception Type_error of string

type obj_kind =
  | Obj_const
  | Obj_global
  | Obj_local
  | Obj_param of param_mode

type env = {
  types : (ident * typ) list;                 (** resolved right-hand sides *)
  objects : (ident * (obj_kind * typ)) list;  (** resolved types *)
  subs : (ident * subprogram) list;
}

val empty_env : env

val resolve : env -> typ -> typ
(** Resolve named types to structural form.
    @raise Type_error on unknown names. *)

val compatible : typ -> typ -> bool
(** Assignment compatibility.  Range subtypes of integer are
    inter-assignable (range membership is a proof obligation, not a typing
    fact); modular types are inter-assignable when one modulus divides the
    other (widening preserves values, narrowing wraps deterministically). *)

val check : program -> env * program
(** Type-check; returns the environment and the normalised program.
    Declarations are processed in order (declare-before-use, as in Ada).
    Every returned declaration is interned ({!Share.intern_decl}), so
    re-deriving a structurally equal declaration yields the same physical
    object.
    @raise Type_error on violations. *)

val check_decl : env -> decl -> env * decl
(** Check one declaration against the environment accumulated so far;
    returns the extended environment and the normalised (interned)
    declaration. *)

val check_incremental : baseline:(env * program) -> program -> env * program
(** Re-check a program against a checked baseline, reusing every
    declaration that is physically equal to its baseline namesake and
    whose referenced names all kept their observable surface (resolved
    type right-hand side, object kind/type, subprogram signature).  The
    result — environment and program — is structurally identical to
    [check program]; only edited declarations and their surface-affected
    dependents pay the re-checking cost.

    Precondition: [baseline] was returned by {!check} or by this function
    (a physically reused declaration skips normalisation, so the baseline
    must already be normalised).
    @raise Type_error on violations. *)

val expr_type : env -> subprogram option -> expr -> typ
(** Resolved type of a checked expression in a subprogram's scope. *)
