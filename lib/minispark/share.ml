(* Hash-consing / maximal-sharing layer for the MiniSpark AST, in the
   style of lib/logic/hc.ml but without changing the plain-variant node
   types (structural equality on bare constructors is load-bearing for
   clone detection and rerolling, see ast.ml).

   Instead of tagged nodes we keep, per domain:

   - weak interning tables of {node; info} cells, hashed by a full
     structural hash computed bottom-up from child cells and compared by
     *shallow* equality (children by pointer), so interning an
     already-shared tree touches each distinct node once;

   - a strong "canonical" memo from physical node identity to its cell
     (OCaml has no identity hash, so the memo is keyed by the bounded
     structural [Hashtbl.hash] and resolved by a pointer scan of the
     bucket), making re-interning an unchanged subtree O(1);

   - a declaration unifier that maps a rebuilt-but-structurally-equal
     declaration back to its canonical object, which is what lets
     [Typecheck.check_incremental] recognise untouched declarations by
     pointer comparison across transformation steps.

   All state lives in [Domain.DLS]: each domain interns independently, so
   farm workers never contend and never see another domain's pointers. *)

open Ast

type info = { i_tag : int; i_hash : int; i_size : int }
type 'a cell = { c_node : 'a; c_info : info }

let combine a b = ((a * 65599) + b) land max_int
let combine3 a b c = combine (combine a b) c

(* ------------------------------------------------------------------ *)
(* Shallow equality: same constructor, children compared by pointer    *)
(* ------------------------------------------------------------------ *)

let rec phys_eq_list xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> x == y && phys_eq_list xs ys
  | _ -> false

let shallow_equal_expr (a : expr) (b : expr) =
  match (a, b) with
  | Bool_lit x, Bool_lit y -> x = y
  | Int_lit x, Int_lit y -> x = y
  | Var x, Var y | Old x, Old y -> String.equal x y
  | Result, Result -> true
  | Index (a1, i1), Index (a2, i2) -> a1 == a2 && i1 == i2
  | Unop (o1, a1), Unop (o2, a2) -> o1 = o2 && a1 == a2
  | Binop (o1, a1, b1), Binop (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
  | Call (f1, xs), Call (f2, ys) -> String.equal f1 f2 && phys_eq_list xs ys
  | Aggregate xs, Aggregate ys -> phys_eq_list xs ys
  | Quantified (q1, v1, l1, h1, b1), Quantified (q2, v2, l2, h2, b2) ->
      q1 = q2 && String.equal v1 v2 && l1 == l2 && h1 == h2 && b1 == b2
  | _ -> false

let rec shallow_equal_lvalue a b =
  match (a, b) with
  | Lvar x, Lvar y -> String.equal x y
  | Lindex (a1, i1), Lindex (a2, i2) -> shallow_equal_lvalue a1 a2 && i1 == i2
  | _ -> false

let shallow_equal_stmt (a : stmt) (b : stmt) =
  match (a, b) with
  | Null, Null -> true
  | Assign (l1, e1), Assign (l2, e2) -> e1 == e2 && shallow_equal_lvalue l1 l2
  | If (br1, e1), If (br2, e2) ->
      List.length br1 = List.length br2
      && List.for_all2
           (fun (g1, b1) (g2, b2) -> g1 == g2 && phys_eq_list b1 b2)
           br1 br2
      && phys_eq_list e1 e2
  | For f1, For f2 ->
      String.equal f1.for_var f2.for_var
      && f1.for_reverse = f2.for_reverse
      && f1.for_lo == f2.for_lo && f1.for_hi == f2.for_hi
      && phys_eq_list f1.for_invariants f2.for_invariants
      && phys_eq_list f1.for_body f2.for_body
  | While w1, While w2 ->
      w1.while_cond == w2.while_cond
      && phys_eq_list w1.while_invariants w2.while_invariants
      && phys_eq_list w1.while_body w2.while_body
  | Call_stmt (n1, a1), Call_stmt (n2, a2) ->
      String.equal n1 n2 && phys_eq_list a1 a2
  | Return e1, Return e2 -> (
      match (e1, e2) with
      | None, None -> true
      | Some x, Some y -> x == y
      | _ -> false)
  | Assert e1, Assert e2 -> e1 == e2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)
(* ------------------------------------------------------------------ *)

module EW = Weak.Make (struct
  type t = expr cell

  let hash c = c.c_info.i_hash
  let equal a b = shallow_equal_expr a.c_node b.c_node
end)

module SW = Weak.Make (struct
  type t = stmt cell

  let hash c = c.c_info.i_hash
  let equal a b = shallow_equal_stmt a.c_node b.c_node
end)

type state = {
  mutable tag : int;
  mutable interns : int;
  mutable hits : int;
  e_weak : EW.t;
  s_weak : SW.t;
  e_canon : (int, expr cell list ref) Hashtbl.t;
  s_canon : (int, stmt cell list ref) Hashtbl.t;
  d_canon : (int, (decl * decl) list ref) Hashtbl.t;
  d_unify : (int, decl list ref) Hashtbl.t;
  d_refs : (int, (decl * ident list) list ref) Hashtbl.t;
  d_digest : (int, (decl * string) list ref) Hashtbl.t;
  p_digest : (int, (program * string) list ref) Hashtbl.t;
}

let fresh () =
  {
    tag = 0;
    interns = 0;
    hits = 0;
    e_weak = EW.create 4096;
    s_weak = SW.create 1024;
    e_canon = Hashtbl.create 4096;
    s_canon = Hashtbl.create 1024;
    d_canon = Hashtbl.create 64;
    d_unify = Hashtbl.create 64;
    d_refs = Hashtbl.create 64;
    d_digest = Hashtbl.create 64;
    p_digest = Hashtbl.create 64;
  }

let dls : state Domain.DLS.key = Domain.DLS.new_key fresh
let st () = Domain.DLS.get dls

let clear () =
  let s = st () in
  s.tag <- 0;
  s.interns <- 0;
  s.hits <- 0;
  EW.clear s.e_weak;
  SW.clear s.s_weak;
  Hashtbl.reset s.e_canon;
  Hashtbl.reset s.s_canon;
  Hashtbl.reset s.d_canon;
  Hashtbl.reset s.d_unify;
  Hashtbl.reset s.d_refs;
  Hashtbl.reset s.d_digest;
  Hashtbl.reset s.p_digest

(* The canonical memos are strong; cap growth so a long-lived server
   interning many unrelated programs cannot leak without bound.  A clear
   only costs one round of re-interning. *)
let max_canon_entries = 2_000_000

let guard_capacity s =
  if Hashtbl.length s.e_canon > max_canon_entries then clear ()

(* Physical-identity memo: bounded structural hash -> bucket, resolved by
   pointer scan.  Buckets are capped; eviction drops the oldest entries
   (correctness is unaffected, only the fast path). *)
let bucket_cap = 64

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let memo_find tbl key proj =
  match Hashtbl.find_opt tbl (Hashtbl.hash key) with
  | None -> None
  | Some b -> List.find_opt (fun x -> proj x == key) !b

let memo_add tbl key x =
  let h = Hashtbl.hash key in
  match Hashtbl.find_opt tbl h with
  | None -> Hashtbl.add tbl h (ref [ x ])
  | Some b ->
      let rest =
        if List.length !b >= bucket_cap then take (bucket_cap - 1) !b else !b
      in
      b := x :: rest

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let intern_expr_cell s node h size =
  let probe = { c_node = node; c_info = { i_tag = -1; i_hash = h; i_size = size } } in
  match EW.find_opt s.e_weak probe with
  | Some c -> c
  | None ->
      s.tag <- s.tag + 1;
      s.interns <- s.interns + 1;
      let c =
        { c_node = node; c_info = { i_tag = s.tag; i_hash = h; i_size = size } }
      in
      EW.add s.e_weak c;
      c

let intern_stmt_cell s node h size =
  let probe = { c_node = node; c_info = { i_tag = -1; i_hash = h; i_size = size } } in
  match SW.find_opt s.s_weak probe with
  | Some c -> c
  | None ->
      s.tag <- s.tag + 1;
      s.interns <- s.interns + 1;
      let c =
        { c_node = node; c_info = { i_tag = s.tag; i_hash = h; i_size = size } }
      in
      SW.add s.s_weak c;
      c

let cell_nodes cells originals =
  if List.for_all2 (fun c x -> c.c_node == x) cells originals then originals
  else List.map (fun c -> c.c_node) cells

let cells_hash cells =
  List.fold_left (fun acc c -> combine acc c.c_info.i_hash) 17 cells

let cells_size cells =
  List.fold_left (fun acc c -> acc + c.c_info.i_size) 0 cells

let rec expr_cell s (e : expr) : expr cell =
  match memo_find s.e_canon e (fun c -> c.c_node) with
  | Some c ->
      s.hits <- s.hits + 1;
      c
  | None ->
      let node, h, size =
        match e with
        | Bool_lit b -> (e, combine 1 (Bool.to_int b), 1)
        | Int_lit n -> (e, combine 2 (n land max_int), 1)
        | Var x -> (e, combine 3 (Hashtbl.hash x), 1)
        | Old x -> (e, combine 4 (Hashtbl.hash x), 1)
        | Result -> (e, 5, 1)
        | Index (a, i) ->
            let ca = expr_cell s a in
            let ci = expr_cell s i in
            let node =
              if ca.c_node == a && ci.c_node == i then e
              else Index (ca.c_node, ci.c_node)
            in
            ( node,
              combine3 6 ca.c_info.i_hash ci.c_info.i_hash,
              1 + ca.c_info.i_size + ci.c_info.i_size )
        | Unop (op, a) ->
            let ca = expr_cell s a in
            let node = if ca.c_node == a then e else Unop (op, ca.c_node) in
            (node, combine3 7 (Hashtbl.hash op) ca.c_info.i_hash, 1 + ca.c_info.i_size)
        | Binop (op, a, b) ->
            let ca = expr_cell s a in
            let cb = expr_cell s b in
            let node =
              if ca.c_node == a && cb.c_node == b then e
              else Binop (op, ca.c_node, cb.c_node)
            in
            ( node,
              combine (combine3 8 (Hashtbl.hash op) ca.c_info.i_hash) cb.c_info.i_hash,
              1 + ca.c_info.i_size + cb.c_info.i_size )
        | Call (f, args) ->
            let cells = List.map (expr_cell s) args in
            let args' = cell_nodes cells args in
            let node = if args' == args then e else Call (f, args') in
            ( node,
              combine3 9 (Hashtbl.hash f) (cells_hash cells),
              1 + cells_size cells )
        | Aggregate es ->
            let cells = List.map (expr_cell s) es in
            let es' = cell_nodes cells es in
            let node = if es' == es then e else Aggregate es' in
            (node, combine 10 (cells_hash cells), 1 + cells_size cells)
        | Quantified (q, v, lo, hi, body) ->
            let cl = expr_cell s lo in
            let ch = expr_cell s hi in
            let cb = expr_cell s body in
            let node =
              if cl.c_node == lo && ch.c_node == hi && cb.c_node == body then e
              else Quantified (q, v, cl.c_node, ch.c_node, cb.c_node)
            in
            ( node,
              combine
                (combine3 11 (Hashtbl.hash q) (Hashtbl.hash v))
                (combine3 (combine 0 cl.c_info.i_hash) ch.c_info.i_hash cb.c_info.i_hash),
              1 + cl.c_info.i_size + ch.c_info.i_size + cb.c_info.i_size )
      in
      let cell = intern_expr_cell s node h size in
      memo_add s.e_canon e cell;
      if cell.c_node != e && memo_find s.e_canon cell.c_node (fun c -> c.c_node) = None
      then memo_add s.e_canon cell.c_node cell;
      cell

let rec lvalue_cell s (lv : lvalue) : lvalue * int * int =
  match lv with
  | Lvar x -> (lv, combine 31 (Hashtbl.hash x), 1)
  | Lindex (inner, i) ->
      let inner', ih, isz = lvalue_cell s inner in
      let ci = expr_cell s i in
      let node =
        if inner' == inner && ci.c_node == i then lv
        else Lindex (inner', ci.c_node)
      in
      (node, combine3 32 ih ci.c_info.i_hash, 1 + isz + ci.c_info.i_size)

let rec stmt_cell s (stmt : stmt) : stmt cell =
  match memo_find s.s_canon stmt (fun c -> c.c_node) with
  | Some c ->
      s.hits <- s.hits + 1;
      c
  | None ->
      let node, h, size =
        match stmt with
        | Null -> (stmt, 21, 1)
        | Assign (lv, e) ->
            let lv', lh, lsz = lvalue_cell s lv in
            let ce = expr_cell s e in
            let node =
              if lv' == lv && ce.c_node == e then stmt
              else Assign (lv', ce.c_node)
            in
            (node, combine3 22 lh ce.c_info.i_hash, 1 + lsz + ce.c_info.i_size)
        | If (branches, els) ->
            let h = ref 23 in
            let size = ref 1 in
            let branch ((g, body) as br) =
              let cg = expr_cell s g in
              let body', bh, bsz = stmts_cells s body in
              h := combine3 !h cg.c_info.i_hash bh;
              size := !size + cg.c_info.i_size + bsz;
              if cg.c_node == g && body' == body then br else (cg.c_node, body')
            in
            let branches' = map_sharing branch branches in
            let els', eh, esz = stmts_cells s els in
            h := combine !h eh;
            size := !size + esz;
            let node =
              if branches' == branches && els' == els then stmt
              else If (branches', els')
            in
            (node, !h, !size)
        | For fl ->
            let cl = expr_cell s fl.for_lo in
            let ch = expr_cell s fl.for_hi in
            let inv_cells = List.map (expr_cell s) fl.for_invariants in
            let invs' = cell_nodes inv_cells fl.for_invariants in
            let body', bh, bsz = stmts_cells s fl.for_body in
            let node =
              if
                cl.c_node == fl.for_lo && ch.c_node == fl.for_hi
                && invs' == fl.for_invariants
                && body' == fl.for_body
              then stmt
              else
                For
                  {
                    fl with
                    for_lo = cl.c_node;
                    for_hi = ch.c_node;
                    for_invariants = invs';
                    for_body = body';
                  }
            in
            ( node,
              combine
                (combine3
                   (combine3 24 (Hashtbl.hash fl.for_var) (Bool.to_int fl.for_reverse))
                   cl.c_info.i_hash ch.c_info.i_hash)
                (combine (cells_hash inv_cells) bh),
              1 + cl.c_info.i_size + ch.c_info.i_size + cells_size inv_cells + bsz )
        | While wl ->
            let cc = expr_cell s wl.while_cond in
            let inv_cells = List.map (expr_cell s) wl.while_invariants in
            let invs' = cell_nodes inv_cells wl.while_invariants in
            let body', bh, bsz = stmts_cells s wl.while_body in
            let node =
              if
                cc.c_node == wl.while_cond
                && invs' == wl.while_invariants
                && body' == wl.while_body
              then stmt
              else
                While
                  {
                    while_cond = cc.c_node;
                    while_invariants = invs';
                    while_body = body';
                  }
            in
            ( node,
              combine3 25 cc.c_info.i_hash (combine (cells_hash inv_cells) bh),
              1 + cc.c_info.i_size + cells_size inv_cells + bsz )
        | Call_stmt (n, args) ->
            let cells = List.map (expr_cell s) args in
            let args' = cell_nodes cells args in
            let node = if args' == args then stmt else Call_stmt (n, args') in
            (node, combine3 26 (Hashtbl.hash n) (cells_hash cells), 1 + cells_size cells)
        | Return None -> (stmt, 27, 1)
        | Return (Some e) ->
            let ce = expr_cell s e in
            let node = if ce.c_node == e then stmt else Return (Some ce.c_node) in
            (node, combine3 27 1 ce.c_info.i_hash, 1 + ce.c_info.i_size)
        | Assert e ->
            let ce = expr_cell s e in
            let node = if ce.c_node == e then stmt else Assert ce.c_node in
            (node, combine 28 ce.c_info.i_hash, 1 + ce.c_info.i_size)
      in
      let cell = intern_stmt_cell s node h size in
      memo_add s.s_canon stmt cell;
      if
        cell.c_node != stmt
        && memo_find s.s_canon cell.c_node (fun c -> c.c_node) = None
      then memo_add s.s_canon cell.c_node cell;
      cell

and stmts_cells s (ss : stmt list) : stmt list * int * int =
  let cells = List.map (stmt_cell s) ss in
  let ss' = cell_nodes cells ss in
  (ss', cells_hash cells, cells_size cells)

(* ------------------------------------------------------------------ *)
(* Declarations and programs                                           *)
(* ------------------------------------------------------------------ *)

let opt_expr_share s o =
  match o with
  | None -> o
  | Some e ->
      let c = expr_cell s e in
      if c.c_node == e then o else Some c.c_node

let var_decl_share s (v : var_decl) =
  let init' = opt_expr_share s v.v_init in
  if init' == v.v_init then v else { v with v_init = init' }

let sub_share s (sub : subprogram) =
  let pre' = opt_expr_share s sub.sub_pre in
  let post' = opt_expr_share s sub.sub_post in
  let locals' = map_sharing (var_decl_share s) sub.sub_locals in
  let body', _, _ = stmts_cells s sub.sub_body in
  if
    pre' == sub.sub_pre && post' == sub.sub_post
    && locals' == sub.sub_locals
    && body' == sub.sub_body
  then sub
  else
    { sub with sub_pre = pre'; sub_post = post'; sub_locals = locals'; sub_body = body' }

let intern_decl_uncached s (d : decl) : decl =
  let d' =
    match d with
    | Dtype _ -> d
    | Dconst c ->
        let v = expr_cell s c.k_value in
        if v.c_node == c.k_value then d else Dconst { c with k_value = v.c_node }
    | Dvar v ->
        let v' = var_decl_share s v in
        if v' == v then d else Dvar v'
    | Dsub sub ->
        let sub' = sub_share s sub in
        if sub' == sub then d else Dsub sub'
  in
  (* unify with a structurally equal canonical declaration from an
     earlier generation: the structural compare short-circuits on the
     pointer-shared subtrees just installed above *)
  let h = Hashtbl.hash d' in
  match Hashtbl.find_opt s.d_unify h with
  | Some bucket -> (
      match List.find_opt (fun d0 -> d0 == d' || d0 = d') !bucket with
      | Some d0 -> d0
      | None ->
          bucket := d' :: take (bucket_cap - 1) !bucket;
          d')
  | None ->
      Hashtbl.add s.d_unify h (ref [ d' ]);
      d'

let intern_decl d =
  let s = st () in
  guard_capacity s;
  match memo_find s.d_canon d fst with
  | Some (_, canonical) ->
      s.hits <- s.hits + 1;
      canonical
  | None ->
      let canonical = intern_decl_uncached s d in
      memo_add s.d_canon d (d, canonical);
      if canonical != d && memo_find s.d_canon canonical fst = None then
        memo_add s.d_canon canonical (canonical, canonical);
      canonical

let intern_program p =
  let decls' = map_sharing intern_decl p.prog_decls in
  if decls' == p.prog_decls then p else { p with prog_decls = decls' }

let intern_expr e = (expr_cell (st ()) e).c_node
let expr_info e = (expr_cell (st ()) e).c_info
let stmt_info stmt = (stmt_cell (st ()) stmt).c_info

let intern_stmts ss =
  let ss', _, _ = stmts_cells (st ()) ss in
  ss'

(* ------------------------------------------------------------------ *)
(* Conservative syntactic references of a declaration                  *)
(* ------------------------------------------------------------------ *)

let rec typ_refs acc = function
  | Tnamed n -> n :: acc
  | Tarray (_, _, t) -> typ_refs acc t
  | Tbool | Tint _ | Tmod _ -> acc

let expr_refs acc e =
  let acc = ref acc in
  iter_expr
    (fun e ->
      match e with
      | Var x | Old x -> acc := x :: !acc
      | Call (f, _) -> acc := f :: !acc
      | Bool_lit _ | Int_lit _ | Index _ | Unop _ | Binop _ | Aggregate _
      | Result | Quantified _ ->
          ())
    e;
  !acc

let stmts_refs acc ss =
  let acc = ref acc in
  iter_stmts
    (fun stmt ->
      (match stmt with
      | Assign (lv, _) -> acc := lvalue_base lv :: !acc
      | Call_stmt (n, _) -> acc := n :: !acc
      | For fl -> acc := fl.for_var :: !acc
      | Null | If _ | While _ | Return _ | Assert _ -> ());
      iter_own_exprs (fun e -> acc := expr_refs !acc e) stmt)
    ss;
  !acc

let opt_expr_refs acc = function None -> acc | Some e -> expr_refs acc e

let compute_decl_refs = function
  | Dtype (_, t) -> List.sort_uniq String.compare (typ_refs [] t)
  | Dconst c ->
      List.sort_uniq String.compare (expr_refs (typ_refs [] c.k_typ) c.k_value)
  | Dvar v ->
      List.sort_uniq String.compare (opt_expr_refs (typ_refs [] v.v_typ) v.v_init)
  | Dsub sub ->
      let acc =
        List.fold_left (fun acc p -> typ_refs acc p.par_typ) [] sub.sub_params
      in
      let acc =
        match sub.sub_return with None -> acc | Some t -> typ_refs acc t
      in
      let acc = opt_expr_refs acc sub.sub_pre in
      let acc = opt_expr_refs acc sub.sub_post in
      let acc =
        List.fold_left
          (fun acc v -> opt_expr_refs (typ_refs acc v.v_typ) v.v_init)
          acc sub.sub_locals
      in
      List.sort_uniq String.compare (stmts_refs acc sub.sub_body)

let decl_refs d =
  let s = st () in
  match memo_find s.d_refs d fst with
  | Some (_, refs) -> refs
  | None ->
      let refs = compute_decl_refs d in
      memo_add s.d_refs d (d, refs);
      refs

(* ------------------------------------------------------------------ *)
(* Digests                                                             *)
(* ------------------------------------------------------------------ *)

(* [No_sharing] so the digest depends only on structure, never on how a
   value happens to be pointer-shared (parallel and sequential pipelines
   build the same programs with different sharing). *)
let marshal_digest x =
  Digest.to_hex (Digest.string (Marshal.to_string x [ Marshal.No_sharing ]))

let decl_digest d =
  let s = st () in
  match memo_find s.d_digest d fst with
  | Some (_, dg) -> dg
  | None ->
      let dg = marshal_digest d in
      memo_add s.d_digest d (d, dg);
      dg

let program_digest p =
  let s = st () in
  match memo_find s.p_digest p fst with
  | Some (_, dg) -> dg
  | None ->
      let dg = marshal_digest p in
      memo_add s.p_digest p (p, dg);
      dg

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

type stats = { st_population : int; st_interns : int; st_hits : int }

let stats () =
  let s = st () in
  {
    st_population = EW.count s.e_weak + SW.count s.s_weak;
    st_interns = s.interns;
    st_hits = s.hits;
  }
