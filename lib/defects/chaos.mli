(** Fault injection for the orchestrated pipeline.

    Where {!Seed} plants defects in the *program under verification* to
    measure what the Echo process catches, this harness plants faults in
    the *pipeline machinery itself* — a rejected refactoring, an ill-typed
    annotation, infeasible VC generation, a starved prover, a crashing
    lemma — to exercise {!Echo.Orchestrator}'s recovery guarantees: [run]
    must never raise, must always return a verdict, and must degrade
    rather than discard surviving evidence. *)

(** One probe per pipeline stage. *)
type probe =
  | P_refactor_reject     (** the refactoring script raises [Not_applicable] *)
  | P_annotate_ill_typed  (** the annotation step yields an ill-typed program *)
  | P_vcgen_infeasible    (** VC generation reports an infeasible annotation set *)
  | P_prover_timeout      (** the prover budget is too small for any VC *)
  | P_lemma_crash         (** an implication lemma body raises *)

val all_probes : probe list
val probe_name : probe -> string

val target_stage : probe -> Echo.Checkpoint.stage
(** The stage whose failure handling the probe exercises. *)

val case_with : probe -> Echo.Pipeline.case_study -> Echo.Pipeline.case_study
(** Sabotage the case study (identity for config-level probes). *)

val config_with : probe -> Echo.Orchestrator.config -> Echo.Orchestrator.config
(** Sabotage the orchestrator hooks (identity for case-level probes). *)

val expect : probe -> Echo.Orchestrator.report -> (unit, string) result
(** Does the report show the recovery the probe demands?  E.g. a starved
    prover must yield a [Degraded] verdict with every timed-out VC showing
    at least two ladder attempts, not a [Failed] or an escaped exception. *)

type outcome = {
  co_probe : probe;
  co_report : Echo.Orchestrator.report;
  co_check : (unit, string) result;
}

val run_probe :
  ?config:Echo.Orchestrator.config -> probe -> Echo.Pipeline.case_study -> outcome
(** Inject one fault and run the orchestrator over the sabotaged setup.
    Returning at all is half the contract (no escaped exception); the
    [co_check] field is the other half. *)

val run_suite :
  ?config:Echo.Orchestrator.config -> Echo.Pipeline.case_study -> outcome list
(** All five probes in stage order. *)

val all_ok : outcome list -> bool

val pp_outcome : outcome Fmt.t
val pp_suite : outcome list Fmt.t
