(* Fault injection for the pipeline machinery itself (cf. {!Seed}, which
   injects defects into the program under verification).  Each probe
   sabotages exactly one stage, runs the orchestrator, and checks that the
   failure was absorbed the way the resilience contract promises. *)

open Minispark
module O = Echo.Orchestrator
module CK = Echo.Checkpoint
module F = Echo.Fault
module IP = Echo.Implementation_proof

type probe =
  | P_refactor_reject
  | P_annotate_ill_typed
  | P_vcgen_infeasible
  | P_prover_timeout
  | P_lemma_crash

let all_probes =
  [ P_refactor_reject; P_annotate_ill_typed; P_vcgen_infeasible;
    P_prover_timeout; P_lemma_crash ]

let probe_name = function
  | P_refactor_reject -> "refactor-reject"
  | P_annotate_ill_typed -> "annotate-ill-typed"
  | P_vcgen_infeasible -> "vcgen-infeasible"
  | P_prover_timeout -> "prover-timeout"
  | P_lemma_crash -> "lemma-crash"

let target_stage = function
  | P_refactor_reject -> CK.S_refactor
  | P_annotate_ill_typed -> CK.S_annotate
  | P_vcgen_infeasible -> CK.S_impl
  | P_prover_timeout -> CK.S_impl
  | P_lemma_crash -> CK.S_implication

(* A declaration block that parses but cannot type-check: the assignment
   references a name that is never declared.  Appended to whatever the
   real annotation step produces, it turns the result ill-typed without
   touching the case study's own declarations. *)
let ill_typed_decls =
  lazy
    (Parser.of_string
       {|
program chaos is
  type chaos_byte is mod 256;
  procedure chaos_boom (x : out chaos_byte)
  is
  begin
    x := chaos_undeclared;
  end chaos_boom;
end chaos;|})
      .Ast.prog_decls

let case_with probe (cs : Echo.Pipeline.case_study) : Echo.Pipeline.case_study =
  match probe with
  | P_refactor_reject ->
      {
        cs with
        Echo.Pipeline.cs_name = cs.Echo.Pipeline.cs_name ^ "+" ^ probe_name probe;
        cs_refactor =
          (fun ?certify:_ () ->
            raise
              (Refactor.Transform.Not_applicable
                 "chaos: injected refactoring rejection"));
      }
  | P_annotate_ill_typed ->
      {
        cs with
        Echo.Pipeline.cs_name = cs.Echo.Pipeline.cs_name ^ "+" ^ probe_name probe;
        cs_annotate =
          (fun p ->
            let a = cs.Echo.Pipeline.cs_annotate p in
            { a with Ast.prog_decls = a.Ast.prog_decls @ Lazy.force ill_typed_decls });
      }
  | P_vcgen_infeasible | P_prover_timeout | P_lemma_crash -> cs

let crashing_lemma =
  {
    Echo.Implication.lm_name = "chaos_crash";
    lm_original = "<chaos>";
    lm_extracted = "<chaos>";
    lm_run = (fun () -> failwith "chaos: injected lemma crash");
  }

let config_with probe (config : O.config) : O.config =
  let hooks = config.O.oc_hooks in
  match probe with
  | P_refactor_reject | P_annotate_ill_typed -> config
  | P_vcgen_infeasible ->
      {
        config with
        O.oc_hooks =
          {
            hooks with
            O.h_vcs =
              (fun _ ->
                raise (Vcgen.Infeasible "chaos: injected infeasible VC generation"));
          };
      }
  | P_prover_timeout ->
      (* a per-attempt deadline no search can meet: every VC must climb the
         whole ladder and come back [Timed_out], never hang *)
      { config with O.oc_vc_deadline_s = Some 1e-4 }
  | P_lemma_crash ->
      {
        config with
        O.oc_hooks =
          { hooks with O.h_lemmas = (fun lemmas -> lemmas @ [ crashing_lemma ]) };
      }

(* ------------------------------------------------------------------ *)
(* Expectations                                                        *)
(* ------------------------------------------------------------------ *)

let verdict_str v = Fmt.str "%a" O.pp_verdict v

let expect_failed_with probe ~(matches : F.t -> bool) (r : O.report) =
  match r.O.o_verdict with
  | O.Failed f when matches f -> (
      (* the sabotaged stage must be the one marked failed, and nothing
         after it may have run *)
      match List.assoc_opt (target_stage probe) r.O.o_stages with
      | Some (O.St_failed _) -> Ok ()
      | _ ->
          Error
            (Printf.sprintf "%s: fault not recorded at stage %s" (probe_name probe)
               (CK.stage_name (target_stage probe))))
  | v ->
      Error
        (Printf.sprintf "%s: expected Failed with matching fault, got %s"
           (probe_name probe) (verdict_str v))

let expect probe (r : O.report) =
  match probe with
  | P_refactor_reject ->
      expect_failed_with probe r ~matches:(function F.Refactor _ -> true | _ -> false)
  | P_annotate_ill_typed ->
      expect_failed_with probe r ~matches:(function F.Type _ -> true | _ -> false)
  | P_vcgen_infeasible ->
      expect_failed_with probe r
        ~matches:(function F.Vc_infeasible _ -> true | _ -> false)
  | P_prover_timeout -> (
      (* graceful degradation: the run completes, evidence survives, every
         starved VC shows the full retry ladder *)
      match (r.O.o_verdict, r.O.o_impl) with
      | O.Degraded d, Some impl ->
          if d.O.dg_timed_out = 0 then
            Error "prover-timeout: degradation records no timed-out VCs"
          else if
            List.exists
              (fun (vr : IP.vc_result) ->
                match vr.IP.vr_status with
                | IP.Timed_out _ -> vr.IP.vr_attempts < 2
                | _ -> false)
              impl.IP.ip_results
          then Error "prover-timeout: a timed-out VC skipped the retry ladder"
          else Ok ()
      | v, _ ->
          Error
            (Printf.sprintf "prover-timeout: expected Degraded with evidence, got %s"
               (verdict_str v)))
  | P_lemma_crash -> (
      (* the crashing lemma is absorbed inside the implication suite (one
         blown lemma never aborts the others), so the stage completes and
         the failure surfaces only in the verdict and the lemma record *)
      match r.O.o_verdict with
      | O.Failed (F.Lemma _) ->
          if
            List.exists
              (fun (name, holds, _) -> String.equal name "chaos_crash" && not holds)
              r.O.o_lemmas
          then Ok ()
          else Error "lemma-crash: injected lemma missing from the record"
      | v ->
          Error
            (Printf.sprintf "lemma-crash: expected Failed (Lemma), got %s"
               (verdict_str v)))

type outcome = {
  co_probe : probe;
  co_report : O.report;
  co_check : (unit, string) result;
}

let run_probe ?(config = O.default_config) probe cs =
  let report = O.run ~config:(config_with probe config) (case_with probe cs) in
  { co_probe = probe; co_report = report; co_check = expect probe report }

let run_suite ?config cs = List.map (fun p -> run_probe ?config p cs) all_probes

let all_ok outcomes = List.for_all (fun o -> Result.is_ok o.co_check) outcomes

let pp_outcome ppf o =
  match o.co_check with
  | Ok () ->
      Fmt.pf ppf "@[<v>probe %-20s absorbed: %a@]" (probe_name o.co_probe)
        O.pp_verdict o.co_report.O.o_verdict
  | Error msg -> Fmt.pf ppf "@[<v>probe %-20s FAILED CHECK: %s@]" (probe_name o.co_probe) msg

let pp_suite ppf outcomes =
  Fmt.pf ppf "@[<v>";
  List.iter (fun o -> Fmt.pf ppf "%a@," pp_outcome o) outcomes;
  let ok = List.length (List.filter (fun o -> Result.is_ok o.co_check) outcomes) in
  Fmt.pf ppf "chaos suite: %d/%d probes absorbed@]" ok (List.length outcomes)
