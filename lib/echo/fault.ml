(* Structured fault taxonomy: the single vocabulary for "what went wrong"
   across parsing, refactoring, VC generation, proof search and the
   implication lemmas, so orchestration policy (retry / degrade / abort)
   can dispatch on fault class instead of exception identity. *)

open Minispark

type t =
  | Parse of { msg : string; line : int; col : int }
  | Type of string
  | Refactor of string
  | Vc_infeasible of string
  | Prover_timeout of { vc : string; elapsed : float }
  | Prover_stuck of { vc : string; reason : string }
  | Lemma of { lemma : string; reason : string }
  | Deadline of { stage : string; budget : float }
  | Checkpoint of string
  | Injected of string
  | Crash of string
  | Analysis of { errors : int; first : string }
  | Certification of { cert_step : string; cert_reason : string }
  | Service of { srv_op : string; srv_reason : string }

exception Fault of t

let of_exn = function
  | Fault f -> f
  | Parser.Error (msg, line, col) -> Parse { msg; line; col }
  | Typecheck.Type_error msg -> Type msg
  | Refactor.Transform.Not_applicable msg -> Refactor msg
  | Refactor.Certify.Refutation { rf_step; rf_cx } ->
      Certification
        { cert_step = rf_step;
          cert_reason = Refactor.Certify.counterexample_to_string rf_cx }
  | Vcgen.Infeasible msg -> Vc_infeasible msg
  | Specl.Seval.Error msg -> Lemma { lemma = "<evaluation>"; reason = msg }
  | Stack_overflow -> Crash "stack overflow"
  | Out_of_memory -> Crash "out of memory"
  | e -> Crash (Printexc.to_string e)

let guard f =
  match f () with
  | v -> Ok v
  | exception Sys.Break -> raise Sys.Break
  | exception e -> Error (of_exn e)

let class_name = function
  | Parse _ -> "parse"
  | Type _ -> "type"
  | Refactor _ -> "refactor"
  | Vc_infeasible _ -> "vc-infeasible"
  | Prover_timeout _ -> "prover-timeout"
  | Prover_stuck _ -> "prover-stuck"
  | Lemma _ -> "lemma"
  | Deadline _ -> "deadline"
  | Checkpoint _ -> "checkpoint"
  | Injected _ -> "injected"
  | Crash _ -> "crash"
  | Analysis _ -> "analysis"
  | Certification _ -> "certify"
  | Service _ -> "service"

let describe = function
  | Parse { msg; line; col } -> Printf.sprintf "parse error at %d:%d: %s" line col msg
  | Type msg -> "type error: " ^ msg
  | Refactor msg -> "transformation not applicable: " ^ msg
  | Vc_infeasible msg -> "VC generation infeasible: " ^ msg
  | Prover_timeout { vc; elapsed } ->
      Printf.sprintf "prover timeout on %s after %.3fs" vc elapsed
  | Prover_stuck { vc; reason } -> Printf.sprintf "prover stuck on %s: %s" vc reason
  | Lemma { lemma; reason } -> Printf.sprintf "lemma %s failed to evaluate: %s" lemma reason
  | Deadline { stage; budget } ->
      Printf.sprintf "global deadline (%.1fs) exceeded during %s" budget stage
  | Checkpoint msg -> "checkpoint error: " ^ msg
  | Injected msg -> "injected fault: " ^ msg
  | Crash msg -> "crash: " ^ msg
  | Analysis { errors; first } ->
      Printf.sprintf "flow analysis found %d error(s), first: %s" errors first
  | Certification { cert_step; cert_reason } ->
      Printf.sprintf "certification refuted step %s: %s" cert_step cert_reason
  | Service { srv_op; srv_reason } ->
      Printf.sprintf "service error in %s: %s" srv_op srv_reason

(* Exit codes are part of the CLI contract (echo_cli --help documents
   them): 2..5 for the four user-meaningful classes, 1 for everything the
   user cannot act on from the invocation alone. *)
let exit_code = function
  | Parse _ -> 2
  | Type _ -> 3
  | Refactor _ -> 4
  | Vc_infeasible _ | Prover_timeout _ | Prover_stuck _ | Lemma _ | Deadline _ -> 5
  | Analysis _ -> 6
  | Certification _ -> 7
  | Service _ -> 8
  | Checkpoint _ | Injected _ | Crash _ -> 1

let is_transient = function
  | Prover_timeout _ | Prover_stuck _ | Deadline _ -> true
  | Parse _ | Type _ | Refactor _ | Vc_infeasible _ | Lemma _ | Checkpoint _
  | Injected _ | Crash _ | Analysis _ | Certification _ | Service _ -> false

let pp ppf f = Fmt.pf ppf "[%s] %s" (class_name f) (describe f)
