(* Stage checkpoints: one file per completed stage under the run
   directory.  The header carries a format version and the case-study
   name, so resuming against the wrong case or an old format is detected
   up front instead of surfacing as a type confusion deep in a proof. *)

type stage =
  | S_refactor
  | S_certify
  | S_annotate
  | S_analyze
  | S_impact
  | S_impl
  | S_extract
  | S_implication

let all_stages =
  [
    S_refactor; S_certify; S_annotate; S_analyze; S_impact; S_impl; S_extract;
    S_implication;
  ]

let stage_name = function
  | S_refactor -> "refactor"
  | S_certify -> "certify"
  | S_annotate -> "annotate"
  | S_analyze -> "analyze"
  | S_impact -> "impact"
  | S_impl -> "implementation-proof"
  | S_extract -> "extract"
  | S_implication -> "implication-proof"

let stage_index = function
  | S_refactor -> 1
  | S_certify -> 2
  | S_annotate -> 3
  | S_analyze -> 4
  | S_impact -> 5
  | S_impl -> 6
  | S_extract -> 7
  | S_implication -> 8

(* The change-impact audit persisted by incremental runs: what the
   semantic diff found, which subprograms re-prove and why, and which
   baseline verdicts were carried.  Plain data so external tools can be
   handed [im_json] without understanding Marshal. *)
type impact_audit = {
  im_changed : string list;               (* subprograms the diff flagged *)
  im_impacted : (string * string list) list;  (* name, re-prove reasons *)
  im_carried : string list;               (* subprograms carried over *)
  im_carried_vcs : int;    (* baseline VC verdicts scheduled for carry *)
  im_json : string;        (* the full Analysis.Impact plan as JSON *)
}

type payload =
  | P_refactor of {
      pr_final_src : string;
      pr_steps : int;
      pr_summary : string;
      pr_certificates : (int * string * Refactor.Certify.certificate) list;
    }
  | P_certify of {
      pc_audit : Refactor.Certify.audit;
      pc_stats : Refactor.Certify.stats;
    }
  | P_annotate of { pa_src : string }
  | P_analyze of Analysis.Examiner.t
  | P_impact of impact_audit
  | P_impl of Implementation_proof.report
  | P_extract of { px_theory : Specl.Sast.theory; px_match : Specl.Match_ratio.result }
  | P_implication of { pi_lemmas : (string * bool * string) list }

(* v4: [S_impact] exists (stage indices shifted), [P_impact] carries the
   change-impact audit, and the proof report gained [ip_carried]; older
   files are rejected by the header check below and recomputed *)
let format_version = "ECHO-CKPT v4"

(* case names can contain spaces and parens; keep filenames tame *)
let slug s =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
    s

let file ~dir ~case stage =
  Filename.concat dir
    (Printf.sprintf "%d-%s.%s.ckpt" (stage_index stage) (stage_name stage) (slug case))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let save ~dir ~case stage payload =
  try
    mkdir_p dir;
    let path = file ~dir ~case stage in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (format_version ^ "\n");
        output_string oc (case ^ "\n");
        Marshal.to_channel oc payload []);
    Sys.rename tmp path;
    Ok ()
  with e -> Error (Printexc.to_string e)

let load ~dir ~case stage =
  let path = file ~dir ~case stage in
  if not (Sys.file_exists path) then None
  else
    Some
      (try
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () ->
             let version = input_line ic in
             let stored_case = input_line ic in
             if not (String.equal version format_version) then
               Error (Printf.sprintf "%s: format %S, expected %S" path version format_version)
             else if not (String.equal stored_case case) then
               Error (Printf.sprintf "%s: case %S, expected %S" path stored_case case)
             else Ok (Marshal.from_channel ic : payload))
       with e -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string e)))

(* Telemetry travels next to the stage checkpoints, in open formats
   (JSONL events, JSON metrics) rather than Marshal: the trace is meant
   to be read by external tools, not just by a resuming binary. *)

let telemetry_events_file ~dir = Filename.concat dir "telemetry.events.jsonl"
let telemetry_metrics_file ~dir = Filename.concat dir "telemetry.metrics.json"

let save_telemetry ~dir =
  if not (Telemetry.enabled ()) then Ok ()
  else begin
    (* a failed mkdir surfaces as the write's error just below *)
    (try mkdir_p dir with _ -> ());
    match Telemetry.write_jsonl ~path:(telemetry_events_file ~dir) (Telemetry.events ()) with
    | Error _ as e -> e
    | Ok () ->
        Telemetry.write_metrics ~path:(telemetry_metrics_file ~dir) (Telemetry.snapshot ())
  end

let load_telemetry ~dir =
  let path = telemetry_events_file ~dir in
  if not (Sys.file_exists path) then None
  else Some (Telemetry.read_jsonl ~path)

let clear ~dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.iter
      (fun f ->
        if
          Filename.check_suffix f ".ckpt" || Filename.check_suffix f ".ckpt.tmp"
          || String.length f >= 10 && String.sub f 0 10 = "telemetry."
        then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

let pp_stage ppf s = Fmt.string ppf (stage_name s)
