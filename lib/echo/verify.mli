(** One verification job, as a service sees it: MiniSpark source text in,
    a serializable outcome out.

    This is the per-job entry point behind [echo-verify serve]: the same
    parse → typecheck → (optional) flow analysis → implementation proof
    spine the orchestrator drives for a case study, but scoped to a
    single annotated program, never raising, and returning per-VC
    summaries that are cheap to ship over a wire and sufficient to seed
    the next job's incremental carry.

    Incrementality: a job may carry a {!baseline} — the source and per-VC
    outcomes of a previously verified version of the program.  The job
    then re-proves only the impact set ({!Analysis.Impact}: semantic
    diff, dependency-graph escalation, VC-digest drift) and replays every
    other baseline verdict, exactly like [aes verify --incremental] but
    keyed on digests carried in the baseline summaries rather than on
    checkpoint files.  A baseline that fails to parse or check degrades
    to a full re-prove with a note — never a fault. *)

type vc_summary = {
  vs_name : string;     (** e.g. ["fletcher.3"] *)
  vs_sub : string;      (** owning subprogram *)
  vs_digest : string;   (** {!Logic.Formula.vc_digest} of the formula *)
  vs_status : string;   (** ["auto"], ["hinted:N"], ["residual:R"],
                            ["timed-out"], ["discharged"] *)
  vs_attempts : int;
  vs_time : float;
  vs_cached : bool;     (** replayed from cache or carried from baseline *)
}

type baseline = {
  vb_program : string;           (** baseline MiniSpark source *)
  vb_results : vc_summary list;  (** its per-VC outcomes *)
}

type options = {
  vo_analyze : bool;              (** flow-analysis pre-pass + interval
                                      discharge of exception-freedom VCs *)
  vo_jobs : int;                  (** farm width for the proof *)
  vo_cache : Farm.Cache.t option; (** persistent proof cache (refreshed
                                      before, saved after, by the proof) *)
  vo_baseline : baseline option;
  vo_deadline_s : float option;   (** whole-job wall-clock budget *)
  vo_max_steps : int;             (** prover fuel per attempt *)
}

val default_options : options
(** No analysis, inline proof ([vo_jobs = 1]), no cache, no baseline, no
    deadline, the orchestrator's default prover fuel. *)

type verdict =
  | Verified                  (** every VC auto, hinted or discharged *)
  | Conditional of int        (** n residual VCs await interactive proof *)
  | Degraded of int           (** n VCs hit their wall-clock deadline *)
  | Failed of Fault.t         (** parse/type/analysis/VC-generation fault *)

type outcome = {
  vj_verdict : verdict;
  vj_total : int;
  vj_auto : int;
  vj_hinted : int;
  vj_residual : int;
  vj_timed_out : int;
  vj_discharged : int;
  vj_carried : int;       (** baseline verdicts replayed, never re-proved *)
  vj_cache_hits : int;
  vj_cache_misses : int;
  vj_attempts : int;
  vj_impacted_subs : int; (** re-prove set size under a baseline; 0 without *)
  vj_results : vc_summary list;  (** generation order *)
  vj_notes : string list;        (** non-fatal events, e.g. unusable baseline *)
  vj_seconds : float;
}

val verdict_string : verdict -> string
(** ["verified"], ["conditional"], ["degraded"] or ["failed"]. *)

val status_of_string : string -> string option
(** Validate a {!vc_summary} status string (returns it back, or [None]).
    Wire-facing callers use this to reject malformed baselines early. *)

type stage_hook = stage:string -> [ `Start | `Ok of float | `Failed of string ] -> unit
(** Progress callback: stages are ["parse"], ["analyze"], ["impact"] and
    ["prove"], each reported at entry and at exit with its seconds or its
    fault. *)

val run : ?options:options -> ?on_stage:stage_hook -> source:string -> unit -> outcome
(** Verify one annotated program.  Never raises: every failure folds into
    [Failed] via {!Fault.guard}, and the stage hook is never allowed to
    kill the job (its exceptions are swallowed). *)
