(** Stage checkpointing for orchestrated pipeline runs.

    Each pipeline stage's output is serialized into a run directory as
    soon as the stage completes, so an interrupted or partially-failed run
    can resume from the last good stage ({!Orchestrator.resume}) instead
    of recomputing hours of refactoring and proof search.

    Programs are stored as pretty-printed MiniSpark source (reparsed on
    resume — robust across binaries); closed data (proof reports, the
    extracted theory) is stored with [Marshal] behind a version/case
    header so a stale or foreign file is rejected, never misread. *)

type stage =
  | S_refactor
  | S_certify
  | S_annotate
  | S_analyze
  | S_impact   (** change-impact planning, incremental runs only *)
  | S_impl
  | S_extract
  | S_implication

val all_stages : stage list
(** In pipeline order. *)

val stage_name : stage -> string
val stage_index : stage -> int

(** The change-impact audit persisted by incremental runs: what the
    semantic diff found, which subprograms re-prove and why, and which
    baseline verdicts were carried over. *)
type impact_audit = {
  im_changed : string list;
  im_impacted : (string * string list) list;  (** name, re-prove reasons *)
  im_carried : string list;
  im_carried_vcs : int;   (** baseline VC verdicts scheduled for carry *)
  im_json : string;       (** the full {!Analysis.Impact} plan as JSON *)
}

(** What each stage persists.  Programs travel as source text; everything
    else is closed (closure-free) data.  The format version is v4: the
    impact stage exists (stage indices shifted) and persists its audit,
    and the proof report carries [ip_carried] — v3 files are rejected by
    the header check and recomputed, never misread. *)
type payload =
  | P_refactor of {
      pr_final_src : string;
      pr_steps : int;
      pr_summary : string;
      pr_certificates : (int * string * Refactor.Certify.certificate) list;
          (** step index, transformation name, certificate; empty when the
              run was not certified *)
    }
  | P_certify of {
      pc_audit : Refactor.Certify.audit;
      pc_stats : Refactor.Certify.stats;
    }
  | P_annotate of { pa_src : string }
  | P_analyze of Analysis.Examiner.t
  | P_impact of impact_audit
  | P_impl of Implementation_proof.report
  | P_extract of { px_theory : Specl.Sast.theory; px_match : Specl.Match_ratio.result }
  | P_implication of { pi_lemmas : (string * bool * string) list }
      (** lemma name, holds?, method/reason *)

val save : dir:string -> case:string -> stage -> payload -> (unit, string) result
(** Write the stage file (creating [dir] as needed), atomically via a
    temp file + rename. *)

val load : dir:string -> case:string -> stage -> (payload, string) result option
(** [None] — no checkpoint for this stage; [Some (Error _)] — a file is
    present but has the wrong version/case or does not unmarshal; the
    caller decides whether that is fatal. *)

val save_telemetry : dir:string -> (unit, string) result
(** Persist the collector's current events (as [telemetry.events.jsonl])
    and metrics snapshot (as [telemetry.metrics.json]) into the run
    directory.  A no-op returning [Ok ()] when telemetry is disabled. *)

val load_telemetry : dir:string -> (Telemetry.event list, string) result option
(** Events persisted by a previous run of this directory, if any.
    Feed them to {!Telemetry.ingest} before resuming so the final trace
    covers the whole logical run, not just the resumed tail. *)

val clear : dir:string -> unit
(** Remove all checkpoint and telemetry files in [dir] (ignores other
    files). *)

val pp_stage : stage Fmt.t
