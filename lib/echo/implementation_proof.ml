(* The implementation proof (§6.2.3): the annotated program is shown to
   conform to its annotations using the VC generator and the automatic
   prover — the stand-in for the SPARK Ada toolset run.

   Accounting mirrors the paper: total VCs, the fraction discharged
   automatically, the subprograms whose VCs all discharge automatically,
   and the VCs needing interactive steps (application of preconditions /
   induction on loop invariants = the prover's hint capabilities).  VCs
   that resist both are "interactive residue": they are cross-validated by
   ground evaluation on sampled assignments and reported separately.

   Every VC now goes through a {!Retry} ladder; [run] uses the legacy
   two-rung ladder (automatic, hinted) so historical accounting is
   unchanged, while [run_resilient] adds the simplify-then-retry rung,
   per-VC deadlines and hook points for the orchestrator and the chaos
   harness.

   Proof farm: with [?jobs] > 1 the VCs are dispatched cost-descending
   over a work-stealing domain pool ({!Farm.Pool}); with [?cache] a
   persistent content-addressed store ({!Farm.Cache}) is consulted
   before any prover work, keyed by the VC's canonical formula digest
   plus a signature of everything else that can change provability —
   the retry policy's rungs and hints, the prover knobs, and the
   definitions of the program functions the prover ground-evaluates.
   Cache lookups and recording happen on the coordinator domain only,
   and results are reassembled in generation order, so verdicts are
   bit-identical whatever the job count or cache temperature. *)

open Minispark
module F = Logic.Formula
module P = Logic.Prover

type vc_status =
  | Auto                 (** discharged with no interaction *)
  | Hinted of int        (** discharged after n interactive steps *)
  | Residual of string   (** not discharged mechanically *)
  | Timed_out of float   (** every ladder rung hit its deadline *)
  | Discharged           (** proved by static analysis; never scheduled *)

type vc_result = {
  vr_vc : F.vc;
  vr_status : vc_status;
  vr_attempts : int;     (** ladder attempts spent on this VC *)
  vr_time : float;
  vr_cached : bool;      (** replayed from the proof cache, prover skipped *)
}

type sub_stats = {
  ss_name : string;
  ss_total : int;
  ss_auto : int;
  ss_hinted : int;
  ss_residual : int;
  ss_timed_out : int;
  ss_discharged : int;   (** statically discharged, never sent to prover *)
}

type report = {
  ip_results : vc_result list;
  ip_subs : sub_stats list;
  ip_total : int;
  ip_auto : int;
  ip_hinted : int;
  ip_residual : int;
  ip_timed_out : int;
  ip_discharged : int;   (** statically discharged, never sent to prover *)
  ip_attempts : int;     (** ladder attempts across all VCs *)
  ip_cache_hits : int;   (** VCs replayed from the proof cache *)
  ip_cache_misses : int; (** VCs sent to the prover despite an open cache *)
  ip_carried : int;      (** baseline verdicts carried over by impact
                             analysis; never re-proved *)
  ip_generated_nodes : int;
  ip_time : float;
  ip_infeasible : string option;
}

let empty =
  {
    ip_results = [];
    ip_subs = [];
    ip_total = 0;
    ip_auto = 0;
    ip_hinted = 0;
    ip_residual = 0;
    ip_timed_out = 0;
    ip_discharged = 0;
    ip_attempts = 0;
    ip_cache_hits = 0;
    ip_cache_misses = 0;
    ip_carried = 0;
    ip_generated_nodes = 0;
    ip_time = 0.0;
    ip_infeasible = None;
  }

let auto_fraction r =
  if r.ip_total = 0 then 1.0
  else float_of_int (r.ip_auto + r.ip_discharged) /. float_of_int r.ip_total

let fully_auto_subs r =
  List.filter (fun s -> s.ss_auto + s.ss_discharged = s.ss_total) r.ip_subs
  |> List.length

(* ground-evaluation interpretation of program functions for the prover *)
let interp_of env program =
  let rt = lazy (Interp.make env program) in
  fun name args ->
    match Ast.find_sub program name with
    | Some { Ast.sub_return = Some _; _ } -> (
        match
          Interp.run_function (Lazy.force rt) name
            (List.map (fun n -> Value.Vint n) args)
        with
        | Value.Vint n | Value.Vmod (n, _) -> Some n
        | Value.Vbool b -> Some (if b then 1 else 0)
        | Value.Varray _ -> None
        | exception (Interp.Stuck _ | Interp.Out_of_fuel | Value.Runtime_error _)
          ->
            None)
    | _ -> None

let standard_hints = [ P.Hint_apply_hyp; P.Hint_induction; P.Hint_apply_hyp ]

(* ------------------------------------------------------------------ *)
(* Proof-cache keys                                                    *)
(* ------------------------------------------------------------------ *)

let hint_sig = function
  | P.Hint_apply_hyp -> "apply_hyp"
  | P.Hint_induction -> "induction"
  | P.Hint_unfold (n, formals, body) ->
      Printf.sprintf "unfold:%s(%s)=%s" n (String.concat "," formals)
        (F.digest body)

(* Signature of everything besides the VC formula and the program text
   that can change a proof outcome: the retry ladder (rungs, hints, fuel)
   and the prover's search knobs.  The per-VC deadline is deliberately
   excluded: a recorded proof stays a proof under any deadline, and
   timeouts are never cached.  The "pf2" marker versions the key scheme,
   so entries recorded under the old whole-program signature can never
   collide with the per-subprogram keys below. *)
let base_signature ~(policy : Retry.policy) ~(cfg : P.config) =
  let buf = Buffer.create 512 in
  Printf.ksprintf (Buffer.add_string buf) "pf2;split=%d;steps=%d;"
    cfg.P.max_split cfg.P.max_steps;
  List.iter
    (fun (rg : Retry.rung) ->
      Printf.ksprintf (Buffer.add_string buf) "rung=%s,%b,%d[%s];"
        rg.Retry.rg_name rg.Retry.rg_presimplify rg.Retry.rg_fuel_factor
        (String.concat "," (List.map hint_sig rg.Retry.rg_hints)))
    policy.Retry.pol_rungs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Per-subprogram program signature: because [cfg.interp] ground-evaluates
   program functions, a VC's outcome depends on the definitions on its
   owner's evaluation frontier ({!Analysis.Depgraph.eval_deps} — the
   bodies the interpreter may execute, transitively) and on the constants,
   globals and named types those texts reference (the interpreter's
   environment).  Scoping the signature to that frontier instead of the
   whole program is what makes incremental re-verification pay: editing
   one procedure leaves every unrelated subprogram's keys untouched, so
   their proofs still hit the cache.  Earlier key schemes hashed every
   function program-wide — one edit anywhere invalidated the entire
   store — and silently omitted constants and globals, which the
   evaluator also reads. *)
let sub_signature program =
  let graph = lazy (Analysis.Depgraph.build program) in
  let memo = Hashtbl.create 16 in
  fun sub_name ->
    match Hashtbl.find_opt memo sub_name with
    | Some s -> s
    | None ->
        let g = Lazy.force graph in
        let buf = Buffer.create 512 in
        List.iter
          (fun d ->
            match Ast.find_sub program d with
            | Some sp ->
                Printf.ksprintf (Buffer.add_string buf) "fn=%s:%s;" d
                  (Digest.to_hex
                     (Digest.string (Fmt.str "%a" (Pretty.pp_subprogram 0) sp)))
            | None -> ())
          (Analysis.Depgraph.eval_deps g sub_name);
        List.iter
          (fun d ->
            Printf.ksprintf (Buffer.add_string buf) "decl=%s:%s;" d
              (Digest.to_hex
                 (Digest.string
                    (match List.assoc_opt d (Ast.type_decls program) with
                    | Some ty -> "type:" ^ Pretty.typ_to_string ty
                    | None -> (
                        match
                          List.find_opt
                            (fun (k : Ast.const_decl) -> k.Ast.k_name = d)
                            (Ast.constants program)
                        with
                        | Some k ->
                            Printf.sprintf "const:%s:%s"
                              (Pretty.typ_to_string k.Ast.k_typ)
                              (Pretty.expr_to_string k.Ast.k_value)
                        | None -> (
                            match
                              List.find_opt
                                (fun (v : Ast.var_decl) -> v.Ast.v_name = d)
                                (Ast.global_vars program)
                            with
                            | Some v ->
                                Printf.sprintf "var:%s:%s"
                                  (Pretty.typ_to_string v.Ast.v_typ)
                                  (match v.Ast.v_init with
                                  | Some e -> Pretty.expr_to_string e
                                  | None -> "-")
                            | None -> "-"))))))
          (Analysis.Depgraph.decl_closure g
             (sub_name :: Analysis.Depgraph.eval_deps g sub_name));
        let s = Digest.to_hex (Digest.string (Buffer.contents buf)) in
        Hashtbl.add memo sub_name s;
        s

let status_of_entry (e : Farm.Cache.entry) : vc_status =
  match e.Farm.Cache.en_status with
  | Farm.Cache.E_auto -> Auto
  | Farm.Cache.E_hinted n -> Hinted n
  | Farm.Cache.E_residual r -> Residual r

let entry_of_result vr : Farm.Cache.entry option =
  let status =
    match vr.vr_status with
    | Auto -> Some Farm.Cache.E_auto
    | Hinted n -> Some (Farm.Cache.E_hinted n)
    | Residual r -> Some (Farm.Cache.E_residual r)
    (* timeouts are wall-clock accidents, discharged VCs never ran *)
    | Timed_out _ | Discharged -> None
  in
  Option.map
    (fun st ->
      { Farm.Cache.en_status = st; en_attempts = vr.vr_attempts;
        en_time = vr.vr_time })
    status

let status_of (rt : Retry.result) : vc_status =
  match rt.Retry.rt_rung with
  | Some rung when rung.Retry.rg_hints = [] -> Auto
  | Some _ -> Hinted rt.Retry.rt_result.P.pr_hints_used
  | None -> (
      match rt.Retry.rt_result.P.pr_outcome with
      | P.Timeout s -> Timed_out s
      | P.Unknown reason -> Residual reason
      | P.Proved -> assert false)

let count_status_with cnt = function
  | Auto -> cnt "vcs_auto"
  | Hinted _ -> cnt "vcs_hinted"
  | Residual _ -> cnt "vcs_residual"
  | Timed_out _ -> cnt "vcs_timed_out"
  | Discharged -> ()

let count_status = count_status_with (fun n -> Telemetry.count n)

(* Shared core: VC generation, then the retry ladder over every VC —
   consulted against the proof cache and dispatched over the domain pool
   when [?cache] / [?jobs] ask for it.  [filter_vcs] and [tune_cfg] are
   the orchestrator/chaos hook points. *)
let run_with ~(policy : Retry.policy) ?(filter_vcs = fun vcs -> vcs)
    ?(tune_cfg = fun (c : P.config) -> c) ?(give_up = fun () -> false)
    ?discharge ?carry ?(budget = Vcgen.default_budget) ?(max_steps = 60_000)
    ?(jobs = 1) ?cache env program : report =
  let t0 = Logic.Clock.now () in
  let gen = Vcgen.generate ~budget env program in
  let gen =
    match discharge with
    | None -> gen
    | Some oracle -> Vcgen.tag_discharged ~oracle gen
  in
  let cfg =
    tune_cfg { P.default_config with P.interp = Some (interp_of env program); max_steps }
  in
  (* one prover ladder over one VC — runs on a worker domain under the
     farm, inline otherwise; everything it touches is per-call state *)
  let prove_one vc =
    (* the global budget ran out: charge the remaining VCs as timed out
       without starting their searches *)
    if give_up () then
      { vr_vc = vc; vr_status = Timed_out 0.0; vr_attempts = 0; vr_time = 0.0;
        vr_cached = false }
    else
      let t1 = Logic.Clock.now () in
      let span =
        Telemetry.start_span ~cat:Telemetry.cat_vc
          ~attrs:
            [
              ("sub", Telemetry.S vc.F.vc_sub);
              ("kind", Telemetry.S (F.vc_kind_name vc.F.vc_kind));
            ]
          vc.F.vc_name
      in
      let rt = Retry.prove ~policy ~cfg vc in
      let vr =
        {
          vr_vc = vc;
          vr_status = status_of rt;
          vr_attempts = Retry.attempts rt;
          vr_time = Logic.Clock.elapsed t1;
          vr_cached = false;
        }
      in
      (* batched: prove_one runs on worker domains, and per-VC mutex
         traffic on the shared collector serializes them — the pool
         flushes each worker's batch at span close, the coordinator's
         after the run *)
      if Telemetry.enabled () then begin
        Telemetry.Batch.count "vcs_attempted";
        count_status_with (fun n -> Telemetry.Batch.count n) vr.vr_status;
        Telemetry.Batch.observe "vc_wall_s" vr.vr_time
      end;
      Telemetry.finish_span span
        ~attrs:
          [
            ( "status",
              Telemetry.S
                (match vr.vr_status with
                | Auto -> "auto"
                | Hinted n -> Printf.sprintf "hinted:%d" n
                | Residual _ -> "residual"
                | Timed_out _ -> "timeout"
                | Discharged -> "discharged") );
            ("attempts", Telemetry.I vr.vr_attempts);
          ];
      vr
  in
  let all =
    List.concat_map
      (fun (sr : Vcgen.sub_report) ->
        List.map (fun vc -> (sr, vc)) (filter_vcs sr.Vcgen.sr_vcs))
      gen.Vcgen.r_subs
  in
  let base_sig = lazy (base_signature ~policy ~cfg) in
  let sub_sig = sub_signature program in
  let slots = Array.make (List.length all) None in
  let hits = ref 0 and misses = ref 0 and carried = ref 0 in
  (* coordinator-side pass: statically discharged VCs, impact-carried
     verdicts and cache hits are settled here; everything else becomes a
     farm job *)
  let pending = ref [] in
  List.iteri
    (fun i ((sr : Vcgen.sub_report), vc) ->
      if List.mem vc.F.vc_name sr.Vcgen.sr_discharged then begin
        if Telemetry.enabled () then Telemetry.count "an_vcs_discharged";
        slots.(i) <-
          Some
            { vr_vc = vc; vr_status = Discharged; vr_attempts = 0;
              vr_time = 0.0; vr_cached = false }
      end
      else
        match Option.bind carry (fun f -> f vc) with
        | Some (vr : vc_result) ->
            (* a baseline verdict certified still-valid by change-impact
               analysis: replayed like a cache hit, never re-proved *)
            incr carried;
            let status = vr.vr_status in
            if Telemetry.enabled () then begin
              Telemetry.count "carried_verdicts";
              count_status status
            end;
            slots.(i) <-
              Some { vr with vr_vc = vc; vr_time = 0.0; vr_cached = true }
        | None -> (
        match cache with
        | None -> pending := (i, sr, vc, None) :: !pending
        | Some c -> (
            let key =
              F.vc_digest vc ^ ":" ^ Lazy.force base_sig ^ ":"
              ^ sub_sig vc.F.vc_sub
            in
            match Farm.Cache.lookup c key with
            | Some e ->
                incr hits;
                let status = status_of_entry e in
                if Telemetry.enabled () then begin
                  Telemetry.count "cache_hits";
                  count_status status
                end;
                slots.(i) <-
                  Some
                    { vr_vc = vc; vr_status = status;
                      vr_attempts = e.Farm.Cache.en_attempts; vr_time = 0.0;
                      vr_cached = true }
            | None ->
                incr misses;
                if Telemetry.enabled () then Telemetry.count "cache_misses";
                pending := (i, sr, vc, Some key) :: !pending)))
    all;
  let pending = Array.of_list (List.rev !pending) in
  (* dispatch cost-descending: the VC generator's unfolded node count is
     the best available effort predictor *)
  let priority (_, (sr : Vcgen.sub_report), vc, _) =
    match List.assoc_opt vc.F.vc_name sr.Vcgen.sr_sizes with
    | Some n -> n
    | None ->
        List.fold_left
          (fun acc h -> acc + F.node_count h)
          (F.node_count vc.F.vc_goal) vc.F.vc_hyps
  in
  let proved, _stats =
    Farm.Pool.run ~jobs ~priority ~f:(fun (_, _, vc, _) -> prove_one vc) pending
  in
  (* the inline (jobs = 1) path proves on this domain without worker
     spans, so its batch drains here *)
  Telemetry.Batch.flush ();
  (* reassemble in generation order and record fresh proofs — cache
     writes stay on the coordinator, so the store needs no locking *)
  Array.iteri
    (fun k vr ->
      let i, _, _, key = pending.(k) in
      (match (cache, key, entry_of_result vr) with
      | Some c, Some key, Some entry -> Farm.Cache.add c key entry
      | _ -> ());
      slots.(i) <- Some vr)
    proved;
  (match cache with
  | Some c when !misses > 0 || Farm.Cache.size c > 0 -> (
      match Farm.Cache.save c with
      | Ok () -> ()
      | Error msg ->
          Telemetry.instant "cache_save_failed"
            ~attrs:[ ("error", Telemetry.S msg) ])
  | _ -> ());
  let results =
    Array.to_list slots
    |> List.map (function
         | Some vr -> vr
         | None -> invalid_arg "Implementation_proof: unfilled VC slot")
  in
  let subs =
    List.map
      (fun (sr : Vcgen.sub_report) ->
        let mine =
          List.filter (fun r -> String.equal r.vr_vc.F.vc_sub sr.Vcgen.sr_sub) results
        in
        let count p = List.length (List.filter p mine) in
        {
          ss_name = sr.Vcgen.sr_sub;
          ss_total = List.length mine;
          ss_auto = count (fun r -> r.vr_status = Auto);
          ss_hinted = count (fun r -> match r.vr_status with Hinted _ -> true | _ -> false);
          ss_residual = count (fun r -> match r.vr_status with Residual _ -> true | _ -> false);
          ss_timed_out = count (fun r -> match r.vr_status with Timed_out _ -> true | _ -> false);
          ss_discharged = count (fun r -> r.vr_status = Discharged);
        })
      gen.Vcgen.r_subs
  in
  let count p = List.length (List.filter p results) in
  {
    ip_results = results;
    ip_subs = subs;
    ip_total = List.length results;
    ip_auto = count (fun r -> r.vr_status = Auto);
    ip_hinted = count (fun r -> match r.vr_status with Hinted _ -> true | _ -> false);
    ip_residual = count (fun r -> match r.vr_status with Residual _ -> true | _ -> false);
    ip_timed_out = count (fun r -> match r.vr_status with Timed_out _ -> true | _ -> false);
    ip_discharged = count (fun r -> r.vr_status = Discharged);
    ip_attempts = List.fold_left (fun acc r -> acc + r.vr_attempts) 0 results;
    ip_cache_hits = !hits;
    ip_cache_misses = !misses;
    ip_carried = !carried;
    ip_generated_nodes = Vcgen.total_nodes gen;
    ip_time = Logic.Clock.elapsed t0;
    ip_infeasible = gen.Vcgen.r_infeasible;
  }

(** Run the implementation proof over an annotated, checked program. *)
let run ?discharge ?budget ?max_steps ?jobs ?cache env program : report =
  run_with ~policy:(Retry.legacy_policy standard_hints) ?discharge ?budget
    ?max_steps ?jobs ?cache env program

let run_resilient ?(policy = Retry.default_policy standard_hints) ?filter_vcs ?tune_cfg
    ?give_up ?discharge ?carry ?budget ?max_steps ?jobs ?cache env program :
    report =
  run_with ~policy ?filter_vcs ?tune_cfg ?give_up ?discharge ?carry ?budget
    ?max_steps ?jobs ?cache env program

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>implementation proof: %d VCs, %d auto (%.1f%%), %d interactive, %d residual%a%a@,\
     %d/%d subprograms fully automatic; %d prover attempts; %.1fs@]"
    r.ip_total r.ip_auto (100.0 *. auto_fraction r) r.ip_hinted r.ip_residual
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d timed out" n)
    r.ip_timed_out
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d discharged by analysis" n)
    r.ip_discharged (fully_auto_subs r) (List.length r.ip_subs) r.ip_attempts r.ip_time;
  if r.ip_cache_hits > 0 then
    Fmt.pf ppf "@,proof cache: %d hit(s), %d miss(es)" r.ip_cache_hits
      r.ip_cache_misses;
  if r.ip_carried > 0 then
    Fmt.pf ppf "@,impact carry: %d verdict(s) carried from the baseline"
      r.ip_carried

let pp_details ppf r =
  pp_report ppf r;
  Fmt.pf ppf "@,";
  List.iter
    (fun s ->
      Fmt.pf ppf
        "@,  %-24s %3d VCs  %3d auto %3d hinted %3d residual %3d timeout %3d discharged"
        s.ss_name s.ss_total s.ss_auto s.ss_hinted s.ss_residual s.ss_timed_out
        s.ss_discharged)
    r.ip_subs;
  List.iter
    (fun v ->
      match v.vr_status with
      | Residual reason ->
          Fmt.pf ppf "@,  residual %s [%s] after %d attempts: %s" v.vr_vc.F.vc_name
            (F.vc_kind_name v.vr_vc.F.vc_kind) v.vr_attempts
            (if String.length reason > 120 then String.sub reason 0 120 ^ "..." else reason)
      | Timed_out s ->
          Fmt.pf ppf "@,  timeout  %s [%s] after %d attempts (last %.3fs)" v.vr_vc.F.vc_name
            (F.vc_kind_name v.vr_vc.F.vc_kind) v.vr_attempts s
      | _ -> ())
    r.ip_results
