(* The implementation proof (§6.2.3): the annotated program is shown to
   conform to its annotations using the VC generator and the automatic
   prover — the stand-in for the SPARK Ada toolset run.

   Accounting mirrors the paper: total VCs, the fraction discharged
   automatically, the subprograms whose VCs all discharge automatically,
   and the VCs needing interactive steps (application of preconditions /
   induction on loop invariants = the prover's hint capabilities).  VCs
   that resist both are "interactive residue": they are cross-validated by
   ground evaluation on sampled assignments and reported separately.

   Every VC now goes through a {!Retry} ladder; [run] uses the legacy
   two-rung ladder (automatic, hinted) so historical accounting is
   unchanged, while [run_resilient] adds the simplify-then-retry rung,
   per-VC deadlines and hook points for the orchestrator and the chaos
   harness. *)

open Minispark
module F = Logic.Formula
module P = Logic.Prover

type vc_status =
  | Auto                 (** discharged with no interaction *)
  | Hinted of int        (** discharged after n interactive steps *)
  | Residual of string   (** not discharged mechanically *)
  | Timed_out of float   (** every ladder rung hit its deadline *)
  | Discharged           (** proved by static analysis; never scheduled *)

type vc_result = {
  vr_vc : F.vc;
  vr_status : vc_status;
  vr_attempts : int;     (** ladder attempts spent on this VC *)
  vr_time : float;
}

type sub_stats = {
  ss_name : string;
  ss_total : int;
  ss_auto : int;
  ss_hinted : int;
  ss_residual : int;
  ss_timed_out : int;
  ss_discharged : int;   (** statically discharged, never sent to prover *)
}

type report = {
  ip_results : vc_result list;
  ip_subs : sub_stats list;
  ip_total : int;
  ip_auto : int;
  ip_hinted : int;
  ip_residual : int;
  ip_timed_out : int;
  ip_discharged : int;   (** statically discharged, never sent to prover *)
  ip_attempts : int;     (** ladder attempts across all VCs *)
  ip_generated_nodes : int;
  ip_time : float;
  ip_infeasible : string option;
}

let empty =
  {
    ip_results = [];
    ip_subs = [];
    ip_total = 0;
    ip_auto = 0;
    ip_hinted = 0;
    ip_residual = 0;
    ip_timed_out = 0;
    ip_discharged = 0;
    ip_attempts = 0;
    ip_generated_nodes = 0;
    ip_time = 0.0;
    ip_infeasible = None;
  }

let auto_fraction r =
  if r.ip_total = 0 then 1.0
  else float_of_int (r.ip_auto + r.ip_discharged) /. float_of_int r.ip_total

let fully_auto_subs r =
  List.filter (fun s -> s.ss_auto + s.ss_discharged = s.ss_total) r.ip_subs
  |> List.length

(* ground-evaluation interpretation of program functions for the prover *)
let interp_of env program =
  let rt = lazy (Interp.make env program) in
  fun name args ->
    match Ast.find_sub program name with
    | Some { Ast.sub_return = Some _; _ } -> (
        match
          Interp.run_function (Lazy.force rt) name
            (List.map (fun n -> Value.Vint n) args)
        with
        | Value.Vint n | Value.Vmod (n, _) -> Some n
        | Value.Vbool b -> Some (if b then 1 else 0)
        | Value.Varray _ -> None
        | exception (Interp.Stuck _ | Value.Runtime_error _) -> None)
    | _ -> None

let standard_hints = [ P.Hint_apply_hyp; P.Hint_induction; P.Hint_apply_hyp ]

let status_of (rt : Retry.result) : vc_status =
  match rt.Retry.rt_rung with
  | Some rung when rung.Retry.rg_hints = [] -> Auto
  | Some _ -> Hinted rt.Retry.rt_result.P.pr_hints_used
  | None -> (
      match rt.Retry.rt_result.P.pr_outcome with
      | P.Timeout s -> Timed_out s
      | P.Unknown reason -> Residual reason
      | P.Proved -> assert false)

(* Shared core: VC generation, then the retry ladder over every VC.
   [filter_vcs] and [tune_cfg] are the orchestrator/chaos hook points. *)
let run_with ~(policy : Retry.policy) ?(filter_vcs = fun vcs -> vcs)
    ?(tune_cfg = fun (c : P.config) -> c) ?(give_up = fun () -> false)
    ?discharge ?(budget = Vcgen.default_budget) ?(max_steps = 60_000) env program
    : report =
  let t0 = Logic.Clock.now () in
  let gen = Vcgen.generate ~budget env program in
  let gen =
    match discharge with
    | None -> gen
    | Some oracle -> Vcgen.tag_discharged ~oracle gen
  in
  let cfg =
    tune_cfg { P.default_config with P.interp = Some (interp_of env program); max_steps }
  in
  let results =
    List.concat_map
      (fun (sr : Vcgen.sub_report) ->
        List.map
          (fun vc ->
            (* statically discharged: the retry ladder never schedules it *)
            if List.mem vc.F.vc_name sr.Vcgen.sr_discharged then begin
              if Telemetry.enabled () then Telemetry.count "an_vcs_discharged";
              { vr_vc = vc; vr_status = Discharged; vr_attempts = 0; vr_time = 0.0 }
            end
            (* the global budget ran out: charge the remaining VCs as
               timed out without starting their searches *)
            else if give_up () then
              { vr_vc = vc; vr_status = Timed_out 0.0; vr_attempts = 0; vr_time = 0.0 }
            else
              let t1 = Logic.Clock.now () in
              let span =
                Telemetry.start_span ~cat:Telemetry.cat_vc
                  ~attrs:
                    [
                      ("sub", Telemetry.S vc.F.vc_sub);
                      ("kind", Telemetry.S (F.vc_kind_name vc.F.vc_kind));
                    ]
                  vc.F.vc_name
              in
              let rt = Retry.prove ~policy ~cfg vc in
              let vr =
                {
                  vr_vc = vc;
                  vr_status = status_of rt;
                  vr_attempts = Retry.attempts rt;
                  vr_time = Logic.Clock.elapsed t1;
                }
              in
              if Telemetry.enabled () then begin
                Telemetry.count "vcs_attempted";
                (match vr.vr_status with
                | Auto -> Telemetry.count "vcs_auto"
                | Hinted _ -> Telemetry.count "vcs_hinted"
                | Residual _ -> Telemetry.count "vcs_residual"
                | Timed_out _ -> Telemetry.count "vcs_timed_out"
                | Discharged -> ());
                Telemetry.observe "vc_wall_s" vr.vr_time
              end;
              Telemetry.finish_span span
                ~attrs:
                  [
                    ( "status",
                      Telemetry.S
                        (match vr.vr_status with
                        | Auto -> "auto"
                        | Hinted n -> Printf.sprintf "hinted:%d" n
                        | Residual _ -> "residual"
                        | Timed_out _ -> "timeout"
                        | Discharged -> "discharged") );
                    ("attempts", Telemetry.I vr.vr_attempts);
                  ];
              vr)
          (filter_vcs sr.Vcgen.sr_vcs))
      gen.Vcgen.r_subs
  in
  let subs =
    List.map
      (fun (sr : Vcgen.sub_report) ->
        let mine =
          List.filter (fun r -> String.equal r.vr_vc.F.vc_sub sr.Vcgen.sr_sub) results
        in
        let count p = List.length (List.filter p mine) in
        {
          ss_name = sr.Vcgen.sr_sub;
          ss_total = List.length mine;
          ss_auto = count (fun r -> r.vr_status = Auto);
          ss_hinted = count (fun r -> match r.vr_status with Hinted _ -> true | _ -> false);
          ss_residual = count (fun r -> match r.vr_status with Residual _ -> true | _ -> false);
          ss_timed_out = count (fun r -> match r.vr_status with Timed_out _ -> true | _ -> false);
          ss_discharged = count (fun r -> r.vr_status = Discharged);
        })
      gen.Vcgen.r_subs
  in
  let count p = List.length (List.filter p results) in
  {
    ip_results = results;
    ip_subs = subs;
    ip_total = List.length results;
    ip_auto = count (fun r -> r.vr_status = Auto);
    ip_hinted = count (fun r -> match r.vr_status with Hinted _ -> true | _ -> false);
    ip_residual = count (fun r -> match r.vr_status with Residual _ -> true | _ -> false);
    ip_timed_out = count (fun r -> match r.vr_status with Timed_out _ -> true | _ -> false);
    ip_discharged = count (fun r -> r.vr_status = Discharged);
    ip_attempts = List.fold_left (fun acc r -> acc + r.vr_attempts) 0 results;
    ip_generated_nodes = Vcgen.total_nodes gen;
    ip_time = Logic.Clock.elapsed t0;
    ip_infeasible = gen.Vcgen.r_infeasible;
  }

(** Run the implementation proof over an annotated, checked program. *)
let run ?discharge ?budget ?max_steps env program : report =
  run_with ~policy:(Retry.legacy_policy standard_hints) ?discharge ?budget
    ?max_steps env program

let run_resilient ?(policy = Retry.default_policy standard_hints) ?filter_vcs ?tune_cfg
    ?give_up ?discharge ?budget ?max_steps env program : report =
  run_with ~policy ?filter_vcs ?tune_cfg ?give_up ?discharge ?budget ?max_steps
    env program

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>implementation proof: %d VCs, %d auto (%.1f%%), %d interactive, %d residual%a%a@,\
     %d/%d subprograms fully automatic; %d prover attempts; %.1fs@]"
    r.ip_total r.ip_auto (100.0 *. auto_fraction r) r.ip_hinted r.ip_residual
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d timed out" n)
    r.ip_timed_out
    (fun ppf n -> if n > 0 then Fmt.pf ppf ", %d discharged by analysis" n)
    r.ip_discharged (fully_auto_subs r) (List.length r.ip_subs) r.ip_attempts r.ip_time

let pp_details ppf r =
  pp_report ppf r;
  Fmt.pf ppf "@,";
  List.iter
    (fun s ->
      Fmt.pf ppf
        "@,  %-24s %3d VCs  %3d auto %3d hinted %3d residual %3d timeout %3d discharged"
        s.ss_name s.ss_total s.ss_auto s.ss_hinted s.ss_residual s.ss_timed_out
        s.ss_discharged)
    r.ip_subs;
  List.iter
    (fun v ->
      match v.vr_status with
      | Residual reason ->
          Fmt.pf ppf "@,  residual %s [%s] after %d attempts: %s" v.vr_vc.F.vc_name
            (F.vc_kind_name v.vr_vc.F.vc_kind) v.vr_attempts
            (if String.length reason > 120 then String.sub reason 0 120 ^ "..." else reason)
      | Timed_out s ->
          Fmt.pf ppf "@,  timeout  %s [%s] after %d attempts (last %.3fs)" v.vr_vc.F.vc_name
            (F.vc_kind_name v.vr_vc.F.vc_kind) v.vr_attempts s
      | _ -> ())
    r.ip_results
