(* Resilient orchestration: the Echo pipeline as five independently
   guarded, independently checkpointed stages under explicit budgets.

   Design rules:
   - a stage failure is a value ([Fault.t]), never an escaping exception;
   - resources are bounded twice: per VC attempt (prover deadline + fuel)
     and globally (pipeline deadline polled between stages and VCs);
   - whatever evidence survives a fault is reported ([Degraded]), not
     discarded;
   - each completed stage is persisted so [resume] restarts after the
     last good stage rather than from scratch. *)

open Minispark
module CK = Checkpoint

type hooks = {
  h_stage : CK.stage -> unit;
  h_vcs : Logic.Formula.vc list -> Logic.Formula.vc list;
  h_prover : Logic.Prover.config -> Logic.Prover.config;
  h_lemmas : Implication.lemma list -> Implication.lemma list;
}

let no_hooks =
  {
    h_stage = (fun _ -> ());
    h_vcs = (fun vcs -> vcs);
    h_prover = (fun c -> c);
    h_lemmas = (fun ls -> ls);
  }

type cache_mode =
  | Cache_default
  | Cache_dir of string
  | Cache_off

type config = {
  oc_run_dir : string option;
  oc_global_deadline_s : float option;
  oc_vc_deadline_s : float option;
  oc_retry : Retry.policy;
  oc_max_steps : int;
  oc_budget : Vcgen.budget;
  oc_analyze : bool;
  oc_certify : bool;
  oc_jobs : int;
  oc_cache : cache_mode;
  oc_baseline : string option;
  oc_edit : (Ast.program -> Ast.program) option;
  oc_carry : bool;
  oc_hooks : hooks;
}

let default_config =
  {
    oc_run_dir = None;
    oc_global_deadline_s = None;
    oc_vc_deadline_s = None;
    oc_retry = Retry.default_policy Implementation_proof.standard_hints;
    oc_max_steps = 60_000;
    oc_budget = Vcgen.default_budget;
    oc_analyze = false;
    oc_certify = false;
    oc_jobs = 1;
    oc_cache = Cache_default;
    oc_baseline = None;
    oc_edit = None;
    oc_carry = true;
    oc_hooks = no_hooks;
  }

(* effective cache directory: an explicit [--cache-dir] wins; otherwise
   the cache lives beside the checkpoints so [--resume] inherits it — and
   an incremental run shares the baseline's cache, so re-proved VCs whose
   keys survived the edit still replay; no run dir and no explicit dir
   means no persistence to offer *)
let cache_dir_of cfg =
  match cfg.oc_cache with
  | Cache_off -> None
  | Cache_dir d -> Some d
  | Cache_default -> (
      match (cfg.oc_baseline, cfg.oc_run_dir) with
      | Some b, _ -> Some (Filename.concat b "proof-cache")
      | None, Some d -> Some (Filename.concat d "proof-cache")
      | None, None -> None)

type stage_status =
  | St_ok of { st_time : float; st_from_checkpoint : bool }
  | St_failed of Fault.t
  | St_skipped

type degradation = {
  dg_stage : string;
  dg_fault : Fault.t;
  dg_residual : int;
  dg_timed_out : int;
  dg_lemmas_failed : int;
}

type verdict =
  | Verified
  | Conditionally_verified of int
  | Degraded of degradation
  | Failed of Fault.t

type report = {
  o_case : string;
  o_stages : (CK.stage * stage_status) list;
  o_refactor_steps : int;
  o_analysis : Analysis.Examiner.t option;
  o_certify : Refactor.Certify.audit option;
  o_impact : CK.impact_audit option;
  o_impl : Implementation_proof.report option;
  o_match : Specl.Match_ratio.result option;
  o_lemmas : (string * bool * string) list;
  o_notes : string list;
  o_verdict : verdict;
  o_attempts : int;
  o_time : float;
}

(* ------------------------------------------------------------------ *)
(* Running state threaded through the stages                           *)
(* ------------------------------------------------------------------ *)

(* Baseline payloads for incremental runs, snapshotted before any stage
   writes: when the run directory IS the baseline directory, stages
   overwrite the files they were loaded from, so reading lazily mid-run
   would hand the impact analysis its own output as the baseline. *)
type baseline = {
  b_refactor : CK.payload option;
  b_certify : CK.payload option;
  b_annotate : string option;                       (* baseline source *)
  b_impl : Implementation_proof.report option;
}

let no_baseline =
  { b_refactor = None; b_certify = None; b_annotate = None; b_impl = None }

type state = {
  cfg : config;
  cs : Pipeline.case_study;
  resume_run : bool;
  global_deadline : float;  (* absolute monotonic clock value *)
  baseline : baseline;      (* [no_baseline] outside incremental mode *)
  mutable statuses : (CK.stage * stage_status) list;  (* reverse order *)
  mutable notes : string list;
  mutable degradations : (string * Fault.t) list;  (* reverse order *)
}

let note st fmt = Printf.ksprintf (fun s -> st.notes <- s :: st.notes) fmt

let degrade st stage fault = st.degradations <- (CK.stage_name stage, fault) :: st.degradations

let global_expired st = Logic.Clock.expired st.global_deadline

let save_checkpoint st stage payload =
  match st.cfg.oc_run_dir with
  | None -> ()
  | Some dir -> (
      match CK.save ~dir ~case:st.cs.Pipeline.cs_name stage payload with
      | Ok () -> ()
      | Error e -> note st "checkpoint write failed for %s: %s" (CK.stage_name stage) e)

let load_checkpoint st stage =
  if not st.resume_run then None
  else
    match st.cfg.oc_run_dir with
    | None -> None
    | Some dir -> (
        match CK.load ~dir ~case:st.cs.Pipeline.cs_name stage with
        | None -> None
        | Some (Ok payload) -> Some payload
        | Some (Error e) ->
            note st "ignoring unreadable checkpoint for %s: %s" (CK.stage_name stage) e;
            None)

(* Run one stage: global-deadline check, stage-entry hook, checkpoint
   shortcut, then the body; any exception becomes the stage's fault.
   Each call emits exactly one [stage] span whose [outcome] attribute
   mirrors the recorded status. *)
let stage st (stage_id : CK.stage) ~(from_ckpt : unit -> 'a option) ~(body : unit -> 'a)
    : ('a, Fault.t) result =
  let record status = st.statuses <- (stage_id, status) :: st.statuses in
  let span = Telemetry.start_span ~cat:Telemetry.cat_stage (CK.stage_name stage_id) in
  let finish outcome = Telemetry.finish_span span ~attrs:[ ("outcome", Telemetry.S outcome) ] in
  if global_expired st then begin
    let f =
      Fault.Deadline
        {
          stage = CK.stage_name stage_id;
          budget = Option.value ~default:0.0 st.cfg.oc_global_deadline_s;
        }
    in
    record (St_failed f);
    finish "deadline";
    Error f
  end
  else
    match Fault.guard (fun () -> st.cfg.oc_hooks.h_stage stage_id) with
    | Error f ->
        record (St_failed f);
        finish "failed";
        Error f
    | Ok () -> (
        match from_ckpt () with
        | Some v ->
            record (St_ok { st_time = 0.0; st_from_checkpoint = true });
            finish "from-checkpoint";
            Ok v
        | None -> (
            let t0 = Logic.Clock.now () in
            match Fault.guard body with
            | Ok v ->
                let st_time = Logic.Clock.elapsed t0 in
                record (St_ok { st_time; st_from_checkpoint = false });
                (* stage durations get their own coarse bucket ladder:
                   under [default_buckets] every stage lands in the top
                   bucket and the histogram says nothing *)
                Telemetry.observe ~buckets:Telemetry.stage_buckets
                  "stage_wall_s" st_time;
                finish "ok";
                Ok v
            | Error f ->
                record (St_failed f);
                finish "failed";
                Error f))

let reparse_program src =
  let _, prog = Typecheck.check (Parser.of_string src) in
  prog

(* ------------------------------------------------------------------ *)
(* Verdict synthesis                                                   *)
(* ------------------------------------------------------------------ *)

let synthesize st (impl : Implementation_proof.report option)
    (lemmas : (string * bool * string) list) : verdict =
  let residual = match impl with Some r -> r.Implementation_proof.ip_residual | None -> 0 in
  let timed_out = match impl with Some r -> r.Implementation_proof.ip_timed_out | None -> 0 in
  let failed_lemmas = List.filter (fun (_, holds, _) -> not holds) lemmas in
  let first_failure =
    List.rev st.statuses
    |> List.find_map (fun (s, status) ->
           match status with St_failed f -> Some (s, f) | _ -> None)
  in
  match first_failure with
  | Some (s, f) ->
      if impl <> None && CK.stage_index s > CK.stage_index CK.S_impl then
        (* the proofs produced evidence before the fault: degrade *)
        Degraded
          {
            dg_stage = CK.stage_name s;
            dg_fault = f;
            dg_residual = residual;
            dg_timed_out = timed_out;
            dg_lemmas_failed = List.length failed_lemmas;
          }
      else Failed f
  | None -> (
      match failed_lemmas with
      | (name, _, reason) :: _ ->
          Failed
            (Fault.Lemma
               {
                 lemma = name;
                 reason =
                   Printf.sprintf "%d implication lemma(s) do not hold (first: %s)"
                     (List.length failed_lemmas) reason;
               })
      | [] -> (
          match List.rev st.degradations with
          | (stage_name, f) :: _ ->
              Degraded
                {
                  dg_stage = stage_name;
                  dg_fault = f;
                  dg_residual = residual;
                  dg_timed_out = timed_out;
                  dg_lemmas_failed = 0;
                }
          | [] ->
              if residual = 0 && timed_out = 0 then Verified
              else Conditionally_verified (residual + timed_out)))

(* ------------------------------------------------------------------ *)
(* The five stages                                                     *)
(* ------------------------------------------------------------------ *)

(* when certifying, the equivalence-VC cache shares the proof cache's
   directory: the keys are disjoint (a ":certify:" suffix), and a resumed
   or repeated script re-certifies for free *)
let certify_config_of st =
  if not st.cfg.oc_certify then None
  else
    Some
      {
        (Refactor.Certify.default_config ()) with
        Refactor.Certify.cf_jobs = st.cfg.oc_jobs;
        cf_budget = st.cfg.oc_budget;
        cf_cache =
          Option.map (fun dir -> Farm.Cache.open_ ~dir) (cache_dir_of st.cfg);
      }

let stage_refactor st =
  stage st CK.S_refactor
    ~from_ckpt:(fun () ->
      (* incremental runs reuse the baseline's refactoring wholesale —
         the edit under analysis happens after annotation, so re-deriving
         the refactored program would only burn the wall-clock the
         incremental mode exists to save *)
      match st.baseline.b_refactor with
      | Some (CK.P_refactor { pr_final_src; pr_steps; pr_certificates; _ } as p)
        -> (
          match Fault.guard (fun () -> reparse_program pr_final_src) with
          | Ok final ->
              save_checkpoint st CK.S_refactor p;
              Some (final, pr_steps, pr_certificates, None)
          | Error _ ->
              note st "baseline refactor checkpoint did not reparse; running full";
              None)
      | _ -> (
          match load_checkpoint st CK.S_refactor with
          | Some (CK.P_refactor { pr_final_src; pr_steps; pr_certificates; _ })
            ->
              Option.map
                (fun p -> (p, pr_steps, pr_certificates, None))
                (Fault.guard (fun () -> reparse_program pr_final_src)
                |> Result.to_option)
          | _ -> None))
    ~body:(fun () ->
      let certify = certify_config_of st in
      let stages, history = st.cs.Pipeline.cs_refactor ?certify () in
      let final =
        match List.rev stages with
        | (_, p) :: _ -> p
        | [] -> invalid_arg "Orchestrator: refactoring produced no stages"
      in
      let steps = Refactor.History.step_count history in
      let certs = Refactor.History.certificates history in
      save_checkpoint st CK.S_refactor
        (CK.P_refactor
           {
             pr_final_src = Pretty.program_to_string final;
             pr_steps = steps;
             pr_summary = Fmt.str "%a" Refactor.History.pp_summary history;
             pr_certificates = certs;
           });
      (final, steps, certs, Some (Refactor.History.certification_stats history)))

(* The certification gate: every refactoring step must carry a
   certificate, and none may be refuted.  A live certified run raises
   {!Refactor.Certify.Refutation} inside the refactor stage already; this
   stage re-checks resumed checkpoints and turns [Unknown] certificates
   into a degradation rather than silent acceptance. *)
let stage_certify st ~steps ~certs ~stats =
  stage st CK.S_certify
    ~from_ckpt:(fun () ->
      match st.baseline.b_certify with
      | Some (CK.P_certify { pc_audit; _ } as p) ->
          save_checkpoint st CK.S_certify p;
          Some pc_audit
      | _ -> (
          match load_checkpoint st CK.S_certify with
          | Some (CK.P_certify { pc_audit; _ }) -> Some pc_audit
          | _ -> None))
    ~body:(fun () ->
      if List.length certs < steps then
        raise
          (Fault.Fault
             (Fault.Certification
                {
                  cert_step = "<all>";
                  cert_reason =
                    Printf.sprintf
                      "only %d of %d steps carry a certificate (refactoring \
                       checkpoint from an uncertified run?)"
                      (List.length certs) steps;
                }));
      (match
         List.find_opt
           (fun (_, _, c) ->
             match c with Refactor.Certify.Refuted _ -> true | _ -> false)
           certs
       with
      | Some (_, name, Refactor.Certify.Refuted cx) ->
          raise
            (Fault.Fault
               (Fault.Certification
                  {
                    cert_step = name;
                    cert_reason = Refactor.Certify.counterexample_to_string cx;
                  }))
      | _ -> ());
      let audit = Refactor.Certify.audit certs in
      (match
         List.find_opt
           (fun (_, _, c) ->
             match c with Refactor.Certify.Unknown _ -> true | _ -> false)
           certs
       with
      | Some (_, name, Refactor.Certify.Unknown why) ->
          degrade st CK.S_certify
            (Fault.Certification
               {
                 cert_step = name;
                 cert_reason =
                   Printf.sprintf "%d step(s) could not be certified (first: %s)"
                     audit.Refactor.Certify.au_unknown why;
               })
      | _ -> ());
      let stats =
        Option.value stats ~default:Refactor.Certify.zero_stats
      in
      save_checkpoint st CK.S_certify
        (CK.P_certify { pc_audit = audit; pc_stats = stats });
      audit)

let stage_annotate st final =
  stage st CK.S_annotate
    ~from_ckpt:(fun () ->
      (* a resumed incremental run must still apply the edit, so the
         baseline path below (in the body) handles both cases *)
      match (st.baseline.b_annotate, load_checkpoint st CK.S_annotate) with
      | None, Some (CK.P_annotate { pa_src }) ->
          Fault.guard (fun () -> Typecheck.check (Parser.of_string pa_src))
          |> Result.to_option
      | _ -> None)
    ~body:(fun () ->
      let annotated_raw =
        match st.baseline.b_annotate with
        | Some pa_src ->
            (* incremental: the baseline's annotated program is the
               starting point; [oc_edit] is the change under analysis *)
            let base = Parser.of_string pa_src in
            (Option.value ~default:Fun.id st.cfg.oc_edit) base
        | None -> st.cs.Pipeline.cs_annotate final
      in
      let env, annotated = Typecheck.check annotated_raw in
      save_checkpoint st CK.S_annotate
        (CK.P_annotate { pa_src = Pretty.program_to_string annotated });
      (env, annotated))

let stage_analyze st env annotated =
  stage st CK.S_analyze
    ~from_ckpt:(fun () ->
      match load_checkpoint st CK.S_analyze with
      | Some (CK.P_analyze an) -> Some an
      | _ -> None)
    ~body:(fun () ->
      let an = Analysis.Examiner.analyze env annotated in
      if Telemetry.enabled () then
        Telemetry.count
          ~by:(List.length (Analysis.Examiner.diags an))
          "an_diagnostics";
      let errs = Analysis.Examiner.errors an in
      if errs > 0 then begin
        let first =
          match
            List.filter
              (fun d -> d.Analysis.Diag.d_severity = Analysis.Diag.Error)
              (Analysis.Examiner.diags an)
          with
          | d :: _ -> Fmt.str "%a" Analysis.Diag.pp d
          | [] -> ""
        in
        raise (Fault.Fault (Fault.Analysis { errors = errs; first }))
      end;
      save_checkpoint st CK.S_analyze (CK.P_analyze an);
      an)

(* Change-impact planning (incremental runs only): diff the edited
   annotated program against the baseline's, compose with the dependency
   graph and a VC-digest drift check, and hand the implementation proof a
   carry function that replays baseline verdicts for every VC whose
   subprogram the plan certifies untouched.  Any missing or unreadable
   baseline piece degrades to a full re-prove with a note — never a
   fault. *)
let stage_impact st env annotated =
  stage st CK.S_impact
    ~from_ckpt:(fun () -> None)  (* cheap and carry isn't serialisable *)
    ~body:(fun () ->
      match (st.baseline.b_annotate, st.baseline.b_impl) with
      | None, _ ->
          note st "impact: baseline annotate checkpoint missing; full re-prove";
          None
      | _, None ->
          note st "impact: baseline proof checkpoint missing; full re-prove";
          None
      | Some base_src, Some base_impl ->
          let old_p = reparse_program base_src in
          let plan = Analysis.Impact.compute ~old_p ~new_p:annotated in
          (* VC-digest refinement: regenerate under the same budget the
             proof stage uses and escalate any carried subprogram whose
             obligations drifted from the baseline's *)
          let current =
            Vcgen.vc_digests (Vcgen.generate ~budget:st.cfg.oc_budget env annotated)
          in
          let module M = Map.Make (String) in
          let by_sub =
            List.fold_left
              (fun m (vr : Implementation_proof.vc_result) ->
                let s = vr.Implementation_proof.vr_vc.Logic.Formula.vc_sub in
                M.update s
                  (function
                    | None -> Some [ vr ] | Some vs -> Some (vr :: vs))
                  m)
              M.empty base_impl.Implementation_proof.ip_results
          in
          let baseline_digests =
            M.bindings by_sub
            |> List.map (fun (s, vrs) ->
                   ( s,
                     List.map
                       (fun (vr : Implementation_proof.vc_result) ->
                         Logic.Formula.vc_digest
                           vr.Implementation_proof.vr_vc)
                       vrs ))
          in
          let plan =
            Analysis.Impact.refine plan ~baseline:baseline_digests ~current
          in
          (* the carry table: baseline verdicts for carried subprograms,
             keyed strictly by owner + name + formula digest; timeouts are
             wall-clock accidents and are never carried *)
          let carry_tbl = Hashtbl.create 256 in
          List.iter
            (fun s ->
              List.iter
                (fun (vr : Implementation_proof.vc_result) ->
                  match vr.Implementation_proof.vr_status with
                  | Implementation_proof.Timed_out _ -> ()
                  | _ ->
                      let vc = vr.Implementation_proof.vr_vc in
                      Hashtbl.replace carry_tbl
                        (vc.Logic.Formula.vc_sub ^ "|"
                       ^ vc.Logic.Formula.vc_name ^ "|"
                        ^ Logic.Formula.vc_digest vc)
                        vr)
                (Option.value ~default:[] (M.find_opt s by_sub)))
            plan.Analysis.Impact.pl_carried;
          let audit =
            {
              CK.im_changed =
                Analysis.Semdiff.changed_subs plan.Analysis.Impact.pl_diff;
              im_impacted =
                List.map
                  (fun (n, rs) ->
                    (n, List.map Analysis.Impact.reason_name rs))
                  plan.Analysis.Impact.pl_impacted;
              im_carried = plan.Analysis.Impact.pl_carried;
              im_carried_vcs = Hashtbl.length carry_tbl;
              im_json = Analysis.Impact.to_json plan;
            }
          in
          save_checkpoint st CK.S_impact (CK.P_impact audit);
          note st "impact: %d subprogram(s) re-prove, %d carried (%d VC verdict(s))"
            (List.length audit.CK.im_impacted)
            (List.length audit.CK.im_carried)
            audit.CK.im_carried_vcs;
          let carry (vc : Logic.Formula.vc) =
            Hashtbl.find_opt carry_tbl
              (vc.Logic.Formula.vc_sub ^ "|" ^ vc.Logic.Formula.vc_name ^ "|"
             ^ Logic.Formula.vc_digest vc)
          in
          Some (audit, if st.cfg.oc_carry then Some carry else None))

let stage_impl st ~discharge ?carry env annotated =
  stage st CK.S_impl
    ~from_ckpt:(fun () ->
      match load_checkpoint st CK.S_impl with
      | Some (CK.P_impl report) -> Some report
      | _ -> None)
    ~body:(fun () ->
      let policy = Retry.with_deadline st.cfg.oc_vc_deadline_s st.cfg.oc_retry in
      let cache = Option.map (fun dir -> Farm.Cache.open_ ~dir) (cache_dir_of st.cfg) in
      let report =
        Implementation_proof.run_resilient ~policy
          ~filter_vcs:st.cfg.oc_hooks.h_vcs ~tune_cfg:st.cfg.oc_hooks.h_prover
          ~give_up:(fun () -> global_expired st)
          ?discharge ?carry ~budget:st.cfg.oc_budget
          ~max_steps:st.cfg.oc_max_steps
          ~jobs:st.cfg.oc_jobs ?cache env annotated
      in
      (match report.Implementation_proof.ip_cache_hits with
      | 0 -> ()
      | hits ->
          note st "proof cache: %d of %d VC(s) replayed" hits
            report.Implementation_proof.ip_total);
      save_checkpoint st CK.S_impl (CK.P_impl report);
      report)

let stage_extract st env annotated =
  stage st CK.S_extract
    ~from_ckpt:(fun () ->
      match load_checkpoint st CK.S_extract with
      | Some (CK.P_extract { px_theory; px_match }) -> Some (px_theory, px_match)
      | _ -> None)
    ~body:(fun () ->
      let extracted = Extract.extract_program env annotated in
      let match_result =
        Specl.Match_ratio.compare ~synonyms:st.cs.Pipeline.cs_synonyms
          ~original:st.cs.Pipeline.cs_original_spec ~extracted ()
      in
      if Telemetry.enabled () then begin
        Telemetry.gauge "match_ratio" match_result.Specl.Match_ratio.mr_ratio;
        Telemetry.instant "match_ratio"
          ~attrs:
            [
              ("block", Telemetry.S st.cs.Pipeline.cs_name);
              ("ratio", Telemetry.F match_result.Specl.Match_ratio.mr_ratio);
            ]
      end;
      save_checkpoint st CK.S_extract
        (CK.P_extract { px_theory = extracted; px_match = match_result });
      (extracted, match_result))

let stage_implication st extracted =
  stage st CK.S_implication
    ~from_ckpt:(fun () ->
      match load_checkpoint st CK.S_implication with
      | Some (CK.P_implication { pi_lemmas }) -> Some pi_lemmas
      | _ -> None)
    ~body:(fun () ->
      let lemmas = st.cfg.oc_hooks.h_lemmas (st.cs.Pipeline.cs_lemmas ~extracted) in
      let result = Implication.run lemmas in
      let summaries =
        List.map
          (fun ((l : Implication.lemma), outcome) ->
            match outcome with
            | Implication.Holds m ->
                (l.Implication.lm_name, true, Fmt.str "%a" Implication.pp_method m)
            | Implication.Fails reason -> (l.Implication.lm_name, false, reason))
          result.Implication.im_lemmas
      in
      save_checkpoint st CK.S_implication (CK.P_implication { pi_lemmas = summaries });
      summaries)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let run ?(resume = false) ?(config = default_config) (cs : Pipeline.case_study) : report =
  let t0 = Logic.Clock.now () in
  (* snapshot the baseline before touching any file: the run directory
     may BE the baseline directory, and stages overwrite as they go *)
  let baseline =
    match config.oc_baseline with
    | None -> no_baseline
    | Some dir ->
        let get stage =
          match CK.load ~dir ~case:cs.Pipeline.cs_name stage with
          | Some (Ok p) -> Some p
          | Some (Error _) | None -> None
        in
        {
          b_refactor = get CK.S_refactor;
          b_certify = get CK.S_certify;
          b_annotate =
            (match get CK.S_annotate with
            | Some (CK.P_annotate { pa_src }) -> Some pa_src
            | _ -> None);
          b_impl =
            (match get CK.S_impl with
            | Some (CK.P_impl r) -> Some r
            | _ -> None);
        }
  in
  (* a fresh run must not mix its checkpoints with a previous run's —
     except in incremental mode when run dir and baseline coincide, where
     clearing would destroy the baseline we just came for *)
  (match (resume, config.oc_run_dir) with
  | false, Some dir when config.oc_baseline <> Some dir -> CK.clear ~dir
  | _ -> ());
  (* a resumed run replays the interrupted run's trace first, so the
     persisted trace covers the whole logical run *)
  (match (resume, config.oc_run_dir) with
  | true, Some dir when Telemetry.enabled () -> (
      match CK.load_telemetry ~dir with
      | Some (Ok events) -> Telemetry.ingest events
      | Some (Error _) | None -> ())
  | _ -> ());
  let root_span =
    Telemetry.start_span ~cat:Telemetry.cat_pipeline
      ~attrs:
        [ ("case", Telemetry.S cs.Pipeline.cs_name); ("resume", Telemetry.B resume) ]
      "orchestrated-run"
  in
  let st =
    {
      cfg = config;
      cs;
      resume_run = resume;
      global_deadline = Logic.Clock.deadline config.oc_global_deadline_s;
      baseline;
      statuses = [];
      notes = [];
      degradations = [];
    }
  in
  let impl_ref = ref None in
  let analysis_ref = ref None in
  let certify_ref = ref None in
  let impact_ref = ref None in
  let match_ref = ref None in
  let steps_ref = ref 0 in
  let lemmas_ref = ref [] in
  (let ( let* ) r f = match r with Ok v -> f v | Error (_ : Fault.t) -> () in
   let* final, steps, certs, cert_stats = stage_refactor st in
   steps_ref := steps;
   let* cert_audit =
     if st.cfg.oc_certify then
       Result.map Option.some
         (stage_certify st ~steps ~certs ~stats:cert_stats)
     else Ok None
   in
   certify_ref := cert_audit;
   let* env, annotated = stage_annotate st final in
   let* analysis =
     if st.cfg.oc_analyze then
       Result.map Option.some (stage_analyze st env annotated)
     else Ok None
   in
   analysis_ref := analysis;
   (* clean analysis pre-discharges exception-freedom VCs for the ladder *)
   let discharge =
     if st.cfg.oc_analyze then Some Analysis.Discharge.vc_discharged else None
   in
   let* carry =
     if config.oc_baseline <> None then
       Result.map
         (fun outcome ->
           match outcome with
           | Some (audit, carry) ->
               impact_ref := Some audit;
               carry
           | None -> None)
         (stage_impact st env annotated)
     else Ok None
   in
   let* impl = stage_impl st ~discharge ?carry env annotated in
   impl_ref := Some impl;
   (match impl.Implementation_proof.ip_infeasible with
   | Some reason -> degrade st CK.S_impl (Fault.Vc_infeasible reason)
   | None -> ());
   (match
      List.find_opt
        (fun (r : Implementation_proof.vc_result) ->
          match r.Implementation_proof.vr_status with
          | Implementation_proof.Timed_out _ -> true
          | _ -> false)
        impl.Implementation_proof.ip_results
    with
   | Some r ->
       let elapsed =
         match r.Implementation_proof.vr_status with
         | Implementation_proof.Timed_out s -> s
         | _ -> 0.0
       in
       degrade st CK.S_impl
         (Fault.Prover_timeout
            { vc = r.Implementation_proof.vr_vc.Logic.Formula.vc_name; elapsed })
   | None -> ());
   let* extracted, match_result = stage_extract st env annotated in
   match_ref := Some match_result;
   let* lemmas = stage_implication st extracted in
   lemmas_ref := lemmas);
  (* mark unreached stages; a stage disabled by config is absent from the
     report rather than skipped (skipped means cut off by an earlier fault) *)
  let reached = List.map fst st.statuses in
  let expected =
    List.filter
      (fun s ->
        match s with
        | CK.S_analyze -> config.oc_analyze
        | CK.S_certify -> config.oc_certify
        | CK.S_impact -> config.oc_baseline <> None
        | _ -> true)
      CK.all_stages
  in
  let statuses =
    List.map
      (fun s ->
        match List.assoc_opt s st.statuses with
        | Some status -> (s, status)
        | None ->
            assert (not (List.mem s reached));
            (s, St_skipped))
      expected
  in
  let verdict = synthesize st !impl_ref !lemmas_ref in
  let verdict_name =
    match verdict with
    | Verified -> "verified"
    | Conditionally_verified _ -> "conditionally-verified"
    | Degraded _ -> "degraded"
    | Failed _ -> "failed"
  in
  Telemetry.finish_span root_span ~attrs:[ ("verdict", Telemetry.S verdict_name) ];
  (match config.oc_run_dir with
  | Some dir when Telemetry.enabled () -> (
      match CK.save_telemetry ~dir with
      | Ok () -> ()
      | Error e -> note st "telemetry write failed: %s" e)
  | _ -> ());
  {
    o_case = cs.Pipeline.cs_name;
    o_stages = statuses;
    o_refactor_steps = !steps_ref;
    o_analysis = !analysis_ref;
    o_certify = !certify_ref;
    o_impact = !impact_ref;
    o_impl = !impl_ref;
    o_match = !match_ref;
    o_lemmas = !lemmas_ref;
    o_notes = List.rev st.notes;
    o_verdict = verdict;
    o_attempts =
      (match !impl_ref with Some r -> r.Implementation_proof.ip_attempts | None -> 0);
    o_time = Logic.Clock.elapsed t0;
  }

let resume ?config cs = run ~resume:true ?config cs

let verdict_failed r = match r.o_verdict with Failed _ -> true | _ -> false

let verdict_fault r =
  match r.o_verdict with
  | Failed f -> Some f
  | Degraded d -> Some d.dg_fault
  | Verified | Conditionally_verified _ -> None

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_verdict ppf = function
  | Verified -> Fmt.string ppf "VERIFIED"
  | Conditionally_verified n ->
      Fmt.pf ppf "CONDITIONALLY VERIFIED (%d VCs left for interactive proof)" n
  | Degraded d ->
      Fmt.pf ppf
        "DEGRADED at %s: %a (%d residual, %d timed out, %d lemmas failed)"
        d.dg_stage Fault.pp d.dg_fault d.dg_residual d.dg_timed_out d.dg_lemmas_failed
  | Failed f -> Fmt.pf ppf "FAILED: %a" Fault.pp f

let pp_status ppf = function
  | St_ok { st_from_checkpoint = true; _ } -> Fmt.string ppf "ok (from checkpoint)"
  | St_ok { st_time; _ } -> Fmt.pf ppf "ok (%.1fs)" st_time
  | St_failed f -> Fmt.pf ppf "failed: %a" Fault.pp f
  | St_skipped -> Fmt.string ppf "skipped"

let pp_report ppf r =
  Fmt.pf ppf "@[<v>orchestrated run: %s@," r.o_case;
  List.iter
    (fun (s, status) ->
      Fmt.pf ppf "  %-22s %a@," (CK.stage_name s) pp_status status)
    r.o_stages;
  (match r.o_certify with
  | Some a ->
      Fmt.pf ppf "certification: %d step(s): %d certified, %d refuted, %d unknown@,"
        a.Refactor.Certify.au_steps a.Refactor.Certify.au_certified
        a.Refactor.Certify.au_refuted a.Refactor.Certify.au_unknown
  | None -> ());
  (match r.o_analysis with
  | Some an ->
      Fmt.pf ppf "analysis: %d error(s), %d warning(s), %d info(s)@,"
        (Analysis.Examiner.errors an)
        (Analysis.Diag.count Analysis.Diag.Warning (Analysis.Examiner.diags an))
        (Analysis.Diag.count Analysis.Diag.Info (Analysis.Examiner.diags an))
  | None -> ());
  (match r.o_impact with
  | Some a ->
      Fmt.pf ppf
        "impact: %d changed, %d re-prove, %d carried (%d VC verdict(s))@,"
        (List.length a.CK.im_changed)
        (List.length a.CK.im_impacted)
        (List.length a.CK.im_carried) a.CK.im_carried_vcs;
      List.iter
        (fun (n, reasons) ->
          Fmt.pf ppf "  re-prove %-24s %s@," n (String.concat ", " reasons))
        a.CK.im_impacted
  | None -> ());
  (match r.o_impl with
  | Some impl -> Fmt.pf ppf "%a@," Implementation_proof.pp_report impl
  | None -> ());
  (match r.o_match with
  | Some m -> Fmt.pf ppf "structure match: %a@," Specl.Match_ratio.pp_result m
  | None -> ());
  (match r.o_lemmas with
  | [] -> ()
  | lemmas ->
      let proved = List.length (List.filter (fun (_, h, _) -> h) lemmas) in
      Fmt.pf ppf "implication: %d/%d lemmas@," proved (List.length lemmas));
  List.iter (fun n -> Fmt.pf ppf "note: %s@," n) r.o_notes;
  Fmt.pf ppf "verdict: %a (%.1fs)@]" pp_verdict r.o_verdict r.o_time
