(* The Echo pipeline (§3): one entry point running the whole approach over
   a prepared case study — refactor, annotate, implementation proof,
   reverse synthesis, implication proof — and collecting the evidence into
   a single verdict.

   The pipeline is case-study-parametric: the AES instantiation supplies
   the refactoring script, the annotation set, the original specification
   and the lemma builder; other case studies plug in their own.

   No stage failure escapes [run] as an exception: stage bodies run under
   {!Fault.guard}, a failure before the proofs yields [Failed], and a
   failure after the implementation proof has produced evidence yields
   [Degraded] so the surviving results are still reported.  The richer
   budgeted/checkpointed driver is {!Orchestrator}. *)

open Minispark

type case_study = {
  cs_name : string;
  cs_refactor :
    ?certify:Refactor.Certify.config ->
    unit -> (Typecheck.env * Ast.program) list * Refactor.History.t;
      (** run the verification refactoring; returns per-stage programs
          (first = original, last = final) and the recorded history.  With
          [certify], every step must be certified ({!Refactor.Certify})
          and its certificate recorded in the history; a refutation raises
          {!Refactor.Certify.Refutation} (folded into a fault by the
          caller's guard) *)
  cs_annotate : Ast.program -> Ast.program;
      (** attach the low-level specification *)
  cs_original_spec : Specl.Sast.theory;
  cs_synonyms : (string * string) list;
  cs_lemmas : extracted:Specl.Sast.theory -> Implication.lemma list;
}

type verdict =
  | Verified
      (** every VC automatic or hint-discharged, every lemma holds *)
  | Conditionally_verified of int
      (** all lemmas hold but n VCs remain for interactive proof *)
  | Degraded of string
      (** a late stage faulted; the surviving evidence is in the report *)
  | Failed of string

type report = {
  p_history : Refactor.History.t;
  p_final : Ast.program;
  p_annotated : Ast.program;
  p_analysis : Analysis.Examiner.t option;
  p_impl : Implementation_proof.report;
  p_extracted : Specl.Sast.theory;
  p_match : Specl.Match_ratio.result;
  p_implication : Implication.result;
  p_verdict : verdict;
  p_time : float;
}

let verdict_of impl implication =
  if not (Implication.all_proved implication) then
    Failed
      (Printf.sprintf "%d implication lemma(s) do not hold"
         (implication.Implication.im_total - implication.Implication.im_proved))
  else if impl.Implementation_proof.ip_residual = 0
          && impl.Implementation_proof.ip_timed_out = 0
  then Verified
  else
    Conditionally_verified
      (impl.Implementation_proof.ip_residual + impl.Implementation_proof.ip_timed_out)

(* placeholders for stages that never ran, so a partial run still yields a
   well-formed report *)
let empty_program = { Ast.prog_name = "<not-reached>"; Ast.prog_decls = [] }
let empty_env = { Typecheck.types = []; Typecheck.objects = []; Typecheck.subs = [] }
let empty_theory = { Specl.Sast.th_name = "<not-reached>"; th_types = []; th_defs = [] }
let empty_history () = Refactor.History.create empty_env empty_program

(** Run the full Echo process for a case study.  Never raises: stage
    faults are folded into the verdict.  [jobs]/[cache_dir] are the
    proof-farm knobs, passed through to the implementation proof. *)
let run ?(analyze = false) ?jobs ?cache_dir ?certify (cs : case_study) : report =
  let t0 = Logic.Clock.now () in
  let root_span =
    Telemetry.start_span ~cat:Telemetry.cat_pipeline
      ~attrs:[ ("case", Telemetry.S cs.cs_name) ]
      "pipeline-run"
  in
  (* each guarded stage gets one [stage] span, faulted or not, and feeds
     the coarse stage-duration histogram *)
  let guarded name body =
    Telemetry.with_span ~cat:Telemetry.cat_stage name (fun () ->
        if not (Telemetry.enabled ()) then Fault.guard body
        else begin
          let t0 = Logic.Clock.now () in
          let r = Fault.guard body in
          Telemetry.observe ~buckets:Telemetry.stage_buckets "stage_wall_s"
            (Logic.Clock.elapsed t0);
          r
        end)
  in
  let finish ?(history = empty_history ()) ?(final = empty_program)
      ?(annotated = empty_program) ?analysis ?(impl = Implementation_proof.empty)
      ?(extracted = empty_theory) ?(match_ = Specl.Match_ratio.empty)
      ?(implication = Implication.empty) verdict =
    let verdict_name =
      match verdict with
      | Verified -> "verified"
      | Conditionally_verified _ -> "conditionally-verified"
      | Degraded _ -> "degraded"
      | Failed _ -> "failed"
    in
    Telemetry.finish_span root_span ~attrs:[ ("verdict", Telemetry.S verdict_name) ];
    {
      p_history = history;
      p_final = final;
      p_annotated = annotated;
      p_analysis = analysis;
      p_impl = impl;
      p_extracted = extracted;
      p_match = match_;
      p_implication = implication;
      p_verdict = verdict;
      p_time = Logic.Clock.elapsed t0;
    }
  in
  match
    guarded "refactor" (fun () ->
        let stages, history = cs.cs_refactor ?certify () in
        match List.rev stages with
        | (_, final) :: _ -> (final, history)
        | [] -> invalid_arg "Pipeline.run: no stages")
  with
  | Error f -> finish (Failed (Fault.describe f))
  | Ok (final, history) -> (
      match guarded "annotate" (fun () -> Typecheck.check (cs.cs_annotate final)) with
      | Error f -> finish ~history ~final (Failed (Fault.describe f))
      | Ok (env, annotated) -> (
          match
            if not analyze then Ok None
            else
              guarded "analyze" (fun () ->
                  let an = Analysis.Examiner.analyze env annotated in
                  if Telemetry.enabled () then
                    Telemetry.count
                      ~by:(List.length (Analysis.Examiner.diags an))
                      "an_diagnostics";
                  let errs = Analysis.Examiner.errors an in
                  if errs > 0 then
                    raise
                      (Fault.Fault
                         (Fault.Analysis
                            {
                              errors = errs;
                              first =
                                (match
                                   List.filter
                                     (fun d ->
                                       d.Analysis.Diag.d_severity
                                       = Analysis.Diag.Error)
                                     (Analysis.Examiner.diags an)
                                 with
                                | d :: _ ->
                                    Fmt.str "%a" Analysis.Diag.pp d
                                | [] -> "");
                            }));
                  Some an)
          with
          | Error f -> finish ~history ~final ~annotated (Failed (Fault.describe f))
          | Ok analysis -> (
              (* when analysis ran cleanly its interval results pre-discharge
                 exception-freedom VCs: the prover never sees them *)
              let discharge =
                if analyze then Some Analysis.Discharge.vc_discharged else None
              in
              match
                guarded "implementation-proof" (fun () ->
                    let cache =
                      Option.map (fun dir -> Farm.Cache.open_ ~dir) cache_dir
                    in
                    Implementation_proof.run ?discharge ?jobs ?cache env
                      annotated)
              with
              | Error f ->
                  finish ~history ~final ~annotated ?analysis
                    (Failed (Fault.describe f))
              | Ok impl -> (
                  match
                    guarded "extract" (fun () ->
                        let extracted = Extract.extract_program env annotated in
                        let match_result =
                          Specl.Match_ratio.compare ~synonyms:cs.cs_synonyms
                            ~original:cs.cs_original_spec ~extracted ()
                        in
                        if Telemetry.enabled () then
                          Telemetry.gauge "match_ratio"
                            match_result.Specl.Match_ratio.mr_ratio;
                        (extracted, match_result))
                  with
                  | Error f ->
                      (* the implementation proof survived: degrade, don't discard *)
                      finish ~history ~final ~annotated ?analysis ~impl
                        (Degraded (Fault.describe f))
                  | Ok (extracted, match_result) -> (
                      match
                        guarded "implication-proof" (fun () ->
                            Implication.run (cs.cs_lemmas ~extracted))
                      with
                      | Error f ->
                          finish ~history ~final ~annotated ?analysis ~impl
                            ~extracted ~match_:match_result
                            (Degraded (Fault.describe f))
                      | Ok implication ->
                          finish ~history ~final ~annotated ?analysis ~impl
                            ~extracted ~match_:match_result ~implication
                            (verdict_of impl implication))))))

let pp_verdict ppf = function
  | Verified -> Fmt.string ppf "VERIFIED"
  | Conditionally_verified n ->
      Fmt.pf ppf "CONDITIONALLY VERIFIED (%d VCs left for interactive proof)" n
  | Degraded msg -> Fmt.pf ppf "DEGRADED: %s" msg
  | Failed msg -> Fmt.pf ppf "FAILED: %s" msg

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>%a@,refactoring: %d transformations@,%a%a@,structure match: %a@,\
     implication: %d/%d lemmas@,verdict: %a (%.1fs)@]"
    Refactor.History.pp_summary r.p_history
    (Refactor.History.step_count r.p_history)
    Implementation_proof.pp_report r.p_impl
    (fun ppf -> function
      | None -> ()
      | Some an ->
          Fmt.pf ppf "@,analysis: %d error(s), %d warning(s), %d info(s)"
            (Analysis.Examiner.errors an)
            (Analysis.Diag.count Analysis.Diag.Warning
               (Analysis.Examiner.diags an))
            (Analysis.Diag.count Analysis.Diag.Info
               (Analysis.Examiner.diags an)))
    r.p_analysis Specl.Match_ratio.pp_result r.p_match
    r.p_implication.Implication.im_proved r.p_implication.Implication.im_total
    pp_verdict r.p_verdict r.p_time
