(** The Echo pipeline (§3) as a single entry point: verification
    refactoring, annotation, implementation proof, reverse synthesis and
    implication proof, run end-to-end over a case study and folded into
    one verdict.

    A {!case_study} packages everything that is specific to one program:
    how to refactor it, how to annotate the result, the original
    specification it must imply, and the lemma suite connecting the two.
    [Aes.Aes_echo.case_study] is the paper's §6 instantiation. *)

open Minispark

type case_study = {
  cs_name : string;
  cs_refactor :
    ?certify:Refactor.Certify.config ->
    unit -> (Typecheck.env * Ast.program) list * Refactor.History.t;
      (** run the verification refactoring; returns per-stage programs
          (first = original, last = final) and the recorded history.  With
          [certify], every step is certified ({!Refactor.Certify}) and its
          certificate recorded in the history; a refutation raises
          {!Refactor.Certify.Refutation} *)
  cs_annotate : Ast.program -> Ast.program;
      (** attach the low-level specification *)
  cs_original_spec : Specl.Sast.theory;
  cs_synonyms : (string * string) list;
      (** name synonyms for the structure match (e.g. cipher = encrypt) *)
  cs_lemmas : extracted:Specl.Sast.theory -> Implication.lemma list;
}

type verdict =
  | Verified
      (** every VC automatic or hint-discharged, every lemma holds *)
  | Conditionally_verified of int
      (** all lemmas hold but n VCs remain for interactive proof *)
  | Degraded of string
      (** a post-proof stage faulted; surviving evidence is in the report *)
  | Failed of string

type report = {
  p_history : Refactor.History.t;
  p_final : Ast.program;          (** refactored, unannotated *)
  p_annotated : Ast.program;      (** refactored + annotations, checked *)
  p_analysis : Analysis.Examiner.t option;
      (** static-analysis results when the opt-in pre-pass ran *)
  p_impl : Implementation_proof.report;
  p_extracted : Specl.Sast.theory;
  p_match : Specl.Match_ratio.result;
  p_implication : Implication.result;
  p_verdict : verdict;
  p_time : float;                 (** wall-clock seconds, whole pipeline *)
}

val run :
  ?analyze:bool -> ?jobs:int -> ?cache_dir:string ->
  ?certify:Refactor.Certify.config -> case_study -> report
(** Run the full Echo process.  Never raises: every stage body runs under
    {!Fault.guard}.  A refactoring step whose mechanical applicability
    check rejects (the §7 experiments catch seeded defects this way), an
    ill-typed annotation, or an infeasible VC generation all fold into a
    [Failed] verdict; a fault after the implementation proof has produced
    evidence folds into [Degraded].  Stages that never ran are represented
    by empty placeholders in the report.  For budgets, retry ladders,
    checkpointing and resumption use {!Orchestrator}.

    [analyze] (default [false]) inserts the {!Analysis.Examiner} pre-pass
    between annotation and the implementation proof: error-severity flow
    diagnostics abort with a [Failed] verdict ({!Fault.Analysis}), and
    interval analysis statically discharges exception-freedom VCs so the
    retry ladder never schedules them.

    [jobs] (default 1) dispatches the implementation-proof VCs over a
    work-stealing domain pool; [cache_dir] opens the persistent proof
    cache there, so a re-run after a refactoring block only re-proves
    VCs whose formulas changed.  Neither affects the verdict.

    [certify] runs the refactoring under per-step certification
    ({!Refactor.Certify}): every step records a certificate in the
    history, and a refuted step folds into a [Failed] verdict carrying
    the counterexample ({!Fault.Certification}). *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
