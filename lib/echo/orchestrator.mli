(** Resilient orchestration of the Echo pipeline.

    {!Pipeline.run} is the plain engine; this module drives the same five
    stages — refactor, annotate, implementation proof, reverse synthesis,
    implication proof — under an explicit resource-and-recovery policy:

    - every stage body runs under {!Fault.guard}, so no failure escapes as
      an exception: [run] always returns a verdict;
    - per-VC wall-clock deadlines and a global pipeline deadline, enforced
      on the monotonic clock ({!Logic.Clock});
    - a {!Retry} ladder per VC (automatic → simplify-then-retry → hinted)
      with every attempt recorded in the proof report;
    - stage checkpointing ({!Checkpoint}) into a run directory, and
      {!resume} to continue an interrupted or partially-failed run from
      the last good stage;
    - graceful degradation: timed-out or infeasible VCs and late-stage
      faults produce a [Degraded] verdict carrying the surviving results
      instead of aborting the run. *)

(** Instrumentation/chaos hook points (identity by default).  [h_stage]
    runs at stage entry and may raise — a raised {!Fault.Fault} is how the
    chaos harness injects stage failures. *)
type hooks = {
  h_stage : Checkpoint.stage -> unit;
  h_vcs : Logic.Formula.vc list -> Logic.Formula.vc list;
  h_prover : Logic.Prover.config -> Logic.Prover.config;
  h_lemmas : Implication.lemma list -> Implication.lemma list;
}

val no_hooks : hooks

(** Where the persistent proof cache lives.  [Cache_default] puts it in
    [<run-dir>/proof-cache] when a run directory is configured (so a
    [--resume] run inherits the interrupted run's proofs) and disables it
    otherwise; [Cache_dir] pins an explicit directory shared across runs;
    [Cache_off] never consults or writes a cache. *)
type cache_mode =
  | Cache_default
  | Cache_dir of string
  | Cache_off

type config = {
  oc_run_dir : string option;        (** checkpoint directory; [None] = no checkpoints *)
  oc_global_deadline_s : float option;  (** whole-pipeline wall-clock budget *)
  oc_vc_deadline_s : float option;   (** per-VC-attempt wall-clock budget *)
  oc_retry : Retry.policy;           (** ladder for the implementation proof *)
  oc_max_steps : int;                (** prover fuel per attempt (base) *)
  oc_budget : Vcgen.budget;
  oc_analyze : bool;
      (** insert the {!Analysis.Examiner} pre-pass between annotation and
          the implementation proof; error diagnostics fail the run
          ({!Fault.Analysis}) and interval analysis pre-discharges
          exception-freedom VCs so the ladder never schedules them *)
  oc_certify : bool;
      (** certify every refactoring step ({!Refactor.Certify}): per-step
          equivalence VCs discharged through the proof cache plus the
          differential fuzzing oracle.  A refuted step fails the run
          ({!Fault.Certification}, exit code 7); steps left [Unknown]
          degrade the verdict.  The certificates ride on the refactor
          checkpoint, and the certify stage's audit is checkpointed too *)
  oc_jobs : int;
      (** proof-farm width for the implementation proof: number of
          domains dispatching VCs cost-descending with work stealing;
          [1] (the default) runs inline.  Verdicts are identical for any
          value *)
  oc_cache : cache_mode;  (** persistent proof-cache placement *)
  oc_baseline : string option;
      (** incremental mode: a previous run's directory.  The refactor,
          certify and annotate checkpoints are loaded from there instead
          of recomputed, the annotated program is diffed against the
          baseline's ({!Analysis.Semdiff}), and only the impacted VCs
          ({!Analysis.Impact}) are re-proved — every other VC's baseline
          verdict is carried over.  Under [Cache_default] the baseline's
          proof cache is shared.  A missing or unreadable baseline piece
          degrades to a full re-prove with a note, never a fault *)
  oc_edit : (Minispark.Ast.program -> Minispark.Ast.program) option;
      (** incremental mode: the edit under analysis, applied to the
          baseline's annotated program before re-verification (stands in
          for the user editing the source between runs) *)
  oc_carry : bool;
      (** incremental mode: when [false], the impact plan is computed and
          audited but every VC is still re-proved — the reference
          configuration incremental verdicts are validated against *)
  oc_hooks : hooks;
}

val default_config : config

type stage_status =
  | St_ok of { st_time : float; st_from_checkpoint : bool }
  | St_failed of Fault.t
  | St_skipped           (** never reached because an earlier stage failed *)

type degradation = {
  dg_stage : string;         (** where resilience absorbed the fault *)
  dg_fault : Fault.t;        (** representative fault *)
  dg_residual : int;
  dg_timed_out : int;
  dg_lemmas_failed : int;
}

type verdict =
  | Verified
  | Conditionally_verified of int
  | Degraded of degradation
  | Failed of Fault.t

type report = {
  o_case : string;
  o_stages : (Checkpoint.stage * stage_status) list;  (** pipeline order *)
  o_refactor_steps : int;
  o_analysis : Analysis.Examiner.t option;  (** when [oc_analyze] *)
  o_certify : Refactor.Certify.audit option;  (** when [oc_certify] *)
  o_impact : Checkpoint.impact_audit option;  (** when [oc_baseline] *)
  o_impl : Implementation_proof.report option;
  o_match : Specl.Match_ratio.result option;
  o_lemmas : (string * bool * string) list;  (** name, holds?, method/reason *)
  o_notes : string list;     (** non-fatal events, e.g. checkpoint trouble *)
  o_verdict : verdict;
  o_attempts : int;          (** prover-ladder attempts across all VCs *)
  o_time : float;
}

val run : ?resume:bool -> ?config:config -> Pipeline.case_study -> report
(** Drive the pipeline under the policy.  Never raises.  With a run
    directory configured, each completed stage is checkpointed; a fresh
    run ([resume = false], the default) clears stale checkpoints first. *)

val resume : ?config:config -> Pipeline.case_study -> report
(** [run ~resume:true]: stages with a valid checkpoint are loaded instead
    of recomputed (their status says so); execution continues from the
    first missing or corrupt checkpoint.  A checkpointed clean run resumed
    this way reproduces its verdict bit-for-bit without re-proving. *)

val verdict_failed : report -> bool
(** True for [Failed _] verdicts (CLI exit-code helper). *)

val verdict_fault : report -> Fault.t option
(** The fault behind a [Failed]/[Degraded] verdict, if any. *)

val pp_verdict : verdict Fmt.t
val pp_report : report Fmt.t
