(** The implication proof (§6.2.4): the extracted specification implies the
    original specification, organised as lemmas over the matched
    architecture (§4.1).

    Discharge methods, strongest first: exhaustive finite-domain evaluation
    (a decision for the byte-level algebra), deterministic sampling plus
    known-answer vectors for block-level elements, and structural
    congruence over already-proved lemmas. *)

type method_ =
  | Exhaustive of int   (** points checked — a finite-domain decision *)
  | Sampled of int      (** deterministic random trials *)
  | Structural

type outcome =
  | Holds of method_
  | Fails of string

type lemma = {
  lm_name : string;
  lm_original : string;    (** element of the original specification *)
  lm_extracted : string;   (** element of the extracted specification *)
  lm_run : unit -> outcome;
}

val exhaustive :
  name:string -> original:string -> extracted:string ->
  domain:Specl.Seval.value list list ->
  lhs:(Specl.Seval.value list -> Specl.Seval.value) ->
  rhs:(Specl.Seval.value list -> Specl.Seval.value) -> unit -> lemma

val sampled :
  name:string -> original:string -> extracted:string ->
  gen:((unit -> int) -> Specl.Seval.value list) -> count:int ->
  lhs:(Specl.Seval.value list -> Specl.Seval.value) ->
  rhs:(Specl.Seval.value list -> Specl.Seval.value) -> unit -> lemma

val structural :
  name:string -> original:string -> extracted:string ->
  premises:string list -> check:(unit -> bool) -> unit -> lemma

type result = {
  im_lemmas : (lemma * outcome) list;
  im_total : int;
  im_proved : int;
  im_time : float;
}

val empty : result
(** Degenerate result for pipeline stages that never ran. *)

val run : lemma list -> result
(** Evaluate every lemma.  A lemma body that raises is recorded as
    [Fails] — one blown lemma never aborts the suite. *)

val all_proved : result -> bool
val pp_method : method_ Fmt.t
val pp_result : result Fmt.t
