(* Retry ladders: staged proof strategies with explicit budgets, after
   Grov's tactic-style staging.  Each rung is a self-contained attempt;
   escalation order and budgets are data, not control flow, so policies
   can be tuned (and chaos-tested) without touching the prover. *)

module P = Logic.Prover

type rung = {
  rg_name : string;
  rg_hints : P.hint list;
  rg_presimplify : bool;
  rg_fuel_factor : int;
}

type policy = {
  pol_rungs : rung list;
  pol_backoff_s : float;
  pol_deadline_s : float option;
}

let automatic = { rg_name = "automatic"; rg_hints = []; rg_presimplify = false; rg_fuel_factor = 1 }

let simplify_retry =
  { rg_name = "simplify"; rg_hints = []; rg_presimplify = true; rg_fuel_factor = 2 }

let hinted hints =
  { rg_name = "hinted"; rg_hints = hints; rg_presimplify = false; rg_fuel_factor = 1 }

let legacy_policy hints =
  { pol_rungs = [ automatic; hinted hints ]; pol_backoff_s = 0.0; pol_deadline_s = None }

let default_policy hints =
  {
    pol_rungs = [ automatic; simplify_retry; hinted hints ];
    pol_backoff_s = 0.0;
    pol_deadline_s = None;
  }

let with_deadline d policy = { policy with pol_deadline_s = d }

type attempt = {
  at_rung : string;
  at_outcome : P.outcome;
  at_time : float;
  at_elapsed : float;
}

type result = {
  rt_result : P.proof_result;
  rt_attempts : attempt list;
  rt_rung : rung option;
}

let attempts r = List.length r.rt_attempts

let timed_out r = match r.rt_result.P.pr_outcome with P.Timeout _ -> true | _ -> false

(* formula-size buckets for the before/after-simplify histograms *)
let node_buckets = [| 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000. |]

let outcome_name = function
  | P.Proved -> "proved"
  | P.Unknown _ -> "unknown"
  | P.Timeout _ -> "timeout"

(* One rung: returns the prover's verdict plus the rung's wall-clock
   elapsed time (which, unlike [pr_time], includes pre-simplification).
   Instrumented as one [rung] span per attempt. *)
let run_rung ~policy ~cfg vc rung : P.proof_result * float =
  let cfg =
    {
      cfg with
      P.max_steps = cfg.P.max_steps * rung.rg_fuel_factor;
      deadline_s =
        (match (policy.pol_deadline_s, cfg.P.deadline_s) with
        | Some p, Some c -> Some (Float.min p c)
        | Some p, None -> Some p
        | None, c -> c);
    }
  in
  let t0 = Logic.Clock.now () in
  let span =
    Telemetry.start_span ~cat:Telemetry.cat_rung
      ~attrs:[ ("vc", Telemetry.S vc.Logic.Formula.vc_name) ]
      rung.rg_name
  in
  let rewrites0 = Logic.Simplify.rewrite_passes () in
  let vc =
    if not rung.rg_presimplify then vc
    else begin
      if Telemetry.enabled () then
        Telemetry.observe ~buckets:node_buckets "simplify_before_nodes"
          (float_of_int (Logic.Formula.vc_byte_size vc / 8));
      let vc' = Logic.Simplify.simplify_vc vc in
      if Telemetry.enabled () then
        Telemetry.observe ~buckets:node_buckets "simplify_after_nodes"
          (float_of_int (Logic.Formula.vc_byte_size vc' / 8));
      vc'
    end
  in
  let r =
    match P.prove_vc ~cfg ~hints:rung.rg_hints vc with
    | r -> r
    | exception Sys.Break -> raise Sys.Break
    | exception e ->
        (* a dying search is an Unknown attempt, not a dead ladder *)
        {
          P.pr_vc = vc;
          pr_outcome = P.Unknown ("prover raised: " ^ Printexc.to_string e);
          pr_hints_used = 0;
          pr_time = 0.0;
          pr_steps = 0;
        }
  in
  let elapsed = Logic.Clock.elapsed t0 in
  if Telemetry.enabled () then begin
    Telemetry.count "prover_attempts";
    Telemetry.count ~by:(Logic.Simplify.rewrite_passes () - rewrites0) "simplify_rewrite_passes";
    Telemetry.observe "rung_wall_s" elapsed;
    Telemetry.observe ~buckets:[| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 |] "prover_steps"
      (float_of_int r.P.pr_steps)
  end;
  Telemetry.finish_span span
    ~attrs:
      [
        ("outcome", Telemetry.S (outcome_name r.P.pr_outcome));
        ("prover_s", Telemetry.F r.P.pr_time);
      ];
  (r, elapsed)

let prove ?policy ~cfg vc : result =
  let policy = match policy with Some p -> p | None -> default_policy [] in
  let rec climb acc = function
    | [] -> assert false
    | rung :: rest -> (
        if acc <> [] && policy.pol_backoff_s > 0.0 then Unix.sleepf policy.pol_backoff_s;
        let r, elapsed = run_rung ~policy ~cfg vc rung in
        let a =
          {
            at_rung = rung.rg_name;
            at_outcome = r.P.pr_outcome;
            at_time = r.P.pr_time;
            at_elapsed = elapsed;
          }
        in
        let acc = a :: acc in
        match (r.P.pr_outcome, rest) with
        | P.Proved, _ -> { rt_result = r; rt_attempts = List.rev acc; rt_rung = Some rung }
        | _, [] -> { rt_result = r; rt_attempts = List.rev acc; rt_rung = None }
        | _, rest -> climb acc rest)
  in
  match policy.pol_rungs with
  | [] ->
      (* an empty ladder proves nothing but still answers *)
      let r =
        {
          P.pr_vc = vc;
          pr_outcome = P.Unknown "empty retry ladder";
          pr_hints_used = 0;
          pr_time = 0.0;
          pr_steps = 0;
        }
      in
      { rt_result = r; rt_attempts = []; rt_rung = None }
  | rungs -> climb [] rungs

let ladder_elapsed r = List.fold_left (fun acc a -> acc +. a.at_elapsed) 0.0 r.rt_attempts

let pp_attempt ppf a =
  Fmt.pf ppf "%s: %a (%.3fs prover, %.3fs total)" a.at_rung P.pp_outcome a.at_outcome
    a.at_time a.at_elapsed
