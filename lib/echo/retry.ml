(* Retry ladders: staged proof strategies with explicit budgets, after
   Grov's tactic-style staging.  Each rung is a self-contained attempt;
   escalation order and budgets are data, not control flow, so policies
   can be tuned (and chaos-tested) without touching the prover. *)

module P = Logic.Prover

type rung = {
  rg_name : string;
  rg_hints : P.hint list;
  rg_presimplify : bool;
  rg_fuel_factor : int;
}

type policy = {
  pol_rungs : rung list;
  pol_backoff_s : float;
  pol_deadline_s : float option;
}

let automatic = { rg_name = "automatic"; rg_hints = []; rg_presimplify = false; rg_fuel_factor = 1 }

let simplify_retry =
  { rg_name = "simplify"; rg_hints = []; rg_presimplify = true; rg_fuel_factor = 2 }

let hinted hints =
  { rg_name = "hinted"; rg_hints = hints; rg_presimplify = false; rg_fuel_factor = 1 }

let legacy_policy hints =
  { pol_rungs = [ automatic; hinted hints ]; pol_backoff_s = 0.0; pol_deadline_s = None }

let default_policy hints =
  {
    pol_rungs = [ automatic; simplify_retry; hinted hints ];
    pol_backoff_s = 0.0;
    pol_deadline_s = None;
  }

let with_deadline d policy = { policy with pol_deadline_s = d }

type attempt = {
  at_rung : string;
  at_outcome : P.outcome;
  at_time : float;
}

type result = {
  rt_result : P.proof_result;
  rt_attempts : attempt list;
  rt_rung : rung option;
}

let attempts r = List.length r.rt_attempts

let timed_out r = match r.rt_result.P.pr_outcome with P.Timeout _ -> true | _ -> false

let run_rung ~policy ~cfg vc rung : P.proof_result =
  let cfg =
    {
      cfg with
      P.max_steps = cfg.P.max_steps * rung.rg_fuel_factor;
      deadline_s =
        (match (policy.pol_deadline_s, cfg.P.deadline_s) with
        | Some p, Some c -> Some (Float.min p c)
        | Some p, None -> Some p
        | None, c -> c);
    }
  in
  let vc = if rung.rg_presimplify then Logic.Simplify.simplify_vc vc else vc in
  match P.prove_vc ~cfg ~hints:rung.rg_hints vc with
  | r -> r
  | exception Sys.Break -> raise Sys.Break
  | exception e ->
      (* a dying search is an Unknown attempt, not a dead ladder *)
      {
        P.pr_vc = vc;
        pr_outcome = P.Unknown ("prover raised: " ^ Printexc.to_string e);
        pr_hints_used = 0;
        pr_time = 0.0;
      }

let prove ?policy ~cfg vc : result =
  let policy = match policy with Some p -> p | None -> default_policy [] in
  let rec climb acc = function
    | [] -> assert false
    | rung :: rest -> (
        if acc <> [] && policy.pol_backoff_s > 0.0 then Unix.sleepf policy.pol_backoff_s;
        let r = run_rung ~policy ~cfg vc rung in
        let a = { at_rung = rung.rg_name; at_outcome = r.P.pr_outcome; at_time = r.P.pr_time } in
        let acc = a :: acc in
        match (r.P.pr_outcome, rest) with
        | P.Proved, _ -> { rt_result = r; rt_attempts = List.rev acc; rt_rung = Some rung }
        | _, [] -> { rt_result = r; rt_attempts = List.rev acc; rt_rung = None }
        | _, rest -> climb acc rest)
  in
  match policy.pol_rungs with
  | [] ->
      (* an empty ladder proves nothing but still answers *)
      let r =
        { P.pr_vc = vc; pr_outcome = P.Unknown "empty retry ladder"; pr_hints_used = 0; pr_time = 0.0 }
      in
      { rt_result = r; rt_attempts = []; rt_rung = None }
  | rungs -> climb [] rungs

let pp_attempt ppf a =
  Fmt.pf ppf "%s: %a (%.3fs)" a.at_rung P.pp_outcome a.at_outcome a.at_time
