(** Structured fault taxonomy for the Echo toolchain.

    Every way a pipeline stage can fail is named here, so stage failures
    travel as [result] values instead of raw exceptions and the
    orchestrator can decide per fault class whether to retry, degrade, or
    abort.  The classes also fix the CLI exit codes (parse=2, type=3,
    not-applicable=4, proof-failure=5, flow-analysis=6,
    certification-refuted=7, service=8). *)

type t =
  | Parse of { msg : string; line : int; col : int }
      (** the program source does not parse *)
  | Type of string
      (** the program (typically after annotation) does not type-check *)
  | Refactor of string
      (** a transformation's mechanical applicability check rejected *)
  | Vc_infeasible of string
      (** VC generation exceeded its resource budget (§6.2.2) *)
  | Prover_timeout of { vc : string; elapsed : float }
      (** a VC's proof search hit its wall-clock deadline *)
  | Prover_stuck of { vc : string; reason : string }
      (** proof search exhausted its step/fuel budget without an answer *)
  | Lemma of { lemma : string; reason : string }
      (** an implication lemma failed to evaluate (not: evaluated false) *)
  | Deadline of { stage : string; budget : float }
      (** the orchestrator's global wall-clock budget ran out *)
  | Checkpoint of string
      (** a checkpoint could not be written or read back *)
  | Injected of string
      (** a chaos-harness probe (see {!Defects.Chaos}) *)
  | Crash of string
      (** any other exception, captured with its backtrace summary *)
  | Analysis of { errors : int; first : string }
      (** flow analysis reported error-severity diagnostics (the Examiner
          refuses the program before any proof is attempted) *)
  | Certification of { cert_step : string; cert_reason : string }
      (** per-step certification ({!Refactor.Certify}) refuted a
          refactoring step with a concrete counterexample *)
  | Service of { srv_op : string; srv_reason : string }
      (** the verification service ({i Serve.Daemon}) could not honour a
          request: malformed submission, queue overflow, a worker process
          that crashed past its retry budget, or a dead daemon socket *)

exception Fault of t
(** Carrier for typed faults across code that still raises (the chaos
    probes use it); {!of_exn} maps it back to its payload. *)

val of_exn : exn -> t
(** Classify an exception: parser, typechecker, refactoring, certification
    and VC-budget exceptions map to their classes, [Fault] unwraps,
    anything else is [Crash]. *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a stage body, converting any escaping exception via {!of_exn}.
    [Stack_overflow] and [Out_of_memory] are treated as [Crash] (the
    orchestrator survives runaway searches); [Sys.Break] is re-raised. *)

val class_name : t -> string
(** Short stable identifier: ["parse"], ["type"], ["refactor"], ... *)

val describe : t -> string

val exit_code : t -> int
(** CLI exit code for the fault class: parse=2, type=3, not-applicable=4,
    everything proof-related (infeasible VCs, timeouts, stuck searches,
    failed lemmas, blown deadlines)=5, flow-analysis errors=6, refuted
    certification=7, service errors=8, checkpoint/crash/injected=1. *)

val is_transient : t -> bool
(** Faults worth retrying with a bigger budget (timeouts, stuck searches,
    blown deadlines) as opposed to deterministic rejections. *)

val pp : t Fmt.t
