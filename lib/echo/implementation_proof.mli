(** The implementation proof (§6.2.3): the annotated program is shown to
    conform to its annotations — the stand-in for the SPARK toolset run,
    with the automation fraction measured rather than estimated.

    Every VC climbs a {!Retry} ladder; [run] keeps the historical two-rung
    behaviour, [run_resilient] adds simplify-then-retry, per-VC deadlines
    and the orchestrator/chaos hook points.

    Both entry points take the proof-farm knobs: [?jobs] dispatches the
    VCs cost-descending over a work-stealing domain pool, and [?cache]
    consults (and extends) a persistent content-addressed proof cache
    keyed by {!Logic.Formula.vc_digest} plus a prover-config/hint/
    program-function signature.  Results are reassembled in generation
    order and cache traffic stays on the coordinator domain, so verdicts
    are bit-identical whatever the job count or cache temperature;
    cache-replayed VCs are flagged [vr_cached] and counted in
    [ip_cache_hits] rather than given a new status, so verdict totals
    match cold runs exactly. *)

open Minispark

type vc_status =
  | Auto                 (** discharged with no interaction *)
  | Hinted of int        (** discharged after n interactive steps *)
  | Residual of string   (** not discharged mechanically *)
  | Timed_out of float   (** every ladder rung hit its deadline *)
  | Discharged           (** proved by static interval analysis; the
                             retry ladder never scheduled it *)

type vc_result = {
  vr_vc : Logic.Formula.vc;
  vr_status : vc_status;
  vr_attempts : int;     (** ladder attempts spent on this VC *)
  vr_time : float;
  vr_cached : bool;      (** replayed from the proof cache, prover skipped *)
}

type sub_stats = {
  ss_name : string;
  ss_total : int;
  ss_auto : int;
  ss_hinted : int;
  ss_residual : int;
  ss_timed_out : int;
  ss_discharged : int;   (** statically discharged, never sent to prover *)
}

type report = {
  ip_results : vc_result list;
  ip_subs : sub_stats list;
  ip_total : int;
  ip_auto : int;
  ip_hinted : int;
  ip_residual : int;
  ip_timed_out : int;
  ip_discharged : int;   (** statically discharged, never sent to prover *)
  ip_attempts : int;     (** ladder attempts across all VCs *)
  ip_cache_hits : int;   (** VCs replayed from the proof cache *)
  ip_cache_misses : int; (** VCs sent to the prover despite an open cache *)
  ip_carried : int;      (** baseline verdicts carried over by change-impact
                             analysis; never re-proved *)
  ip_generated_nodes : int;
  ip_time : float;
  ip_infeasible : string option;
}

val empty : report
(** Degenerate report for pipeline stages that never ran. *)

val auto_fraction : report -> float
val fully_auto_subs : report -> int

val interp_of :
  Typecheck.env -> Ast.program -> string -> int list -> int option
(** Ground evaluation of program functions for the prover. *)

val standard_hints : Logic.Prover.hint list
(** The paper's two interactive steps: application of preconditions and
    induction on loop invariants. *)

val run :
  ?discharge:(Logic.Formula.vc -> bool) ->
  ?budget:Vcgen.budget -> ?max_steps:int ->
  ?jobs:int -> ?cache:Farm.Cache.t ->
  Typecheck.env -> Ast.program -> report
(** Legacy ladder (automatic, then hinted) with no deadlines — the §6.2.3
    accounting baseline.  [discharge] is the static-analysis oracle
    (e.g. {i Analysis.Discharge.vc_discharged}): VCs it accepts are
    tagged [Discharged] with zero attempts and never enter the ladder;
    soundness of the oracle is the analyzer's obligation. *)

val run_resilient :
  ?policy:Retry.policy ->
  ?filter_vcs:(Logic.Formula.vc list -> Logic.Formula.vc list) ->
  ?tune_cfg:(Logic.Prover.config -> Logic.Prover.config) ->
  ?give_up:(unit -> bool) ->
  ?discharge:(Logic.Formula.vc -> bool) ->
  ?carry:(Logic.Formula.vc -> vc_result option) ->
  ?budget:Vcgen.budget -> ?max_steps:int ->
  ?jobs:int -> ?cache:Farm.Cache.t ->
  Typecheck.env -> Ast.program -> report
(** The orchestrated form: configurable retry ladder, and hook points for
    VC-list filtering and prover-config tuning (used by the chaos
    harness).  [give_up] is polled before each VC — once true (e.g. the
    orchestrator's global deadline expired), remaining VCs are charged as
    timed out with zero attempts.  Timeouts are reported per VC, never
    raised.

    [carry] is the incremental-verification hook: consulted per VC before
    the proof cache, it returns a baseline verdict that change-impact
    analysis has certified still-valid ({!Analysis.Impact}); carried VCs
    are marked [vr_cached] and counted in [ip_carried], and the prover
    never sees them.  The caller is responsible for never carrying
    timeouts. *)

val pp_report : report Fmt.t
val pp_details : report Fmt.t
