(* One verification job — the service-facing wrapper around the
   parse/check/analyze/prove spine.  See verify.mli for the contract.

   Everything here is defensive: the daemon calls [run] inside a forked
   worker process and must get an [outcome] back whatever the input, so
   every stage body runs under [Fault.guard], baseline problems demote to
   notes, and the progress hook is fenced off from the job. *)

open Minispark

type vc_summary = {
  vs_name : string;
  vs_sub : string;
  vs_digest : string;
  vs_status : string;
  vs_attempts : int;
  vs_time : float;
  vs_cached : bool;
}

type baseline = {
  vb_program : string;
  vb_results : vc_summary list;
}

type options = {
  vo_analyze : bool;
  vo_jobs : int;
  vo_cache : Farm.Cache.t option;
  vo_baseline : baseline option;
  vo_deadline_s : float option;
  vo_max_steps : int;
}

let default_options =
  {
    vo_analyze = false;
    vo_jobs = 1;
    vo_cache = None;
    vo_baseline = None;
    vo_deadline_s = None;
    vo_max_steps = 60_000;
  }

type verdict =
  | Verified
  | Conditional of int
  | Degraded of int
  | Failed of Fault.t

type outcome = {
  vj_verdict : verdict;
  vj_total : int;
  vj_auto : int;
  vj_hinted : int;
  vj_residual : int;
  vj_timed_out : int;
  vj_discharged : int;
  vj_carried : int;
  vj_cache_hits : int;
  vj_cache_misses : int;
  vj_attempts : int;
  vj_impacted_subs : int;
  vj_results : vc_summary list;
  vj_notes : string list;
  vj_seconds : float;
}

let verdict_string = function
  | Verified -> "verified"
  | Conditional _ -> "conditional"
  | Degraded _ -> "degraded"
  | Failed _ -> "failed"

(* The status-string convention shared with the bench harness: the
   machine-readable per-VC verdict that travels in checkpoints, benches
   and now service baselines. *)
let status_string (st : Implementation_proof.vc_status) =
  match st with
  | Implementation_proof.Auto -> "auto"
  | Implementation_proof.Hinted n -> Printf.sprintf "hinted:%d" n
  | Implementation_proof.Residual r -> "residual:" ^ r
  | Implementation_proof.Timed_out _ -> "timed-out"
  | Implementation_proof.Discharged -> "discharged"

(* Inverse of [status_string], minus timeouts: a timeout is a wall-clock
   accident, not a property of the VC, so a baseline is never allowed to
   replay one (mirrors the proof cache's refusal to store them). *)
let status_of_summary (s : vc_summary) :
    Implementation_proof.vc_status option =
  let open Implementation_proof in
  match s.vs_status with
  | "auto" -> Some Auto
  | "discharged" -> Some Discharged
  | st when String.length st > 7 && String.sub st 0 7 = "hinted:" -> (
      match int_of_string_opt (String.sub st 7 (String.length st - 7)) with
      | Some n when n >= 0 -> Some (Hinted n)
      | _ -> None)
  | st when String.length st > 9 && String.sub st 0 9 = "residual:" ->
      Some (Residual (String.sub st 9 (String.length st - 9)))
  | _ -> None

let status_of_string st =
  match st with
  | "auto" | "discharged" | "timed-out" -> Some st
  | _ when status_of_summary
             { vs_name = ""; vs_sub = ""; vs_digest = ""; vs_status = st;
               vs_attempts = 0; vs_time = 0.0; vs_cached = false }
           <> None -> Some st
  | _ -> None

type stage_hook = stage:string -> [ `Start | `Ok of float | `Failed of string ] -> unit

(* A hook is a courtesy to the caller, never a hazard to the job. *)
let hook (h : stage_hook option) ~stage ev =
  match h with
  | None -> ()
  | Some f -> ( try f ~stage ev with _ -> ())

(* Run one stage body: report start, run under [Fault.guard], report the
   exit either way.  The job's clock, not the stage's, drives deadlines. *)
let staged on_stage ~stage body =
  hook on_stage ~stage `Start;
  let t0 = Logic.Clock.now () in
  match Fault.guard body with
  | Ok v ->
      hook on_stage ~stage (`Ok (Logic.Clock.elapsed t0));
      Ok v
  | Error fault ->
      hook on_stage ~stage (`Failed (Fault.describe fault));
      Error fault

let summarize (vr : Implementation_proof.vc_result) =
  let vc = vr.Implementation_proof.vr_vc in
  {
    vs_name = vc.Logic.Formula.vc_name;
    vs_sub = vc.Logic.Formula.vc_sub;
    vs_digest = Logic.Formula.vc_digest vc;
    vs_status = status_string vr.Implementation_proof.vr_status;
    vs_attempts = vr.Implementation_proof.vr_attempts;
    vs_time = vr.Implementation_proof.vr_time;
    vs_cached = vr.Implementation_proof.vr_cached;
  }

let failed fault ~notes ~seconds =
  {
    vj_verdict = Failed fault;
    vj_total = 0;
    vj_auto = 0;
    vj_hinted = 0;
    vj_residual = 0;
    vj_timed_out = 0;
    vj_discharged = 0;
    vj_carried = 0;
    vj_cache_hits = 0;
    vj_cache_misses = 0;
    vj_attempts = 0;
    vj_impacted_subs = 0;
    vj_results = [];
    vj_notes = List.rev notes;
    vj_seconds = seconds;
  }

(* Change-impact planning against a baseline carried in the job itself:
   the baseline source re-parses to [old_p], the per-VC summaries supply
   the digest sets for [Impact.refine] and the carry table.  Any defect in
   the baseline (unparseable source, unknown status strings) demotes to a
   note and a full re-prove — a stale or mangled baseline must never fail
   a job that would verify from cold. *)
let plan_carry ~note env annotated (b : baseline) =
  match Fault.guard (fun () -> snd (Typecheck.check (Parser.of_string b.vb_program))) with
  | Error fault ->
      note (Printf.sprintf "impact: baseline unusable (%s); full re-prove"
              (Fault.describe fault));
      None
  | Ok old_p ->
      let plan = Analysis.Impact.compute ~old_p ~new_p:annotated in
      let current = Vcgen.vc_digests (Vcgen.generate env annotated) in
      let module M = Map.Make (String) in
      let by_sub =
        List.fold_left
          (fun m (s : vc_summary) ->
            M.update s.vs_sub
              (function None -> Some [ s ] | Some ss -> Some (s :: ss))
              m)
          M.empty b.vb_results
      in
      let baseline_digests =
        M.bindings by_sub
        |> List.map (fun (sub, ss) ->
               (sub, List.map (fun (s : vc_summary) -> s.vs_digest) ss))
      in
      let plan = Analysis.Impact.refine plan ~baseline:baseline_digests ~current in
      let carry_tbl = Hashtbl.create 256 in
      let dropped = ref 0 in
      List.iter
        (fun sub ->
          List.iter
            (fun (s : vc_summary) ->
              match status_of_summary s with
              | None -> if s.vs_status <> "timed-out" then incr dropped
              | Some status ->
                  Hashtbl.replace carry_tbl
                    (s.vs_sub ^ "|" ^ s.vs_name ^ "|" ^ s.vs_digest)
                    (status, s.vs_attempts, s.vs_time))
            (Option.value ~default:[] (M.find_opt sub by_sub)))
        plan.Analysis.Impact.pl_carried;
      if !dropped > 0 then
        note (Printf.sprintf
                "impact: %d baseline verdict(s) had unknown status; re-proving them"
                !dropped);
      note (Printf.sprintf
              "impact: %d subprogram(s) re-prove, %d carried (%d VC verdict(s))"
              (List.length plan.Analysis.Impact.pl_impacted)
              (List.length plan.Analysis.Impact.pl_carried)
              (Hashtbl.length carry_tbl));
      let carry (vc : Logic.Formula.vc) =
        match
          Hashtbl.find_opt carry_tbl
            (vc.Logic.Formula.vc_sub ^ "|" ^ vc.Logic.Formula.vc_name ^ "|"
           ^ Logic.Formula.vc_digest vc)
        with
        | None -> None
        | Some (status, attempts, time) ->
            Some
              {
                Implementation_proof.vr_vc = vc;
                vr_status = status;
                vr_attempts = attempts;
                vr_time = time;
                vr_cached = true;
              }
      in
      Some (carry, List.length plan.Analysis.Impact.pl_impacted)

let run ?(options = default_options) ?on_stage ~source () : outcome =
  let t0 = Logic.Clock.now () in
  let notes = ref [] in
  let note m = notes := m :: !notes in
  let finish_failed fault = failed fault ~notes:!notes ~seconds:(Logic.Clock.elapsed t0) in
  (* parse + typecheck *)
  match
    staged on_stage ~stage:"parse" (fun () ->
        Typecheck.check (Parser.of_string source))
  with
  | Error fault -> finish_failed fault
  | Ok (env, annotated) -> (
      (* flow analysis: the Examiner refuses error-severity programs
         before any proof is attempted, exactly like the orchestrator *)
      let analysis =
        if not options.vo_analyze then Ok ()
        else
          staged on_stage ~stage:"analyze" (fun () ->
              let an = Analysis.Examiner.analyze env annotated in
              let errs = Analysis.Examiner.errors an in
              if errs > 0 then begin
                let first =
                  match
                    List.filter
                      (fun d ->
                        d.Analysis.Diag.d_severity = Analysis.Diag.Error)
                      (Analysis.Examiner.diags an)
                  with
                  | d :: _ -> Fmt.str "%a" Analysis.Diag.pp d
                  | [] -> ""
                in
                raise (Fault.Fault (Fault.Analysis { errors = errs; first }))
              end)
      in
      match analysis with
      | Error fault -> finish_failed fault
      | Ok () -> (
          let carry, impacted =
            match options.vo_baseline with
            | None -> (None, 0)
            | Some b -> (
                match
                  staged on_stage ~stage:"impact" (fun () ->
                      plan_carry ~note env annotated b)
                with
                | Ok (Some (carry, impacted)) -> (Some carry, impacted)
                | Ok None -> (None, 0)
                | Error fault ->
                    (* impact planning is an optimisation, not a gate *)
                    note
                      (Printf.sprintf "impact: planning failed (%s); full re-prove"
                         (Fault.describe fault));
                    (None, 0))
          in
          let give_up =
            Option.map
              (fun d -> fun () -> Logic.Clock.elapsed t0 > d)
              options.vo_deadline_s
          in
          let discharge =
            if options.vo_analyze then Some Analysis.Discharge.vc_discharged
            else None
          in
          match
            staged on_stage ~stage:"prove" (fun () ->
                Implementation_proof.run_resilient ?give_up ?discharge ?carry
                  ~max_steps:options.vo_max_steps ~jobs:options.vo_jobs
                  ?cache:options.vo_cache env annotated)
          with
          | Error fault -> finish_failed fault
          | Ok rep ->
              let verdict =
                if rep.Implementation_proof.ip_timed_out > 0 then
                  Degraded rep.Implementation_proof.ip_timed_out
                else if rep.Implementation_proof.ip_residual > 0 then
                  Conditional rep.Implementation_proof.ip_residual
                else Verified
              in
              {
                vj_verdict = verdict;
                vj_total = rep.Implementation_proof.ip_total;
                vj_auto = rep.Implementation_proof.ip_auto;
                vj_hinted = rep.Implementation_proof.ip_hinted;
                vj_residual = rep.Implementation_proof.ip_residual;
                vj_timed_out = rep.Implementation_proof.ip_timed_out;
                vj_discharged = rep.Implementation_proof.ip_discharged;
                vj_carried = rep.Implementation_proof.ip_carried;
                vj_cache_hits = rep.Implementation_proof.ip_cache_hits;
                vj_cache_misses = rep.Implementation_proof.ip_cache_misses;
                vj_attempts = rep.Implementation_proof.ip_attempts;
                vj_impacted_subs = impacted;
                vj_results =
                  List.map summarize rep.Implementation_proof.ip_results;
                vj_notes = List.rev !notes;
                vj_seconds = Logic.Clock.elapsed t0;
              }))
