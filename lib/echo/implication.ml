(* The implication proof (§6.2.4): the extracted specification implies the
   original specification.

   The proof is organised exactly as the paper describes — as a series of
   lemmas following the specification architecture (architectural and
   direct mapping, §4.1): each matched element of the original
   specification gets a lemma equating it with its extracted counterpart.

   Discharge methods, strongest first:
   - [Exhaustive]: every point of a finite input domain is checked by
     evaluating both specifications — a decision procedure for the
     byte-level algebra (AES is finite-domain);
   - [Sampled]: deterministic random sampling for domains too large to
     enumerate (states, keys), plus the FIPS-197 known-answer vectors for
     the top-level elements;
   - [Structural]: the extracted definition is a composition of
     already-proved elements matching the original's composition. *)

module V = Specl.Seval

type method_ =
  | Exhaustive of int   (** points checked — a finite-domain decision *)
  | Sampled of int      (** deterministic random trials *)
  | Structural          (** congruence over already-proved lemmas *)

type outcome =
  | Holds of method_
  | Fails of string

type lemma = {
  lm_name : string;                  (** e.g. "sub_bytes_lemma" *)
  lm_original : string;              (** element of the original spec *)
  lm_extracted : string;             (** element of the extracted spec *)
  lm_run : unit -> outcome;
}

type result = {
  im_lemmas : (lemma * outcome) list;
  im_total : int;
  im_proved : int;
  im_time : float;
}

let all_proved r = r.im_proved = r.im_total

(* deterministic xorshift *)
let make_rng seed =
  let state = ref (if seed = 0 then 88172645463325252 else seed) in
  fun () ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    state := x;
    x land max_int

(* ------------------------------------------------------------------ *)
(* lemma builders                                                      *)
(* ------------------------------------------------------------------ *)

(** Both sides applied to every element of a finite domain. *)
let exhaustive ~name ~original ~extracted ~domain ~lhs ~rhs () =
  {
    lm_name = name;
    lm_original = original;
    lm_extracted = extracted;
    lm_run =
      (fun () ->
        let bad =
          List.find_map
            (fun point ->
              match (lhs point, rhs point) with
              | a, b when V.equal a b -> None
              | a, b ->
                  Some
                    (Printf.sprintf "at %s: %s vs %s"
                       (String.concat "," (List.map V.to_string point))
                       (V.to_string a) (V.to_string b))
              | exception V.Error m -> Some m)
            domain
        in
        match bad with
        | None -> Holds (Exhaustive (List.length domain))
        | Some msg -> Fails msg);
  }

(** Both sides applied to [count] deterministically sampled inputs. *)
let sampled ~name ~original ~extracted ~gen ~count ~lhs ~rhs () =
  {
    lm_name = name;
    lm_original = original;
    lm_extracted = extracted;
    lm_run =
      (fun () ->
        let rng = make_rng (Hashtbl.hash name) in
        let rec go k =
          if k >= count then Holds (Sampled count)
          else
            let point = gen rng in
            match (lhs point, rhs point) with
            | a, b when V.equal a b -> go (k + 1)
            | a, b ->
                Fails
                  (Printf.sprintf "at %s: %s vs %s"
                     (String.concat "," (List.map V.to_string point))
                     (V.to_string a) (V.to_string b))
            | exception V.Error m -> Fails m
        in
        go 0);
  }

(** Discharged by congruence: the callers guarantee the premise lemmas are
    in the list before this one. *)
let structural ~name ~original ~extracted ~premises ~check () =
  ignore premises;
  {
    lm_name = name;
    lm_original = original;
    lm_extracted = extracted;
    lm_run = (fun () -> if check () then Holds Structural else Fails "structure mismatch");
  }

(* ------------------------------------------------------------------ *)
(* runner                                                              *)
(* ------------------------------------------------------------------ *)

let empty = { im_lemmas = []; im_total = 0; im_proved = 0; im_time = 0.0 }

(* A lemma body that *raises* (rather than returning [Fails]) must not
   abort the whole suite: the remaining lemmas still carry information.
   The exception is folded into a [Fails] outcome. *)
let run_lemma l =
  match l.lm_run () with
  | o -> o
  | exception Sys.Break -> raise Sys.Break
  | exception e -> Fails ("lemma raised: " ^ Printexc.to_string e)

let run (lemmas : lemma list) : result =
  let t0 = Logic.Clock.now () in
  let outcomes =
    List.map
      (fun l ->
        let span = Telemetry.start_span ~cat:Telemetry.cat_lemma l.lm_name in
        let o = run_lemma l in
        (if Telemetry.enabled () then
           match o with
           | Holds _ -> Telemetry.count "lemmas_proved"
           | Fails _ -> Telemetry.count "lemmas_failed");
        Telemetry.finish_span span
          ~attrs:
            [
              ( "outcome",
                Telemetry.S (match o with Holds _ -> "holds" | Fails _ -> "fails") );
            ];
        (l, o))
      lemmas
  in
  let proved =
    List.length (List.filter (fun (_, o) -> match o with Holds _ -> true | _ -> false) outcomes)
  in
  {
    im_lemmas = outcomes;
    im_total = List.length lemmas;
    im_proved = proved;
    im_time = Logic.Clock.elapsed t0;
  }

let pp_method ppf = function
  | Exhaustive n -> Fmt.pf ppf "exhaustive x%d" n
  | Sampled n -> Fmt.pf ppf "sampled x%d" n
  | Structural -> Fmt.string ppf "structural"

let pp_result ppf r =
  Fmt.pf ppf "@[<v>implication proof: %d/%d lemmas discharged in %.1fs" r.im_proved
    r.im_total r.im_time;
  List.iter
    (fun (l, o) ->
      match o with
      | Holds m -> Fmt.pf ppf "@,  %-28s %s = %s: %a" l.lm_name l.lm_original l.lm_extracted pp_method m
      | Fails msg -> Fmt.pf ppf "@,  %-28s FAILS: %s" l.lm_name msg)
    r.im_lemmas;
  Fmt.pf ppf "@]"
