(** Retry ladders for VC proof attempts.

    A ladder is an ordered list of rungs; each rung is one proof attempt
    with its own strategy (pre-simplification, hint capabilities, fuel
    multiplier).  The ladder escalates automatic → simplify-then-retry →
    hint-enabled, with configurable backoff between attempts, and every
    attempt is recorded so proof reports can show how hard each VC was. *)

module P := Logic.Prover

type rung = {
  rg_name : string;            (** e.g. "automatic", "simplify", "hinted" *)
  rg_hints : P.hint list;      (** capabilities enabled on this attempt *)
  rg_presimplify : bool;       (** re-run the simplifier on the VC first *)
  rg_fuel_factor : int;        (** multiplier on the base step budget *)
}

type policy = {
  pol_rungs : rung list;
  pol_backoff_s : float;       (** sleep between attempts (0 = none) *)
  pol_deadline_s : float option;  (** per-attempt wall-clock budget *)
}

val legacy_policy : P.hint list -> policy
(** The pre-orchestrator behaviour: one automatic attempt, then one
    attempt with the given hints.  No deadline, no backoff — used by
    {!Implementation_proof.run} so historical accounting is unchanged. *)

val default_policy : P.hint list -> policy
(** The resilient ladder: automatic, simplify-with-2x-fuel, hinted. *)

val with_deadline : float option -> policy -> policy

type attempt = {
  at_rung : string;
  at_outcome : P.outcome;
  at_time : float;       (** seconds spent inside the prover proper *)
  at_elapsed : float;    (** wall-clock for the whole rung, incl. pre-simplify *)
}

type result = {
  rt_result : P.proof_result;  (** the last (or first proving) attempt *)
  rt_attempts : attempt list;  (** in attempt order, length >= 1 *)
  rt_rung : rung option;       (** the rung that proved it, if any *)
}

val attempts : result -> int
val timed_out : result -> bool
(** True when the final attempt hit its deadline. *)

val ladder_elapsed : result -> float
(** Total wall-clock across every attempt on the ladder. *)

val prove : ?policy:policy -> cfg:P.config -> Logic.Formula.vc -> result
(** Climb the ladder until a rung proves the VC or rungs run out.  Never
    raises; a rung whose search dies with an exception is recorded as an
    [Unknown] attempt and the ladder continues. *)

val pp_attempt : attempt Fmt.t
