(* The §6 case study packaged as an Echo pipeline instance: the optimized
   AES, its 14-block refactoring script, the annotation set, the FIPS-197
   specification theory, and the implication lemma suite. *)

(* Fig. 2(f) as telemetry: after each refactoring block, how much of the
   original specification's structure the program skeleton already
   matches.  Emitted as [match_ratio] instants so the trace and the
   report show the evolution, not just the final number. *)
let emit_match_evolution snapshots =
  if Telemetry.enabled () then
    List.iter
      (fun s ->
        match Extract.skeleton s.Aes_refactoring.sn_program with
        | skeleton ->
            let r =
              Specl.Match_ratio.compare ~synonyms:Aes_implication.synonyms
                ~original:Aes_spec.theory ~extracted:skeleton ()
            in
            Telemetry.instant "match_ratio"
              ~attrs:
                [
                  ( "block",
                    Telemetry.S
                      (Printf.sprintf "%02d %s" s.Aes_refactoring.sn_block
                         s.Aes_refactoring.sn_title) );
                  ("ratio", Telemetry.F r.Specl.Match_ratio.mr_ratio);
                ]
        | exception _ -> ())
      snapshots

let case_study : Echo.Pipeline.case_study =
  {
    Echo.Pipeline.cs_name = "AES (FIPS-197)";
    cs_refactor =
      (fun ?certify () ->
        let snapshots, history = Aes_refactoring.run ?certify () in
        emit_match_evolution snapshots;
        ( List.map
            (fun s ->
              (s.Aes_refactoring.sn_env, s.Aes_refactoring.sn_program))
            snapshots,
          history ));
    cs_annotate = Aes_annotations.annotate;
    cs_original_spec = Aes_spec.theory;
    cs_synonyms = Aes_implication.synonyms;
    cs_lemmas = Aes_implication.lemmas;
  }

(** Run the whole §6 verification of AES in one call. *)
let verify () = Echo.Pipeline.run case_study
