(** The verification refactoring of the optimized AES (§6.2.1/§6.2.2):
    fourteen blocks of transformations, each mechanically checked, with
    differential semantics-preservation evidence on the public entry
    points and FIPS-197 validation after every block. *)

type block = {
  b_index : int;
  b_title : string;
  b_touches : string list;
      (** declarations the block adds, modifies or removes; ["*"] =
          potentially everything *)
  b_reads : string list;  (** declarations read but left unchanged *)
  b_run : Refactor.History.t -> unit;
}

val blocks : block list

val block_specs : ?upto:int -> unit -> Refactor.Parblocks.spec list
(** The blocks as {!Refactor.Parblocks} specs (through block [upto]). *)

type snapshot = {
  sn_block : int;       (** 0 = the original optimized program *)
  sn_title : string;
  sn_env : Minispark.Typecheck.env;
  sn_program : Minispark.Ast.program;
}

val run :
  ?upto:int -> ?kat_gate:bool -> ?certify:Refactor.Certify.config ->
  ?start:Minispark.Typecheck.env * Minispark.Ast.program ->
  unit -> snapshot list * Refactor.History.t
(** Run the refactoring through block [upto] (default 14).  [kat_gate]
    (default true) validates the FIPS vectors after every block; disable
    for the seeded-defect experiment, where the vectors are not part of
    the Echo process.  With [certify], every step is certified
    ({!Refactor.Certify}) and its certificate recorded in the history.
    [start] overrides the initial program.
    @raise Refactor.Transform.Not_applicable when a transformation's
    mechanical applicability check rejects (how defects are caught at this
    stage).
    @raise Refactor.Certify.Refutation when certification finds a
    counterexample. *)

val run_parallel :
  ?upto:int -> ?jobs:int -> ?kat_gate:bool -> ?certify:Refactor.Certify.config ->
  ?start:Minispark.Typecheck.env * Minispark.Ast.program ->
  unit -> snapshot list * Refactor.History.t
(** Like {!run}, but consecutive blocks with disjoint declared footprints
    run on parallel domains ({!Refactor.Parblocks}), their steps merged
    back in block order.  Snapshots, history, certificates and KAT
    verdicts are bit-identical to {!run}'s; [jobs] (default 1) bounds the
    worker domains per group. *)
