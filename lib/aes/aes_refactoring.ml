(* The verification refactoring of the optimized AES implementation
   (§6.2.1/§6.2.2): transformations grouped into 14 blocks, applied
   mechanically with per-instance applicability checks, differential
   semantics-preservation evidence on the public entry points, and FIPS-197
   known-answer validation after every block.

   The blocks follow the paper's §6.2.2 grouping (numbering differs
   slightly in order but covers the same categories):
    1  loop rerolling for the major loops of encrypt/decrypt
    2  reversal of word packing (words -> 4-byte arrays)
    3  reversal of the ten table lookups (Te0..Te4, Td0..Td4)
    4  packing four words into a State
    5  reversal of the inlining of the round functions
    6  revealing the three key-size paths and splitting them into procedures
    7  reversal of the inlining of the key-expansion helpers
    8  adjustment of loop forms (absorbing the key-size guard rounds)
    9  reversal of additional inlined functions (the specification's round
       stages: SubBytes, ShiftRows, MixColumns, AddRoundKey and inverses)
   10  loop rerolling for sequential state updates (block load/store)
   11  procedure splitting (block load/store procedures)
   12  adjustment of intermediate storage (type renaming and dead removal)
   13  adjustment of loop forms in the key schedule (the unified FIPS-197
       expansion recurrence)
   14  adjustment of intermediate computations and additional procedure
       splitting in the decryption key schedule *)

open Minispark.Ast
module Ast = Minispark.Ast
module Parser = Minispark.Parser
module H = Refactor.History
module T = Refactor.Transform

let entries = [ "encrypt_block"; "decrypt_block" ]
let trials = 8

(* Certification config for the current [run], when certification was
   requested.  The block scripts funnel every application through [apply],
   so one ref threads the config without changing 50 call sites. *)
let certify_cfg : Refactor.Certify.config option ref = ref None

let apply h tr = ignore (H.apply ~entries ~trials ?certify:!certify_cfg h tr)

(* KAT gate: every block must leave FIPS-197 behaviour intact.  The gate
   interprets full AES blocks, so it gets its own span — without one its
   cost would surface as unattributed refactor-stage self time in the
   profile *)
let check_kats h =
  Telemetry.with_span ~cat:"gate" "kat-gate" (fun () ->
      let env, prog = H.current h in
      if not (Aes_kat.all_pass (Aes_kat.check_program env prog)) then
        failwith "refactoring broke a FIPS-197 known-answer test")

(* ------------------------------------------------------------------ *)
(* helpers for template derivation ("derived from the code", §5.1)     *)
(* ------------------------------------------------------------------ *)

let rename_vars renames stmts =
  let rn_expr =
    Ast.map_expr (function
      | Var x as e -> (
          match List.assoc_opt x renames with Some y -> Var y | None -> e)
      | e -> e)
  in
  let rec rn_lv = function
    | Lvar x -> (
        match List.assoc_opt x renames with Some y -> Lvar y | None -> Lvar x)
    | Lindex (lv, i) -> Lindex (rn_lv lv, rn_expr i)
  in
  Ast.map_stmts
    (fun s ->
      let s = match s with Assign (lv, e) -> Assign (rn_lv lv, e) | s -> s in
      [ Ast.map_own_exprs rn_expr s ])
    stmts

(* replace the (unique) [rk (...)] lookup of the j-th statement by the
   metavariable [kj] *)
let abstract_round_keys stmts =
  List.mapi
    (fun j s ->
      let meta = Printf.sprintf "k%d" j in
      let rw =
        Ast.map_expr (function
          | Index (Var "rk", _) -> Var meta
          | e -> e)
      in
      Ast.map_own_exprs rw s)
    stmts

let sub_body prog name = (Ast.find_sub_exn prog name).sub_body

let slice l ~from ~len = List.filteri (fun k _ -> k >= from && k < from + len) l

let loop_body_at prog name at =
  match List.nth (sub_body prog name) at with
  | For fl -> fl.for_body
  | _ -> failwith "loop_body_at: not a loop"

let state_param name mode = { par_name = name; par_mode = mode; par_typ = Tnamed "state" }
let word_param name = { par_name = name; par_mode = Mode_in; par_typ = Tnamed "word_b" }

let round_params =
  [ state_param "src" Mode_in; state_param "dst" Mode_out;
    word_param "k0"; word_param "k1"; word_param "k2"; word_param "k3" ]

(* ------------------------------------------------------------------ *)
(* block 3 material: S-box constants and GF(2^8) helper functions      *)
(* ------------------------------------------------------------------ *)

let byte_table name (values : int array) =
  Dconst
    {
      k_name = name;
      k_typ = Tarray (0, 255, Tnamed "byte");
      k_value = Aggregate (Array.to_list (Array.map (fun n -> Int_lit n) values));
    }

let xtime_sub =
  match
    Parser.of_string
      {|program p is
         type byte is mod 256;
         function xtime (a : in byte) return byte
         is
         begin
           if a >= 128 then
             return (a * 2) xor 27;
           else
             return a * 2;
           end if;
         end xtime;
        end p;|}
  with
  | prog -> Ast.find_sub_exn prog "xtime"

let gf_mul_sub =
  match
    Parser.of_string
      {|program p is
         type byte is mod 256;
         function xtime (a : in byte) return byte
         is
         begin
           return a;
         end xtime;
         function gf_mul (a : in byte; c : in byte) return byte
         is
           p : byte;
           q : byte;
           r : byte;
         begin
           p := a;
           q := c;
           r := 0;
           for k in 0 .. 7 loop
             if (q and 1) = 1 then
               r := r xor p;
             end if;
             p := xtime (p);
             q := shift_right (q, 1);
           end loop;
           return r;
         end gf_mul;
        end p;|}
  with
  | prog -> Ast.find_sub_exn prog "gf_mul"

let table_helpers =
  [ Dtype ("sbox_table", Tarray (0, 255, Tnamed "byte"));
    byte_table "sbox" Aes_reference.sbox;
    byte_table "inv_sbox" Aes_reference.inv_sbox;
    Dsub xtime_sub;
    Dsub gf_mul_sub ]

let e s = Parser.expr_of_string s

(* replacements for the ten tables, from the documentation (§6.2.1) *)
let table_replacements =
  [ ("te0", "(gf_mul (2, sbox (x)), sbox (x), sbox (x), gf_mul (3, sbox (x)))");
    ("te1", "(gf_mul (3, sbox (x)), gf_mul (2, sbox (x)), sbox (x), sbox (x))");
    ("te2", "(sbox (x), gf_mul (3, sbox (x)), gf_mul (2, sbox (x)), sbox (x))");
    ("te3", "(sbox (x), sbox (x), gf_mul (3, sbox (x)), gf_mul (2, sbox (x)))");
    ("te4", "(sbox (x), sbox (x), sbox (x), sbox (x))");
    ("td0",
     "(gf_mul (14, inv_sbox (x)), gf_mul (9, inv_sbox (x)), gf_mul (13, inv_sbox (x)), gf_mul (11, inv_sbox (x)))");
    ("td1",
     "(gf_mul (11, inv_sbox (x)), gf_mul (14, inv_sbox (x)), gf_mul (9, inv_sbox (x)), gf_mul (13, inv_sbox (x)))");
    ("td2",
     "(gf_mul (13, inv_sbox (x)), gf_mul (11, inv_sbox (x)), gf_mul (14, inv_sbox (x)), gf_mul (9, inv_sbox (x)))");
    ("td3",
     "(gf_mul (9, inv_sbox (x)), gf_mul (13, inv_sbox (x)), gf_mul (11, inv_sbox (x)), gf_mul (14, inv_sbox (x)))");
    ("td4", "(inv_sbox (x), inv_sbox (x), inv_sbox (x), inv_sbox (x))") ]

(* ------------------------------------------------------------------ *)
(* block 7/9/13/14 material: specification-shaped helper subprograms   *)
(* ------------------------------------------------------------------ *)

(* parse subprogram definitions in the context of the evolving program:
   embed them in a skeleton with the same type names *)
let parse_subs src names =
  let wrapped =
    Printf.sprintf
      {|program p is
         type byte is mod 256;
         type word_b is array (0 .. 3) of byte;
         type state is array (0 .. 3) of word_b;
         type block_t is array (0 .. 15) of byte;
         type key_bytes is array (0 .. 31) of byte;
         type sched_t is array (0 .. 59) of word_b;
         type sbox_table is array (0 .. 255) of byte;
         type rcon_t is array (0 .. 9) of word_b;
         type nk_range is range 4 .. 8;
         type nr_range is range 10 .. 14;
         sbox : constant sbox_table := (%s);
         inv_sbox : constant sbox_table := (%s);
         rcon : constant rcon_t := (%s);
         function gf_mul (a : in byte; c : in byte) return byte
         is
         begin
           return a xor c;
         end gf_mul;
         %s
        end p;|}
      (String.concat ", " (List.init 256 (fun i -> string_of_int Aes_reference.sbox.(i))))
      (String.concat ", " (List.init 256 (fun i -> string_of_int Aes_reference.inv_sbox.(i))))
      (String.concat ", "
         (List.init 10 (fun i -> Printf.sprintf "(%d, 0, 0, 0)" Aes_reference.rcon.(i))))
      src
  in
  let prog = Parser.of_string wrapped in
  List.map (Ast.find_sub_exn prog) names

let stage_procs_src =
  {|
  procedure sub_bytes (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      for r in 0 .. 3 loop
        dst (c) (r) := sbox (src (c) (r));
      end loop;
    end loop;
  end sub_bytes;

  procedure inv_sub_bytes (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      for r in 0 .. 3 loop
        dst (c) (r) := inv_sbox (src (c) (r));
      end loop;
    end loop;
  end inv_sub_bytes;

  procedure shift_rows (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      for r in 0 .. 3 loop
        dst (c) (r) := src ((c + r) mod 4) (r);
      end loop;
    end loop;
  end shift_rows;

  procedure inv_shift_rows (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      for r in 0 .. 3 loop
        dst (c) (r) := src (((c - r) + 4) mod 4) (r);
      end loop;
    end loop;
  end inv_shift_rows;

  procedure mix_columns (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      dst (c) (0) := gf_mul (2, src (c) (0)) xor gf_mul (3, src (c) (1)) xor src (c) (2) xor src (c) (3);
      dst (c) (1) := src (c) (0) xor gf_mul (2, src (c) (1)) xor gf_mul (3, src (c) (2)) xor src (c) (3);
      dst (c) (2) := src (c) (0) xor src (c) (1) xor gf_mul (2, src (c) (2)) xor gf_mul (3, src (c) (3));
      dst (c) (3) := gf_mul (3, src (c) (0)) xor src (c) (1) xor src (c) (2) xor gf_mul (2, src (c) (3));
    end loop;
  end mix_columns;

  procedure inv_mix_columns (src : in state; dst : out state)
  is
  begin
    for c in 0 .. 3 loop
      dst (c) (0) := gf_mul (14, src (c) (0)) xor gf_mul (11, src (c) (1)) xor gf_mul (13, src (c) (2)) xor gf_mul (9, src (c) (3));
      dst (c) (1) := gf_mul (9, src (c) (0)) xor gf_mul (14, src (c) (1)) xor gf_mul (11, src (c) (2)) xor gf_mul (13, src (c) (3));
      dst (c) (2) := gf_mul (13, src (c) (0)) xor gf_mul (9, src (c) (1)) xor gf_mul (14, src (c) (2)) xor gf_mul (11, src (c) (3));
      dst (c) (3) := gf_mul (11, src (c) (0)) xor gf_mul (13, src (c) (1)) xor gf_mul (9, src (c) (2)) xor gf_mul (14, src (c) (3));
    end loop;
  end inv_mix_columns;

  procedure add_round_key (src : in state; k0 : in word_b; k1 : in word_b; k2 : in word_b; k3 : in word_b; dst : out state)
  is
  begin
    for r in 0 .. 3 loop
      dst (0) (r) := src (0) (r) xor k0 (r);
    end loop;
    for r in 0 .. 3 loop
      dst (1) (r) := src (1) (r) xor k1 (r);
    end loop;
    for r in 0 .. 3 loop
      dst (2) (r) := src (2) (r) xor k2 (r);
    end loop;
    for r in 0 .. 3 loop
      dst (3) (r) := src (3) (r) xor k3 (r);
    end loop;
  end add_round_key;
|}

let word_helpers_src =
  {|
  function rot_word (w : in word_b) return word_b
  is
  begin
    return (w (1), w (2), w (3), w (0));
  end rot_word;

  function sub_word (w : in word_b) return word_b
  is
  begin
    return (sbox (w (0)), sbox (w (1)), sbox (w (2)), sbox (w (3)));
  end sub_word;

  function xor_word (x : in word_b; y : in word_b) return word_b
  is
  begin
    return (x (0) xor y (0), x (1) xor y (1), x (2) xor y (2), x (3) xor y (3));
  end xor_word;
|}

let inv_mix_word_src =
  {|
  function inv_mix_columns_word (w : in word_b) return word_b
  is
  begin
    return (gf_mul (14, w (0)) xor gf_mul (11, w (1)) xor gf_mul (13, w (2)) xor gf_mul (9, w (3)),
            gf_mul (9, w (0)) xor gf_mul (14, w (1)) xor gf_mul (11, w (2)) xor gf_mul (13, w (3)),
            gf_mul (13, w (0)) xor gf_mul (9, w (1)) xor gf_mul (14, w (2)) xor gf_mul (11, w (3)),
            gf_mul (11, w (0)) xor gf_mul (13, w (1)) xor gf_mul (9, w (2)) xor gf_mul (14, w (3)));
  end inv_mix_columns_word;
|}

let key_expand_body stride total rcon_tail =
  ignore rcon_tail;
  Parser.stmts_of_string
    (Printf.sprintf
       {|
    for i in 0 .. %d loop
      rk (i) := (key (4 * i), key (4 * i + 1), key (4 * i + 2), key (4 * i + 3));
    end loop;
    for i in %d .. %d loop
      if i mod %d = 0 then
        rk (i) := xor_word (rk (i - %d), xor_word (sub_word (rot_word (rk (i - 1))), rcon (i / %d - 1)));
      %s
      else
        rk (i) := xor_word (rk (i - %d), rk (i - 1));
      end if;
    end loop;
|}
       (stride - 1) stride (total - 1) stride stride stride
       (if stride = 8 then
          Printf.sprintf
            "elsif i mod 8 = 4 then rk (i) := xor_word (rk (i - 8), sub_word (rk (i - 1)));"
        else "")
       stride)

(* ------------------------------------------------------------------ *)
(* the blocks                                                          *)
(* ------------------------------------------------------------------ *)

type block = {
  b_index : int;
  b_title : string;
  b_touches : string list;
      (** declarations the block adds, modifies or removes; ["*"] =
          potentially everything *)
  b_reads : string list;  (** declarations read but left unchanged *)
  b_run : H.t -> unit;
}

let block1 h =
  apply h (Refactor.Reroll.reroll ~proc:"encrypt" ~from:4 ~group_len:8 ~count:4 ~var:"r");
  apply h (Refactor.Reroll.reroll ~proc:"decrypt" ~from:4 ~group_len:8 ~count:4 ~var:"r")

let block2 h =
  let plan =
    {
      Refactor.Data_structures.word_type = "word";
      byte_name = "byte";
      vec_name = "word_b";
      array_types =
        [ ("block_t", Refactor.Data_structures.To_byte);
          ("key_bytes", Refactor.Data_structures.To_byte);
          ("sched_t", Refactor.Data_structures.To_vec);
          ("word_table", Refactor.Data_structures.To_vec);
          ("rcon_t", Refactor.Data_structures.To_vec) ];
    }
  in
  apply h (Refactor.Data_structures.word_to_bytes ~plan ())

let block3 h =
  List.iteri
    (fun k (table, replacement) ->
      let helpers = if k = 0 then table_helpers else [] in
      apply h
        (Refactor.Table_reverse.reverse ~table ~index_var:"x"
           ~replacement:(e replacement) ~helpers ()))
    table_replacements

let block4 h =
  apply h
    (Refactor.Rewrite_body.add_decls
       ~decls:[ Dtype ("state", Tarray (0, 3, Tnamed "word_b")) ]
       ~anchor:"key_setup_enc");
  List.iter
    (fun (proc, vars, name) ->
      apply h
        (Refactor.Data_structures.group_vars ~proc ~vars ~array_name:name
           ~elem_type:(Tnamed "word_b") ~array_typ:(Tnamed "state") ()))
    [ ("encrypt", [ "s0"; "s1"; "s2"; "s3" ], "s");
      ("encrypt", [ "t0"; "t1"; "t2"; "t3" ], "t");
      ("decrypt", [ "s0"; "s1"; "s2"; "s3" ], "s");
      ("decrypt", [ "t0"; "t1"; "t2"; "t3" ], "t") ]

let derive_templates prog proc =
  (* round template: first 4 statements of the round loop, abstracted *)
  let loop_body = loop_body_at prog proc 4 in
  let round =
    slice loop_body ~from:0 ~len:4
    |> rename_vars [ ("s", "src"); ("t", "dst") ]
    |> abstract_round_keys
  in
  (* final-round template: statements 11..14 (after pack 0..3, loop 4,
     guards 5..6, last round 7..10) *)
  let final =
    slice (sub_body prog proc) ~from:11 ~len:4
    |> rename_vars [ ("t", "src"); ("s", "dst") ]
    |> abstract_round_keys
  in
  (round, final)

let block5 h =
  let _, prog = H.current h in
  let enc_round, enc_final = derive_templates prog "encrypt" in
  let _, prog = H.current h in
  let dec_round, dec_final = derive_templates prog "decrypt" in
  apply h
    (Refactor.Inline_reverse.extract_procedure ~name:"enc_round" ~params:round_params
       ~template:enc_round ~min_occurrences:3 ());
  apply h
    (Refactor.Inline_reverse.extract_procedure ~name:"enc_final_round"
       ~params:round_params ~template:enc_final ~min_occurrences:1 ());
  apply h
    (Refactor.Inline_reverse.extract_procedure ~name:"dec_round" ~params:round_params
       ~template:dec_round ~min_occurrences:3 ());
  apply h
    (Refactor.Inline_reverse.extract_procedure ~name:"dec_final_round"
       ~params:round_params ~template:dec_final ~min_occurrences:1 ())

let block6 h =
  (* distribute the four packing statements into the key-size conditional *)
  List.iter
    (fun at -> apply h (Refactor.Conditional_motion.move_into ~proc:"key_setup_enc" ~at))
    [ 3; 2; 1; 0 ];
  (* split the three execution paths into procedures, bodies taken from the
     current code *)
  let _, prog = H.current h in
  let branches =
    match sub_body prog "key_setup_enc" with
    | [ If (branches, _) ] -> List.map snd branches
    | _ -> failwith "block6: unexpected key_setup_enc shape"
  in
  let not_nr = function Assign (Lvar "nr", _) -> false | _ -> true in
  let path_proc name body =
    {
      sub_name = name;
      sub_params =
        [ { par_name = "key"; par_mode = Mode_in; par_typ = Tnamed "key_bytes" };
          { par_name = "rk"; par_mode = Mode_out; par_typ = Tnamed "sched_t" } ];
      sub_return = None;
      sub_pre = None;
      sub_post = None;
      sub_locals = [ { v_name = "temp"; v_typ = Tnamed "word_b"; v_init = None } ];
      sub_body = List.filter not_nr body;
    }
  in
  let defs =
    List.map2 path_proc
      [ "key_expand_128"; "key_expand_192"; "key_expand_256" ]
      branches
  in
  apply h (Refactor.Rewrite_body.add_subprograms ~defs ~anchor:"key_setup_enc");
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_setup_enc"
       ~new_locals:[]
       ~body:
         (Parser.stmts_of_string
            {|
    if nk = 4 then
      key_expand_128 (key, rk);
      nr := 10;
    elsif nk = 6 then
      key_expand_192 (key, rk);
      nr := 12;
    elsif nk = 8 then
      key_expand_256 (key, rk);
      nr := 14;
    end if;
|})
       ())

let block7 h =
  let word_helpers = parse_subs word_helpers_src [ "rot_word"; "sub_word"; "xor_word" ] in
  apply h
    (Refactor.Rewrite_body.add_subprograms ~defs:word_helpers ~anchor:"key_expand_128");
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_expand_128" ~new_locals:[]
       ~body:(key_expand_body 4 44 10) ());
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_expand_192" ~new_locals:[]
       ~body:(key_expand_body 6 52 8) ());
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_expand_256" ~new_locals:[]
       ~body:(key_expand_body 8 60 7) ())

let block8 h =
  let new_hi = e "(nr - 10) / 2 + 3" in
  let domain = [ ("nr", [ 10; 12; 14 ]) ] in
  apply h
    (Refactor.Loop_forms.absorb_guarded_tail ~proc:"encrypt" ~at:4 ~tail_count:2 ~new_hi
       ~domain);
  apply h
    (Refactor.Loop_forms.absorb_guarded_tail ~proc:"decrypt" ~at:4 ~tail_count:2 ~new_hi
       ~domain)

let block9 h =
  let stages =
    parse_subs stage_procs_src
      [ "sub_bytes"; "inv_sub_bytes"; "shift_rows"; "inv_shift_rows"; "mix_columns";
        "inv_mix_columns"; "add_round_key" ]
  in
  apply h (Refactor.Rewrite_body.add_subprograms ~defs:stages ~anchor:"enc_round");
  let state_locals =
    [ { v_name = "u1"; v_typ = Tnamed "state"; v_init = None };
      { v_name = "u2"; v_typ = Tnamed "state"; v_init = None };
      { v_name = "u3"; v_typ = Tnamed "state"; v_init = None } ]
  in
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"enc_round" ~new_locals:state_locals
       ~body:
         (Parser.stmts_of_string
            {|
    sub_bytes (src, u1);
    shift_rows (u1, u2);
    mix_columns (u2, u3);
    add_round_key (u3, k0, k1, k2, k3, dst);
|})
       ());
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"enc_final_round" ~new_locals:state_locals
       ~body:
         (Parser.stmts_of_string
            {|
    sub_bytes (src, u1);
    shift_rows (u1, u2);
    add_round_key (u2, k0, k1, k2, k3, dst);
|})
       ());
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"dec_round" ~new_locals:state_locals
       ~body:
         (Parser.stmts_of_string
            {|
    inv_shift_rows (src, u1);
    inv_sub_bytes (u1, u2);
    inv_mix_columns (u2, u3);
    add_round_key (u3, k0, k1, k2, k3, dst);
|})
       ());
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"dec_final_round" ~new_locals:state_locals
       ~body:
         (Parser.stmts_of_string
            {|
    inv_shift_rows (src, u1);
    inv_sub_bytes (u1, u2);
    add_round_key (u2, k0, k1, k2, k3, dst);
|})
       ())

let block10 h =
  (* pack statements 0..3 and the 16 unpack statements of both directions *)
  List.iter
    (fun proc ->
      apply h (Refactor.Reroll.reroll ~proc ~from:0 ~group_len:1 ~count:4 ~var:"c");
      (* after packing is rerolled the body is:
         0 pack-loop, 1 round-loop, 2 enc_round, 3 final, 4.. unpack *)
      apply h (Refactor.Reroll.reroll ~proc ~from:4 ~group_len:4 ~count:4 ~var:"c"))
    [ "encrypt"; "decrypt" ]

let block11 h =
  List.iter
    (fun (proc, load, store) ->
      apply h (Refactor.Split_procedure.split ~proc ~from:0 ~len:1 ~new_name:load);
      apply h (Refactor.Split_procedure.split ~proc ~from:4 ~len:1 ~new_name:store))
    [ ("encrypt", "load_block_enc", "store_block_enc");
      ("decrypt", "load_block_dec", "store_block_dec") ]

let block12 h =
  apply h (Refactor.Storage_adjust.remove_unused_decl ~name:"word");
  apply h (Refactor.Storage_adjust.rename_type ~from_name:"word_b" ~to_name:"word");
  apply h (Refactor.Storage_adjust.remove_unused_decl ~name:"word_table")

let block13 h =
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_setup_enc" ~new_locals:[]
       ~body:
         (Parser.stmts_of_string
            {|
    nr := nk + 6;
    for i in 0 .. nk - 1 loop
      rk (i) := (key (4 * i), key (4 * i + 1), key (4 * i + 2), key (4 * i + 3));
    end loop;
    for i in nk .. 4 * nr + 3 loop
      if i mod nk = 0 then
        rk (i) := xor_word (rk (i - nk), xor_word (sub_word (rot_word (rk (i - 1))), rcon (i / nk - 1)));
      elsif nk > 6 and (i mod nk) = 4 then
        rk (i) := xor_word (rk (i - nk), sub_word (rk (i - 1)));
      else
        rk (i) := xor_word (rk (i - nk), rk (i - 1));
      end if;
    end loop;
|})
       ());
  apply h (Refactor.Storage_adjust.remove_unused_decl ~name:"key_expand_128");
  apply h (Refactor.Storage_adjust.remove_unused_decl ~name:"key_expand_192");
  apply h (Refactor.Storage_adjust.remove_unused_decl ~name:"key_expand_256");
  apply h (Refactor.Storage_adjust.rename_sub ~from_name:"key_setup_enc" ~to_name:"key_expansion")

(* by block 14 the 4-byte vector type has been renamed word_b -> word *)
let retype_subs renames subs =
  let rec rn = function
    | Tnamed n -> (
        match List.assoc_opt n renames with Some m -> Tnamed m | None -> Tnamed n)
    | Tarray (lo, hi, elt) -> Tarray (lo, hi, rn elt)
    | t -> t
  in
  List.map
    (fun sub ->
      {
        sub with
        sub_params =
          List.map (fun (p : param) -> { p with par_typ = rn p.par_typ }) sub.sub_params;
        sub_locals =
          List.map (fun (v : var_decl) -> { v with v_typ = rn v.v_typ }) sub.sub_locals;
        sub_return = Option.map rn sub.sub_return;
      })
    subs

let block14 h =
  let helper =
    retype_subs [ ("word_b", "word") ] (parse_subs inv_mix_word_src [ "inv_mix_columns_word" ])
  in
  apply h (Refactor.Rewrite_body.add_subprograms ~defs:helper ~anchor:"key_setup_dec");
  apply h
    (Refactor.Rewrite_body.replace_body ~proc:"key_setup_dec"
       ~new_locals:[ { v_name = "temp"; v_typ = Tnamed "word"; v_init = None } ]
       ~body:
         (Parser.stmts_of_string
            {|
    key_expansion (key, nk, rk, nr);
    for r in 0 .. (nr - 1) / 2 loop
      for c in 0 .. 3 loop
        temp := rk (4 * r + c);
        rk (4 * r + c) := rk (4 * (nr - r) + c);
        rk (4 * (nr - r) + c) := temp;
      end loop;
    end loop;
    for r in 1 .. nr - 1 loop
      for c in 0 .. 3 loop
        rk (4 * r + c) := inv_mix_columns_word (rk (4 * r + c));
      end loop;
    end loop;
|})
       ());
  apply h
    (Refactor.Split_procedure.split ~proc:"key_setup_dec" ~from:1 ~len:1
       ~new_name:"invert_key_order");
  apply h
    (Refactor.Split_procedure.split ~proc:"key_setup_dec" ~from:2 ~len:1
       ~new_name:"apply_inv_mix_columns")

(* Declared footprints drive {!Refactor.Parblocks.plan}: blocks whose
   touches/reads are mutually disjoint run on parallel domains.  ["*"]
   means "potentially everything" (type restructurings, program-wide table
   reversal, program-wide clone scans) and is never grouped. *)
let blocks =
  [ { b_index = 1; b_title = "loop rerolling for the major encrypt/decrypt loops";
      b_touches = [ "encrypt"; "decrypt" ]; b_reads = [];
      b_run = block1 };
    { b_index = 2; b_title = "reversal of word packing";
      b_touches = [ "*" ]; b_reads = [];
      b_run = block2 };
    { b_index = 3; b_title = "reversal of table lookups";
      b_touches = [ "*" ]; b_reads = [];
      b_run = block3 };
    { b_index = 4; b_title = "packing four words into a state";
      b_touches = [ "state"; "encrypt"; "decrypt" ];
      b_reads = [ "word_b"; "key_setup_enc" ];
      b_run = block4 };
    { b_index = 5; b_title = "reversal of the inlining of the round functions";
      b_touches =
        [ "encrypt"; "decrypt"; "enc_round"; "enc_final_round"; "dec_round";
          "dec_final_round" ];
      b_reads = [ "*" ]  (* the clone scan walks every subprogram body *);
      b_run = block5 };
    { b_index = 6; b_title = "revealing the three key-size paths; procedure splitting";
      b_touches =
        [ "key_setup_enc"; "key_expand_128"; "key_expand_192"; "key_expand_256" ];
      b_reads = [ "key_bytes"; "sched_t"; "word_b" ];
      b_run = block6 };
    { b_index = 7; b_title = "reversal of the inlining of key-expansion helpers";
      b_touches =
        [ "rot_word"; "sub_word"; "xor_word"; "key_expand_128"; "key_expand_192";
          "key_expand_256" ];
      b_reads = [ "rcon"; "sbox"; "byte"; "word_b"; "key_bytes"; "sched_t" ];
      b_run = block7 };
    { b_index = 8; b_title = "adjustment of loop forms (guarded rounds absorbed)";
      b_touches = [ "encrypt"; "decrypt" ]; b_reads = [];
      b_run = block8 };
    { b_index = 9; b_title = "reversal of additional inlined functions (round stages)";
      b_touches =
        [ "sub_bytes"; "inv_sub_bytes"; "shift_rows"; "inv_shift_rows";
          "mix_columns"; "inv_mix_columns"; "add_round_key"; "enc_round";
          "enc_final_round"; "dec_round"; "dec_final_round" ];
      b_reads = [ "sbox"; "inv_sbox"; "gf_mul"; "state"; "word_b"; "byte" ];
      b_run = block9 };
    { b_index = 10; b_title = "loop rerolling for sequential state updates";
      b_touches = [ "encrypt"; "decrypt" ]; b_reads = [];
      b_run = block10 };
    { b_index = 11; b_title = "procedure splitting (block load/store)";
      b_touches =
        [ "encrypt"; "decrypt"; "load_block_enc"; "store_block_enc";
          "load_block_dec"; "store_block_dec" ];
      b_reads = [];
      b_run = block11 };
    { b_index = 12; b_title = "adjustment of intermediate storage";
      b_touches = [ "*" ]  (* word_b -> word retypes every declaration *);
      b_reads = [];
      b_run = block12 };
    { b_index = 13; b_title = "adjustment of loop forms in the key schedule";
      b_touches =
        [ "key_setup_enc"; "key_expansion"; "key_expand_128"; "key_expand_192";
          "key_expand_256" ];
      b_reads =
        [ "rot_word"; "sub_word"; "xor_word"; "rcon"; "word"; "key_bytes";
          "sched_t" ];
      b_run = block13 };
    { b_index = 14; b_title = "decryption key schedule adjustments and splitting";
      b_touches =
        [ "key_setup_dec"; "inv_mix_columns_word"; "invert_key_order";
          "apply_inv_mix_columns" ];
      b_reads = [ "key_expansion"; "gf_mul"; "word"; "key_bytes"; "sched_t" ];
      b_run = block14 } ]

type snapshot = {
  sn_block : int;       (** 0 = the original optimized program *)
  sn_title : string;
  sn_env : Minispark.Typecheck.env;
  sn_program : Ast.program;
}

(** Run the refactoring through block [upto] (default: all 14), validating
    FIPS-197 vectors after every block (disable with [kat_gate:false] for
    the seeded-defect experiment, where the vectors are not part of the
    Echo process).  [start] overrides the initial program (defaults to the
    pristine optimized implementation).  Returns the per-block snapshots
    (block 0 first) and the history. *)
let run ?(upto = 14) ?(kat_gate = true) ?certify ?start () =
  let env0, prog0 = match start with Some ep -> ep | None -> Aes_impl.checked () in
  let h = H.create env0 prog0 in
  let snapshots =
    ref [ { sn_block = 0; sn_title = "original optimized implementation";
            sn_env = env0; sn_program = prog0 } ]
  in
  certify_cfg := certify;
  Fun.protect ~finally:(fun () -> certify_cfg := None) (fun () ->
      List.iter
        (fun b ->
          if b.b_index <= upto then begin
            b.b_run h;
            if kat_gate then check_kats h;
            let env, prog = H.current h in
            snapshots :=
              { sn_block = b.b_index; sn_title = b.b_title; sn_env = env; sn_program = prog }
              :: !snapshots
          end)
        blocks);
  (List.rev !snapshots, h)

let block_specs ?(upto = 14) () =
  List.filter_map
    (fun b ->
      if b.b_index > upto then None
      else
        Some
          {
            Refactor.Parblocks.pb_index = b.b_index;
            pb_title = b.b_title;
            pb_touches = b.b_touches;
            pb_reads = b.b_reads;
            pb_run = b.b_run;
          })
    blocks

(** Like {!run}, but blocks with disjoint declared footprints run on
    parallel domains ({!Refactor.Parblocks}); snapshots, history,
    certificates and KAT verdicts are bit-identical to {!run}'s. *)
let run_parallel ?(upto = 14) ?jobs ?(kat_gate = true) ?certify ?start () =
  let env0, prog0 = match start with Some ep -> ep | None -> Aes_impl.checked () in
  let h = H.create env0 prog0 in
  let snapshots =
    ref [ { sn_block = 0; sn_title = "original optimized implementation";
            sn_env = env0; sn_program = prog0 } ]
  in
  certify_cfg := certify;
  Fun.protect ~finally:(fun () -> certify_cfg := None) (fun () ->
      Refactor.Parblocks.run ?jobs
        ~on_block:(fun spec h ->
          if kat_gate then check_kats h;
          let env, prog = H.current h in
          snapshots :=
            { sn_block = spec.Refactor.Parblocks.pb_index;
              sn_title = spec.Refactor.Parblocks.pb_title; sn_env = env;
              sn_program = prog }
            :: !snapshots)
        h
        (block_specs ~upto ()));
  (List.rev !snapshots, h)
