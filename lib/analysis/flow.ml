open Minispark
module SSet = Set.Make (String)

module D = struct
  type t = SSet.t

  let join = SSet.union
  let widen = SSet.union
  let equal = SSet.equal
end

module DF = Dataflow.Make (D)

let vars_of e = SSet.of_list (Ast.expr_vars e)

let vars_of_list es =
  List.fold_left (fun acc e -> SSet.union acc (vars_of e)) SSet.empty es

(* Index expressions appearing inside an lvalue (reads even when the
   lvalue as a whole is written). *)
let lvalue_index_vars lv =
  let acc = ref SSet.empty in
  Ast.iter_lvalue_exprs
    (fun e -> acc := SSet.union !acc (vars_of e))
    lv;
  !acc

(* Positions (0-based) of out / in-out parameters of each callee. *)
let out_positions program =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (sub : Ast.subprogram) ->
      let ps =
        List.mapi (fun i (p : Ast.param) -> (i, p.Ast.par_mode)) sub.Ast.sub_params
      in
      let outs =
        List.filter_map
          (fun (i, m) ->
            match m with
            | Ast.Mode_out | Ast.Mode_in_out -> Some i
            | Ast.Mode_in -> None)
          ps
      in
      Hashtbl.replace tbl sub.Ast.sub_name outs)
    (Ast.subprograms program);
  fun name -> try Hashtbl.find tbl name with Not_found -> []

(* The base variable of an actual passed in a writable position: actuals
   are normalised lvalue-shaped expressions ([Var] or nested [Index]). *)
let rec actual_base (e : Ast.expr) =
  match e with
  | Ast.Var x -> Some x
  | Ast.Index (a, _) -> actual_base a
  | _ -> None

let rec actual_index_vars (e : Ast.expr) =
  match e with
  | Ast.Var _ -> SSet.empty
  | Ast.Index (a, i) -> SSet.union (actual_index_vars a) (vars_of i)
  | _ -> vars_of e

(* Split a call's argument effects: full reads for [in] actuals, index
   reads + base writes for out / in-out actuals. *)
let call_effects program f args =
  match Ast.find_sub program f with
  | None -> (vars_of_list args, SSet.empty)
  | Some callee ->
      let modes = List.map (fun (p : Ast.param) -> p.Ast.par_mode) callee.Ast.sub_params in
      let rec go reads writes modes args =
        match (modes, args) with
        | [], rest -> (SSet.union reads (vars_of_list rest), writes)
        | _, [] -> (reads, writes)
        | m :: ms, a :: rest -> (
            match m with
            | Ast.Mode_in -> go (SSet.union reads (vars_of a)) writes ms rest
            | Ast.Mode_out | Ast.Mode_in_out ->
                let reads = SSet.union reads (actual_index_vars a) in
                let writes =
                  match actual_base a with
                  | Some b -> SSet.add b writes
                  | None -> writes
                in
                go reads writes ms rest)
      in
      go SSet.empty SSet.empty modes args

(* ------------------------------------------------------------------ *)
(* Definite initialization + unreachable code (forward)                *)
(* ------------------------------------------------------------------ *)

let init_and_reachability program (sub : Ast.subprogram) =
  let diags = ref [] in
  let flagged_uninit = Hashtbl.create 4 in
  let flagged_unreach = Hashtbl.create 4 in
  let cur_stmt = ref None in
  (* variables whose initialization we track: locals and out params *)
  let tracked =
    SSet.union
      (SSet.of_list (List.map (fun v -> v.Ast.v_name) sub.Ast.sub_locals))
      (SSet.of_list
         (List.filter_map
            (fun (p : Ast.param) ->
              if p.Ast.par_mode = Ast.Mode_out then Some p.Ast.par_name else None)
            sub.Ast.sub_params))
  in
  let initial =
    let params =
      List.filter_map
        (fun (p : Ast.param) ->
          match p.Ast.par_mode with
          | Ast.Mode_in | Ast.Mode_in_out -> Some p.Ast.par_name
          | Ast.Mode_out -> None)
        sub.Ast.sub_params
    in
    let inited_locals =
      List.filter_map
        (fun (v : Ast.var_decl) ->
          if v.Ast.v_init <> None then Some v.Ast.v_name else None)
        sub.Ast.sub_locals
    in
    let globals = List.map (fun v -> v.Ast.v_name) (Ast.global_vars program) in
    let consts = List.map (fun c -> c.Ast.k_name) (Ast.constants program) in
    SSet.of_list (params @ inited_locals @ globals @ consts)
  in
  let report_reads state vs =
    SSet.iter
      (fun x ->
        if SSet.mem x tracked && (not (SSet.mem x state))
           && not (Hashtbl.mem flagged_uninit x)
        then begin
          Hashtbl.replace flagged_uninit x ();
          let line =
            match !cur_stmt with
            | Some st -> Diag.anchor program ~sub:sub.Ast.sub_name st
            | None -> 0
          in
          diags :=
            Diag.make ~sub:sub.Ast.sub_name ~line Diag.FLOW_UNINIT
              (Printf.sprintf "'%s' may be read before it is ever assigned" x)
            :: !diags
        end)
      vs
  in
  let atomic state (stmt : Ast.stmt) =
    match stmt with
    | Ast.Null -> state
    | Ast.Assert _ -> state (* annotation: not executed *)
    | Ast.Assign (lv, e) ->
        report_reads state (SSet.union (vars_of e) (lvalue_index_vars lv));
        SSet.add (Ast.lvalue_base lv) state
    | Ast.Call_stmt (f, args) ->
        let reads, writes = call_effects program f args in
        report_reads state reads;
        SSet.union state writes
    | Ast.Return (Some e) ->
        report_reads state (vars_of e);
        state
    | Ast.Return None -> state
    | Ast.If _ | Ast.For _ | Ast.While _ -> state
  in
  let guard state e =
    report_reads state (vars_of e);
    state
  in
  let enter_for state (fl : Ast.for_loop) = SSet.add fl.Ast.for_var state in
  let exit_for state (fl : Ast.for_loop) = SSet.remove fl.Ast.for_var state in
  let observe state (stmt : Ast.stmt) =
    (match state with Some _ -> cur_stmt := Some stmt | None -> ());
    match state with
    | Some _ -> ()
    | None ->
        let key = Pretty.stmts_to_string [ stmt ] in
        if not (Hashtbl.mem flagged_unreach key) then begin
          Hashtbl.replace flagged_unreach key ();
          let line = Diag.anchor program ~sub:sub.Ast.sub_name stmt in
          diags :=
            Diag.make ~sub:sub.Ast.sub_name ~line Diag.FLOW_UNREACHABLE
              "statement is unreachable: every path has already returned"
            :: !diags
        end
  in
  let hooks = { DF.atomic; guard; enter_for; exit_for; observe } in
  let (_ : SSet.t option) = DF.exec hooks initial sub.Ast.sub_body in
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Out parameter never assigned                                        *)
(* ------------------------------------------------------------------ *)

let out_unset program (sub : Ast.subprogram) =
  let written =
    SSet.of_list
      (Ast.written_vars ~out_params_of:(out_positions program) sub.Ast.sub_body)
  in
  List.filter_map
    (fun (p : Ast.param) ->
      if p.Ast.par_mode = Ast.Mode_out && not (SSet.mem p.Ast.par_name written)
      then
        Some
          (Diag.make ~sub:sub.Ast.sub_name Diag.FLOW_OUT_UNSET
             (Printf.sprintf "out parameter '%s' is never assigned"
                p.Ast.par_name))
      else None)
    sub.Ast.sub_params

(* ------------------------------------------------------------------ *)
(* Ineffective assignments (backward liveness)                         *)
(* ------------------------------------------------------------------ *)

let ineffective program (sub : Ast.subprogram) =
  let diags = ref [] in
  let locals = List.map (fun v -> v.Ast.v_name) sub.Ast.sub_locals in
  let param_names = List.map (fun (p : Ast.param) -> p.Ast.par_name) sub.Ast.sub_params in
  let assignable = SSet.of_list (locals @ param_names) in
  let exit_live =
    (* out and in-out parameters and globals survive the subprogram *)
    let outs =
      List.filter_map
        (fun (p : Ast.param) ->
          match p.Ast.par_mode with
          | Ast.Mode_out | Ast.Mode_in_out -> Some p.Ast.par_name
          | Ast.Mode_in -> None)
        sub.Ast.sub_params
    in
    let globals = List.map (fun v -> v.Ast.v_name) (Ast.global_vars program) in
    SSet.of_list (outs @ globals)
  in
  let rec live_stmts ~emit live stmts =
    List.fold_right (fun stmt live -> live_stmt ~emit live stmt) stmts live
  and live_stmt ~emit live (stmt : Ast.stmt) =
    match stmt with
    | Ast.Null -> live
    | Ast.Assert e -> SSet.union live (vars_of e)
    | Ast.Assign (Ast.Lvar x, e) ->
        if emit && SSet.mem x assignable && not (SSet.mem x live) then
          diags :=
            Diag.make ~sub:sub.Ast.sub_name
              ~line:(Diag.anchor program ~sub:sub.Ast.sub_name stmt)
              Diag.FLOW_INEFFECTIVE
              (Printf.sprintf
                 "assignment to '%s' is ineffective: the value is never used" x)
            :: !diags;
        SSet.union (SSet.remove x live) (vars_of e)
    | Ast.Assign (lv, e) ->
        (* element write: a partial update, the rest of the array flows on *)
        SSet.union live
          (SSet.add (Ast.lvalue_base lv)
             (SSet.union (vars_of e) (lvalue_index_vars lv)))
    | Ast.Return (Some e) -> SSet.union exit_live (vars_of e)
    | Ast.Return None -> exit_live
    | Ast.Call_stmt (f, args) -> (
        match Ast.find_sub program f with
        | None -> SSet.union live (vars_of_list args)
        | Some callee ->
            let modes =
              List.map (fun (p : Ast.param) -> p.Ast.par_mode) callee.Ast.sub_params
            in
            let rec go live modes args =
              match (modes, args) with
              | [], rest -> SSet.union live (vars_of_list rest)
              | _, [] -> live
              | m :: ms, a :: rest -> (
                  let live = go live ms rest in
                  match m with
                  | Ast.Mode_in -> SSet.union live (vars_of a)
                  | Ast.Mode_out -> (
                      let live = SSet.union live (actual_index_vars a) in
                      match a with
                      | Ast.Var x -> SSet.remove x live
                      | _ -> live (* element actual: partial write *))
                  | Ast.Mode_in_out ->
                      SSet.union live
                        (match actual_base a with
                        | Some b -> SSet.add b (actual_index_vars a)
                        | None -> actual_index_vars a))
            in
            go live modes args)
    | Ast.If (branches, els) ->
        let live_branches =
          List.map
            (fun (g, body) -> SSet.union (vars_of g) (live_stmts ~emit live body))
            branches
        in
        let live_else = live_stmts ~emit live els in
        let guards = vars_of_list (List.map fst branches) in
        SSet.union guards (List.fold_left SSet.union live_else live_branches)
    | Ast.For fl ->
        let bounds = SSet.union (vars_of fl.Ast.for_lo) (vars_of fl.Ast.for_hi) in
        let invs = vars_of_list fl.Ast.for_invariants in
        let rec fix acc =
          let acc' = SSet.union acc (live_stmts ~emit:false acc fl.Ast.for_body) in
          if SSet.equal acc acc' then acc else fix acc'
        in
        let stable = fix (SSet.union live invs) in
        let entry = live_stmts ~emit stable fl.Ast.for_body in
        let entry = SSet.remove fl.Ast.for_var (SSet.union stable entry) in
        SSet.union entry bounds
    | Ast.While wl ->
        let cond = vars_of wl.Ast.while_cond in
        let invs = vars_of_list wl.Ast.while_invariants in
        let rec fix acc =
          let acc' =
            SSet.union acc (live_stmts ~emit:false acc wl.Ast.while_body)
          in
          if SSet.equal acc acc' then acc else fix acc'
        in
        let stable = fix (SSet.union live (SSet.union cond invs)) in
        let entry = live_stmts ~emit stable wl.Ast.while_body in
        SSet.union (SSet.union stable entry) cond
  in
  let entry = live_stmts ~emit:true exit_live sub.Ast.sub_body in
  (* declaration initializers are assignments too: fold them backward
     from the body's entry liveness (a later local's initializer may read
     an earlier one).  A never-referenced local is FLOW_UNUSED territory,
     not a dead store on top. *)
  let referenced =
    SSet.union
      (SSet.of_list (Ast.read_vars sub.Ast.sub_body))
      (SSet.of_list
         (Ast.written_vars ~out_params_of:(out_positions program)
            sub.Ast.sub_body))
  in
  let live = ref entry in
  let dead_inits =
    List.fold_right
      (fun (v : Ast.var_decl) acc ->
        match v.Ast.v_init with
        | None -> acc
        | Some e ->
            let is_dead = not (SSet.mem v.Ast.v_name !live) in
            live := SSet.union (SSet.remove v.Ast.v_name !live) (vars_of e);
            if is_dead && SSet.mem v.Ast.v_name referenced then
              Diag.make ~sub:sub.Ast.sub_name Diag.FLOW_DEAD_INIT
                (Printf.sprintf
                   "initializer of '%s' is dead: the value is overwritten \
                    before any read"
                   v.Ast.v_name)
              :: acc
            else acc)
      sub.Ast.sub_locals []
  in
  List.rev !diags @ dead_inits

(* ------------------------------------------------------------------ *)
(* Unused locals and parameters                                        *)
(* ------------------------------------------------------------------ *)

let unused program (sub : Ast.subprogram) ~out_unset_names =
  let used =
    let reads = SSet.of_list (Ast.read_vars sub.Ast.sub_body) in
    let writes =
      SSet.of_list
        (Ast.written_vars ~out_params_of:(out_positions program)
           sub.Ast.sub_body)
    in
    let annots =
      vars_of_list
        (Option.to_list sub.Ast.sub_pre @ Option.to_list sub.Ast.sub_post)
    in
    SSet.union reads (SSet.union writes annots)
  in
  let check_name kind name =
    if SSet.mem name used || SSet.mem name out_unset_names then None
    else
      Some
        (Diag.make ~sub:sub.Ast.sub_name Diag.FLOW_UNUSED
           (Printf.sprintf "%s '%s' is never referenced" kind name))
  in
  List.filter_map
    (fun (p : Ast.param) -> check_name "parameter" p.Ast.par_name)
    sub.Ast.sub_params
  @ List.filter_map
      (fun (v : Ast.var_decl) -> check_name "local" v.Ast.v_name)
      sub.Ast.sub_locals

(* ------------------------------------------------------------------ *)
(* Stable While conditions                                             *)
(* ------------------------------------------------------------------ *)

let stable_conditions program (sub : Ast.subprogram) =
  let opo = out_positions program in
  let diags = ref [] in
  Ast.iter_stmts
    (fun stmt ->
      match stmt with
      | Ast.While wl ->
          let cond_vars = vars_of wl.Ast.while_cond in
          let written =
            SSet.of_list (Ast.written_vars ~out_params_of:opo wl.Ast.while_body)
          in
          if SSet.is_empty (SSet.inter cond_vars written) then
            diags :=
              Diag.make ~sub:sub.Ast.sub_name
                ~line:(Diag.anchor program ~sub:sub.Ast.sub_name stmt)
                Diag.FLOW_STABLE_COND
                (Printf.sprintf
                   "while condition '%s' is stable: the loop body writes none \
                    of its variables"
                   (Pretty.expr_to_string wl.Ast.while_cond))
              :: !diags
      | _ -> ())
    sub.Ast.sub_body;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Unused program-level declarations                                   *)
(* ------------------------------------------------------------------ *)

(* A constant or global variable in no subprogram's declaration frontier.
   {!Depgraph.decl_refs} is transitively closed, so a constant kept alive
   only through another live declaration is not flagged. *)
let unused_globals program =
  let g = Depgraph.build program in
  let used =
    List.fold_left
      (fun acc s -> SSet.union acc (SSet.of_list (Depgraph.decl_refs g s)))
      SSet.empty (Depgraph.subs g)
  in
  let flag kind name =
    if SSet.mem name used then None
    else
      Some
        (Diag.make Diag.FLOW_UNUSED_GLOBAL
           (Printf.sprintf "%s '%s' is referenced by no subprogram" kind name))
  in
  List.filter_map (fun (c : Ast.const_decl) -> flag "constant" c.Ast.k_name)
    (Ast.constants program)
  @ List.filter_map
      (fun (v : Ast.var_decl) -> flag "global variable" v.Ast.v_name)
      (Ast.global_vars program)

(* ------------------------------------------------------------------ *)

let check_sub program (sub : Ast.subprogram) =
  let unset = out_unset program sub in
  (* names already reported as OUT_UNSET: suppress the redundant
     FLOW_UNUSED for the same parameter *)
  let unset_names =
    let written =
      SSet.of_list
        (Ast.written_vars ~out_params_of:(out_positions program)
           sub.Ast.sub_body)
    in
    SSet.of_list
      (List.filter_map
         (fun (p : Ast.param) ->
           if p.Ast.par_mode = Ast.Mode_out && not (SSet.mem p.Ast.par_name written)
           then Some p.Ast.par_name
           else None)
         sub.Ast.sub_params)
  in
  init_and_reachability program sub
  @ unset
  @ ineffective program sub
  @ unused program sub ~out_unset_names:unset_names
  @ stable_conditions program sub

let check program =
  unused_globals program
  @ List.concat_map (check_sub program) (Ast.subprograms program)
