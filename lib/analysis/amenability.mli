(** Amenability lint: is this program shaped for the paper's
    fix-by-refactoring workflow, and which {!Refactor} transformation
    applies where?

    Four informational findings, extending the {!Metrics} §5.2 guidance
    hybrid with structural pattern detection:

    - [AMEN_REROLL]: a run of unrolled loop iterations
      ({!Refactor.Reroll.suggest} fires) — [Reroll.reroll] applies;
    - [AMEN_CLONE]: a repeated statement window across or within
      subprograms ({!Refactor.Inline_reverse.suggest_clones}) —
      [Inline_reverse.extract_procedure] applies;
    - [AMEN_TABLE]: a constant array indexed in two or more places —
      [Table_reverse.reverse] can replace the table by its defining
      computation;
    - [AMEN_PACKED]: an or/xor tree combining two or more shifted
      operands (packed-word idiom) — [Data_structures.word_to_bytes]
      applies;
    - [AMEN_DEAD]: per subprogram, a count of the dead-code findings the
      {!Flow} checks reported there (unused declarations, ineffective
      assignments, dead initializers) — dead code widens and destabilises
      the statement windows the transformation matchers work on, so
      removing it belongs before any structural refactoring.  Only
      emitted when the caller passes the flow diagnostics via [?flow]. *)

val check : ?flow:Diag.t list -> Minispark.Ast.program -> Diag.t list
