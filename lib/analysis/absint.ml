open Minispark
module SMap = Map.Make (String)

type state = Itv.t SMap.t

let lookup st x = match SMap.find_opt x st with Some v -> v | None -> Itv.top

module D = struct
  type t = state

  (* A missing binding reads as top, so joins drop one-sided keys. *)
  let merge_with f a b =
    SMap.merge
      (fun _ l r ->
        match (l, r) with Some x, Some y -> Some (f x y) | _ -> None)
      a b

  let join = merge_with Itv.join
  let widen = merge_with Itv.widen
  let equal = SMap.equal Itv.equal
end

module DF = Dataflow.Make (D)

(* Innermost scalar type of a possibly-nested array type. *)
let rec scalar_elem env ty =
  match Typecheck.resolve env ty with
  | Ast.Tarray (_, _, elt) -> scalar_elem env elt
  | t -> t

(* Interval of a runtime value: scalars exactly, arrays as element hull. *)
let rec val_itv (v : Value.t) =
  match v with
  | Value.Vint n | Value.Vmod (n, _) -> Itv.const n
  | Value.Vbool _ -> Itv.top
  | Value.Varray (_, els) ->
      Array.fold_left (fun acc e -> Itv.join acc (val_itv e)) Itv.bot els

(* Declared types of every object visible in [sub]. *)
let typing program (sub : Ast.subprogram option) =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (c : Ast.const_decl) -> Hashtbl.replace tbl c.Ast.k_name c.Ast.k_typ)
    (Ast.constants program);
  List.iter
    (fun (v : Ast.var_decl) -> Hashtbl.replace tbl v.Ast.v_name v.Ast.v_typ)
    (Ast.global_vars program);
  (match sub with
  | None -> ()
  | Some sub ->
      List.iter
        (fun (p : Ast.param) -> Hashtbl.replace tbl p.Ast.par_name p.Ast.par_typ)
        sub.Ast.sub_params;
      List.iter
        (fun (v : Ast.var_decl) -> Hashtbl.replace tbl v.Ast.v_name v.Ast.v_typ)
        sub.Ast.sub_locals);
  tbl

let rec eval env program sub st (e : Ast.expr) =
  let width e =
    (* modulus payload for bitwise transfer functions *)
    try
      match Typecheck.resolve env (Typecheck.expr_type env sub e) with
      | Ast.Tmod m -> m
      | _ -> 0
    with _ -> 0
  in
  match e with
  | Ast.Int_lit n -> Itv.const n
  | Ast.Bool_lit _ -> Itv.top
  | Ast.Var x -> lookup st x
  | Ast.Index (a, _) ->
      let rec base (e : Ast.expr) =
        match e with
        | Ast.Var x -> Some x
        | Ast.Index (a, _) -> base a
        | _ -> None
      in
      (match base a with Some x -> lookup st x | None -> Itv.top)
  | Ast.Unop (Ast.Neg, e) -> Itv.neg (eval env program sub st e)
  | Ast.Unop (Ast.Not, _) -> Itv.top
  | Ast.Binop (op, a, b) -> (
      let va = eval env program sub st a in
      let vb = eval env program sub st b in
      match op with
      | Ast.Add -> Itv.add va vb
      | Ast.Sub -> Itv.sub va vb
      | Ast.Mul -> Itv.mul va vb
      | Ast.Div -> Itv.div va vb
      | Ast.Mod -> Itv.md va vb
      | Ast.Band -> Itv.band (width e) va vb
      | Ast.Bor -> Itv.bor (width e) va vb
      | Ast.Bxor -> Itv.bxor (width e) va vb
      | Ast.Shl -> Itv.shl (width e) va vb
      | Ast.Shr -> Itv.shr (width e) va vb
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.And | Ast.Or
      | Ast.And_then | Ast.Or_else ->
          Itv.top)
  | Ast.Call (f, _) -> (
      match Ast.find_sub program f with
      | Some callee -> (
          match callee.Ast.sub_return with
          | Some rt -> Itv.of_typ env (scalar_elem env rt)
          | None -> Itv.top)
      | None -> Itv.top)
  | Ast.Aggregate es ->
      (* the abstract value of an array expression is its element hull *)
      List.fold_left
        (fun acc e -> Itv.join acc (eval env program sub st e))
        Itv.bot es
  | Ast.Old _ | Ast.Result | Ast.Quantified _ -> Itv.top

(* Wrap a value being stored into an object of declared type [ty]:
   modular assignment wraps; range subtypes are not clamped. *)
let store_coerce env ty v =
  match scalar_elem env ty with Ast.Tmod m -> Itv.wrap m v | _ -> v

let entry_state env program (sub : Ast.subprogram) =
  let st = ref SMap.empty in
  let bind x v = st := SMap.add x v !st in
  (* constants first (they may appear in later initialisers) *)
  List.iter
    (fun (c : Ast.const_decl) ->
      bind c.Ast.k_name
        (store_coerce env c.Ast.k_typ (eval env program None !st c.Ast.k_value)))
    (Ast.constants program);
  List.iter
    (fun (v : Ast.var_decl) ->
      let value =
        match v.Ast.v_init with
        | Some e -> store_coerce env v.Ast.v_typ (eval env program None !st e)
        | None -> val_itv (Interp.default_value env v.Ast.v_typ)
      in
      bind v.Ast.v_name value)
    (Ast.global_vars program);
  List.iter
    (fun (p : Ast.param) ->
      bind p.Ast.par_name (Itv.of_typ env (scalar_elem env p.Ast.par_typ)))
    sub.Ast.sub_params;
  List.iter
    (fun (v : Ast.var_decl) ->
      let value =
        match v.Ast.v_init with
        | Some e ->
            store_coerce env v.Ast.v_typ (eval env program (Some sub) !st e)
        | None -> val_itv (Interp.default_value env v.Ast.v_typ)
      in
      bind v.Ast.v_name value)
    sub.Ast.sub_locals;
  !st

let hooks env program (sub : Ast.subprogram) =
  let types = typing program (Some sub) in
  let decl_typ x = Hashtbl.find_opt types x in
  let ev st e = eval env program (Some sub) st e in
  let atomic st (stmt : Ast.stmt) =
    match stmt with
    | Ast.Null | Ast.Assert _ | Ast.Return _ -> st
    | Ast.Assign (Ast.Lvar x, e) ->
        let v = ev st e in
        let v =
          match decl_typ x with Some t -> store_coerce env t v | None -> v
        in
        SMap.add x v st
    | Ast.Assign (lv, e) ->
        (* element write: join into the base's element hull *)
        let base = Ast.lvalue_base lv in
        let v = ev st e in
        let v =
          match decl_typ base with
          | Some t -> store_coerce env t v
          | None -> v
        in
        SMap.add base (Itv.join (lookup st base) v) st
    | Ast.Call_stmt (f, args) -> (
        match Ast.find_sub program f with
        | None -> st
        | Some callee ->
            let rec havoc st (params : Ast.param list) args =
              match (params, args) with
              | [], _ | _, [] -> st
              | p :: ps, a :: rest ->
                  let st =
                    match p.Ast.par_mode with
                    | Ast.Mode_in -> st
                    | Ast.Mode_out | Ast.Mode_in_out -> (
                        let rec base (e : Ast.expr) =
                          match e with
                          | Ast.Var x -> Some (x, false)
                          | Ast.Index (a, _) -> (
                              match base a with
                              | Some (x, _) -> Some (x, true)
                              | None -> None)
                          | _ -> None
                        in
                        match base a with
                        | None -> st
                        | Some (x, partial) ->
                            let range =
                              match decl_typ x with
                              | Some t -> Itv.of_typ env (scalar_elem env t)
                              | None -> Itv.top
                            in
                            let v =
                              if partial then Itv.join (lookup st x) range
                              else range
                            in
                            SMap.add x v st)
                  in
                  havoc st ps rest
            in
            havoc st callee.Ast.sub_params args)
    | Ast.If _ | Ast.For _ | Ast.While _ -> st
  in
  let enter_for st (fl : Ast.for_loop) =
    let lo = ev st fl.Ast.for_lo and hi = ev st fl.Ast.for_hi in
    let bound =
      match (lo, hi) with
      | Itv.Itv { lo = l; _ }, Itv.Itv { hi = h; _ } -> Itv.make l h
      | _ -> Itv.top
    in
    SMap.add fl.Ast.for_var bound st
  in
  let exit_for st (fl : Ast.for_loop) = SMap.remove fl.Ast.for_var st in
  {
    DF.default_hooks with
    DF.atomic = atomic;
    DF.enter_for = enter_for;
    DF.exit_for = exit_for;
  }

let analyze_sub env program sub =
  DF.exec (hooks env program sub) (entry_state env program sub) sub.Ast.sub_body

let exit_intervals env program sub =
  match analyze_sub env program sub with
  | None -> []
  | Some st -> SMap.bindings st
