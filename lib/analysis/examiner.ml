module F = Logic.Formula
module J = Telemetry.Json

type t = {
  ex_flow : Diag.t list;
  ex_amen : Diag.t list;
  ex_vcs_total : int;
  ex_vcs_discharged : int;
  ex_discharged : (string * string) list;
  ex_notes : string list;
}

let analyze ?(vcs = false) ?budget env program =
  let ex_flow = Flow.check program in
  let ex_amen = Amenability.check ~flow:ex_flow program in
  if not vcs then
    {
      ex_flow;
      ex_amen;
      ex_vcs_total = 0;
      ex_vcs_discharged = 0;
      ex_discharged = [];
      ex_notes = [];
    }
  else
    let report = Vcgen.generate ?budget env program in
    let exn_free =
      List.filter
        (fun (vc : F.vc) -> Discharge.attempted_kind vc.F.vc_kind)
        (Vcgen.all_vcs report)
    in
    let discharged =
      List.filter_map
        (fun (vc : F.vc) ->
          if Discharge.vc_discharged vc then Some (vc.F.vc_sub, vc.F.vc_name)
          else None)
        exn_free
    in
    let notes =
      match report.Vcgen.r_infeasible with
      | Some why ->
          [
            Printf.sprintf
              "VC generation stopped (%s): the program is not amenable to \
               proof in this form (cf. paper §6.2.2); interval discharge \
               covers only the subprograms analysed before the budget ran \
               out"
              why;
          ]
      | None -> []
    in
    {
      ex_flow;
      ex_amen;
      ex_vcs_total = List.length exn_free;
      ex_vcs_discharged = List.length discharged;
      ex_discharged = discharged;
      ex_notes = notes;
    }

let errors t = Diag.count Diag.Error (t.ex_flow @ t.ex_amen)
let diags t = t.ex_flow @ t.ex_amen

let to_json t =
  J.Obj
    [
      ("flow", J.List (List.map Diag.to_json t.ex_flow));
      ("amenability", J.List (List.map Diag.to_json t.ex_amen));
      ( "vcs",
        J.Obj
          [
            ("exception_freedom", J.Int t.ex_vcs_total);
            ("discharged", J.Int t.ex_vcs_discharged);
            ( "discharged_names",
              J.List
                (List.map
                   (fun (sub, name) ->
                     J.Obj [ ("sub", J.String sub); ("vc", J.String name) ])
                   t.ex_discharged) );
          ] );
      ("notes", J.List (List.map (fun n -> J.String n) t.ex_notes));
      ( "summary",
        J.Obj
          [
            ("errors", J.Int (Diag.count Diag.Error (diags t)));
            ("warnings", J.Int (Diag.count Diag.Warning (diags t)));
            ("infos", J.Int (Diag.count Diag.Info (diags t)));
          ] );
    ]

let pp fmt t =
  let all = diags t in
  if all = [] then Format.fprintf fmt "no diagnostics@."
  else
    List.iter (fun d -> Format.fprintf fmt "%a@." Diag.pp d) all;
  if t.ex_vcs_total > 0 || t.ex_vcs_discharged > 0 then
    Format.fprintf fmt
      "interval analysis discharged %d of %d exception-freedom VC(s)@."
      t.ex_vcs_discharged t.ex_vcs_total;
  List.iter (fun n -> Format.fprintf fmt "note: %s@." n) t.ex_notes;
  Format.fprintf fmt "%d error(s), %d warning(s), %d info(s)@."
    (Diag.count Diag.Error all)
    (Diag.count Diag.Warning all)
    (Diag.count Diag.Info all)
