open Minispark

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val widen : t -> t -> t
  val equal : t -> t -> bool
end

module Make (D : DOMAIN) = struct
  type hooks = {
    atomic : D.t -> Ast.stmt -> D.t;
    guard : D.t -> Ast.expr -> D.t;
    enter_for : D.t -> Ast.for_loop -> D.t;
    exit_for : D.t -> Ast.for_loop -> D.t;
    observe : D.t option -> Ast.stmt -> unit;
  }

  let default_hooks =
    {
      atomic = (fun s _ -> s);
      guard = (fun s _ -> s);
      enter_for = (fun s _ -> s);
      exit_for = (fun s _ -> s);
      observe = (fun _ _ -> ());
    }

  let join_opt a b =
    match (a, b) with
    | None, v | v, None -> v
    | Some x, Some y -> Some (D.join x y)

  (* How many plain-join rounds a loop fixpoint gets before switching to
     widening.  Interval bodies typically stabilise in 2; the slack keeps
     short counted loops precise. *)
  let widen_after = 3

  (* Hard cap: with widening every sensible domain stabilises long before
     this, so hitting it indicates a broken [widen] — fail loudly rather
     than loop forever. *)
  let max_iters = 64

  let rec exec_list hooks st stmts =
    List.fold_left (fun st stmt -> exec_stmt hooks st stmt) st stmts

  and exec_stmt hooks st stmt =
    hooks.observe st stmt;
    match st with
    | None -> None
    | Some s -> (
        match stmt with
        | Ast.Null | Ast.Assign _ | Ast.Call_stmt _ | Ast.Assert _ ->
            Some (hooks.atomic s stmt)
        | Ast.Return _ ->
            let (_ : D.t) = hooks.atomic s stmt in
            None
        | Ast.If (branches, els) ->
            (* guards are effect-free but hooks may refine / observe *)
            let s_guarded =
              List.fold_left (fun acc (g, _) -> hooks.guard acc g) s branches
            in
            let branch_outs =
              List.map
                (fun (_, body) -> exec_list hooks (Some s_guarded) body)
                branches
            in
            let else_out = exec_list hooks (Some s_guarded) els in
            List.fold_left join_opt else_out branch_outs
        | Ast.For fl ->
            let s = hooks.guard (hooks.guard s fl.Ast.for_lo) fl.Ast.for_hi in
            let entry0 = hooks.enter_for s fl in
            let body_exit = fixpoint hooks entry0 fl.Ast.for_body in
            let via_body =
              match body_exit with
              | None -> None
              | Some e -> Some (hooks.exit_for e fl)
            in
            (* zero-trip path keeps the pre-state *)
            join_opt (Some s) via_body
        | Ast.While wl ->
            let entry0 = hooks.guard s wl.Ast.while_cond in
            let entry =
              fixpoint_while hooks entry0 wl.Ast.while_cond wl.Ast.while_body
            in
            (* the loop exits after one more (false) guard evaluation; the
               guard hook already ran on [entry] inside the fixpoint *)
            Some entry)

  (* Iterate [body] from [entry] until the joined entry state stabilises.
     Returns the last body exit state (None if the body always returns). *)
  and fixpoint hooks entry body =
    let rec go entry iters =
      if iters > max_iters then
        failwith "Analysis.Dataflow: loop fixpoint failed to stabilise"
      else
        match exec_list hooks (Some entry) body with
        | None -> None
        | Some out ->
            let combine = if iters >= widen_after then D.widen else D.join in
            let entry' = combine entry out in
            if D.equal entry entry' then Some out else go entry' (iters + 1)
    in
    go entry 0

  (* While fixpoint over the state at the loop head (before the guard);
     each round re-evaluates the guard then the body. *)
  and fixpoint_while hooks entry cond body =
    let rec go entry iters =
      if iters > max_iters then
        failwith "Analysis.Dataflow: while fixpoint failed to stabilise"
      else
        match exec_list hooks (Some entry) body with
        | None -> entry
        | Some out ->
            let out = hooks.guard out cond in
            let combine = if iters >= widen_after then D.widen else D.join in
            let entry' = combine entry out in
            if D.equal entry entry' then entry else go entry' (iters + 1)
    in
    go entry 0

  let exec hooks init stmts = exec_list hooks (Some init) stmts
end
