(** Reusable forward dataflow over the MiniSpark statement AST.

    MiniSpark has no CFG: control flow is fully structural (statement
    lists, [If] branch joins, [For]/[While] fixpoints, early [Return]).
    The framework threads an abstract state through a statement list,
    joining at branch merges and iterating loop bodies to a fixpoint
    (with widening after a few rounds for infinite-height domains).

    States are ['a option]: [None] means the program point is
    unreachable (everything after a [Return]).  Instantiations supply a
    record of transfer hooks; hooks may close over mutable state to
    collect diagnostics as a side effect. *)

module type DOMAIN = sig
  type t

  val join : t -> t -> t
  val widen : t -> t -> t

  (** Fixpoint termination test. *)
  val equal : t -> t -> bool
end

module Make (D : DOMAIN) : sig
  type hooks = {
    atomic : D.t -> Minispark.Ast.stmt -> D.t;
        (** Transfer for [Null], [Assign], [Call_stmt], [Assert] and the
            expression of a [Return] (called just before the state dies). *)
    guard : D.t -> Minispark.Ast.expr -> D.t;
        (** Evaluation of an [If]/[While] guard or a [For] bound in the
            given state (invariant annotations are never passed here). *)
    enter_for : D.t -> Minispark.Ast.for_loop -> D.t;
        (** Bind the loop variable on entry to a [For] body. *)
    exit_for : D.t -> Minispark.Ast.for_loop -> D.t;
        (** Drop the loop variable when the loop exits via its body. *)
    observe : D.t option -> Minispark.Ast.stmt -> unit;
        (** Called on every statement with its pre-state ([None] =
            unreachable) before the transfer runs; nested bodies of an
            unreachable statement are not entered. *)
  }

  (** Hooks that leave the state untouched and observe nothing; override
      the fields an analysis cares about. *)
  val default_hooks : hooks

  (** [exec hooks init stmts] runs the statement list from state [init]
      and returns the exit state ([None] when every path returns). *)
  val exec : hooks -> D.t -> Minispark.Ast.stmt list -> D.t option
end
