(** Examiner-style data-flow checks over MiniSpark subprograms.

    Eight checks, all running on the type-checked (normalised) program:

    - {b definite initialization} ([FLOW_UNINIT], error): a variable is
      read and {e no} earlier statement on {e any} path can have written
      it.  The may-initialize (union-join) lattice makes the check
      lenient across data-dependent paths — loop-carried array fills and
      element-wise initialisation do not trip it — so a hit means a
      genuine use-before-set on every execution.
    - {b out parameter never assigned} ([FLOW_OUT_UNSET], error): an
      [out] parameter written nowhere in the body (including [out] /
      [in out] argument positions of calls).
    - {b ineffective assignment} ([FLOW_INEFFECTIVE], warning): a
      whole-variable assignment whose value no later statement (nor any
      annotation) can observe — classic backward liveness.  Array
      element writes are exempt (partial updates flow through the rest
      of the array).
    - {b unused declaration} ([FLOW_UNUSED], warning): a local or
      parameter referenced nowhere, annotations included.
    - {b unused program-level declaration} ([FLOW_UNUSED_GLOBAL],
      warning): a constant or global variable in no subprogram's
      (transitively closed) declaration frontier ({!Depgraph.decl_refs})
      — reported once at program level ([d_sub = ""]), only by {!check}.
    - {b dead initializer} ([FLOW_DEAD_INIT], warning): a local's
      declaration initializer overwritten before any statement (or a
      later local's initializer) can read it — the declaration-site twin
      of [FLOW_INEFFECTIVE].  Suppressed for never-referenced locals,
      which are [FLOW_UNUSED] already.
    - {b unreachable code} ([FLOW_UNREACHABLE], warning): statements
      strictly after a point where every path has returned.
    - {b stable loop condition} ([FLOW_STABLE_COND], warning): a
      [While] whose condition reads no variable its body can write.

    In-out actuals of procedure calls count as writes but not reads:
    SPARK copy-in/copy-out makes passing a never-initialised scratch
    variable as [in out] legal, and the annotated AES case study does
    exactly that. *)

val check_sub :
  Minispark.Ast.program -> Minispark.Ast.subprogram -> Diag.t list

(** All subprograms, in declaration order. *)
val check : Minispark.Ast.program -> Diag.t list
