type bound = Ninf | Fin of int | Pinf

type t =
  | Bot
  | Itv of { lo : bound; hi : bound; m : int; r : int }

let top = Itv { lo = Ninf; hi = Pinf; m = 1; r = 0 }
let bot = Bot
let is_bot v = v = Bot

(* ------------------------------------------------------------------ *)
(* Bound arithmetic                                                    *)
(* ------------------------------------------------------------------ *)

let ble a b =
  match (a, b) with
  | Ninf, _ | _, Pinf -> true
  | Pinf, _ | _, Ninf -> false
  | Fin x, Fin y -> x <= y

let bmin a b = if ble a b then a else b
let bmax a b = if ble a b then b else a

let badd a b =
  match (a, b) with
  | Ninf, Pinf | Pinf, Ninf -> invalid_arg "Itv.badd"
  | Ninf, _ | _, Ninf -> Ninf
  | Pinf, _ | _, Pinf -> Pinf
  | Fin x, Fin y -> Fin (x + y)

let bneg = function Ninf -> Pinf | Pinf -> Ninf | Fin x -> Fin (-x)

let bmul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Fin x, Fin y -> Fin (x * y)
  | (Pinf | Fin _), (Pinf | Fin _) ->
      if (match a with Fin x -> x > 0 | _ -> true)
         = (match b with Fin y -> y > 0 | _ -> true)
      then Pinf
      else Ninf
  | Ninf, _ | _, Ninf -> (
      (* sign of the other operand decides *)
      let other = if a = Ninf then b else a in
      match other with
      | Fin y when y > 0 -> Ninf
      | Fin y when y < 0 -> Pinf
      | Fin _ -> Fin 0
      | Pinf -> Ninf
      | Ninf -> Pinf)

(* ------------------------------------------------------------------ *)
(* Normalisation                                                       *)
(* ------------------------------------------------------------------ *)

let pos_mod x m =
  let r = x mod m in
  if r < 0 then r + m else r

(* Tighten finite bounds to the congruence class, promote singleton
   intervals to the exact congruence [m = 0, r = value], and detect
   emptiness.  The invariant after [norm]: [m = 0] iff [lo = hi = Fin r]. *)
let norm lo hi m r =
  let m, r = if m < 2 then (1, 0) else (m, pos_mod r m) in
  let lo =
    match lo with
    | Fin x when m > 1 ->
        let d = pos_mod (r - x) m in
        Fin (x + d)
    | b -> b
  in
  let hi =
    match hi with
    | Fin x when m > 1 ->
        let d = pos_mod (x - r) m in
        Fin (x - d)
    | b -> b
  in
  if not (ble lo hi) then Bot
  else
    match (lo, hi) with
    | Fin a, Fin b when a = b -> Itv { lo; hi; m = 0; r = a }
    | _ -> Itv { lo; hi; m; r }

let make lo hi = norm lo hi 1 0
let const n = norm (Fin n) (Fin n) 1 0
let range lo hi = norm (Fin lo) (Fin hi) 1 0

let of_typ env ty =
  match Minispark.Typecheck.resolve env ty with
  | Minispark.Ast.Tint (Some (lo, hi)) -> range lo hi
  | Minispark.Ast.Tmod m when m > 0 -> range 0 (m - 1)
  | _ -> top

(* ------------------------------------------------------------------ *)
(* Lattice                                                             *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Congruence join: [m = 0] (exact constant) is the strongest class, so it
   participates via gcd's absorption of 0 — joining the constants 0 and 4
   yields stride 4, not stride "whatever they shared".  [m = 1] is top. *)
let cong_join am ar bm br =
  if am = 1 || bm = 1 then (1, 0)
  else
    let m = gcd (gcd am bm) (abs (ar - br)) in
    if m > 1 then (m, pos_mod ar m) else (1, 0)

let join a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Itv a, Itv b ->
      let m, r = cong_join a.m a.r b.m b.r in
      norm (bmin a.lo b.lo) (bmax a.hi b.hi) m r

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b ->
      let lo = bmax a.lo b.lo and hi = bmin a.hi b.hi in
      if a.m = 0 then
        if b.m > 1 && pos_mod a.r b.m <> b.r then Bot else norm lo hi 1 0
      else if b.m = 0 then
        if a.m > 1 && pos_mod b.r a.m <> a.r then Bot else norm lo hi 1 0
      else if a.m > 1 && b.m > 1 then
        (* keep the congruence with more information when compatible;
           a full CRT combine is unnecessary for our use cases *)
        let bm, br, sm, sr =
          if a.m >= b.m then (a.m, a.r, b.m, b.r) else (b.m, b.r, a.m, a.r)
        in
        if bm mod sm = 0 && pos_mod br sm <> sr then Bot
        else norm lo hi bm br
      else
        let m, r = if a.m > 1 then (a.m, a.r) else (b.m, b.r) in
        norm lo hi m r

let widen a b =
  match (a, b) with
  | Bot, v | v, Bot -> v
  | Itv a, Itv b ->
      let lo = if ble a.lo b.lo then a.lo else Ninf in
      let hi = if ble b.hi a.hi then a.hi else Pinf in
      let m, r = cong_join a.m a.r b.m b.r in
      norm lo hi m r

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Itv a, Itv b -> a.lo = b.lo && a.hi = b.hi && a.m = b.m && a.r = b.r
  | _ -> false

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv a, Itv b ->
      ble b.lo a.lo && ble a.hi b.hi
      && (b.m < 2
         ||
         match a.m with
         | 0 -> pos_mod a.r b.m = b.r
         | am -> am > 1 && am mod b.m = 0 && pos_mod a.r b.m = b.r)

let contains v n =
  match v with
  | Bot -> false
  | Itv { lo; hi; m; r } ->
      ble lo (Fin n) && ble (Fin n) hi && (m < 2 || pos_mod n m = r)

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b ->
      (* gcd absorbs the exact class [m = 0]: constant + stride keeps the
         stride, constant + constant is rebuilt exact by [norm] *)
      let m = if a.m = 1 || b.m = 1 then 1 else gcd a.m b.m in
      let r = if m < 2 then 0 else pos_mod (a.r + b.r) m in
      norm (badd a.lo b.lo) (badd a.hi b.hi) m r

let neg = function
  | Bot -> Bot
  | Itv { lo; hi; m; r } ->
      norm (bneg hi) (bneg lo) m (if m < 2 then 0 else pos_mod (-r) m)

let sub a b = add a (neg b)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b ->
      let cands =
        [ bmul a.lo b.lo; bmul a.lo b.hi; bmul a.hi b.lo; bmul a.hi b.hi ]
      in
      let lo = List.fold_left bmin Pinf cands in
      let hi = List.fold_left bmax Ninf cands in
      (* c * (m·k + r) = m·(ck) + cr when one side is the constant c *)
      let m, r =
        match (a.lo, a.hi, b.lo, b.hi) with
        | Fin c, Fin c', _, _ when c = c' && b.m > 1 && c <> 0 ->
            let m = abs c * b.m in
            (m, pos_mod (c * b.r) m)
        | _, _, Fin c, Fin c' when c = c' && a.m > 1 && c <> 0 ->
            let m = abs c * a.m in
            (m, pos_mod (c * a.r) m)
        | Fin c, Fin c', _, _ when c = c' && c <> 0 -> (abs c, 0)
        | _, _, Fin c, Fin c' when c = c' && c <> 0 -> (abs c, 0)
        | _ -> (1, 0)
      in
      norm lo hi m r

let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv _, Itv b -> (
      match (b.lo, b.hi) with
      | Fin l, Fin h when l >= 1 -> (
          (* positive divisor: magnitude shrinks (truncated division) *)
          match a with
          | Bot -> Bot
          | Itv a ->
              let q x d = x / d in
              let lo =
                match a.lo with
                | Ninf -> Ninf
                | Pinf -> Pinf
                | Fin x -> Fin (if x >= 0 then q x h else q x l)
              in
              let hi =
                match a.hi with
                | Ninf -> Ninf
                | Pinf -> Pinf
                | Fin x -> Fin (if x >= 0 then q x l else q x h)
              in
              norm lo hi 1 0)
      | _ -> top)

let md a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a', Itv b -> (
      (* MiniSpark [mod] is Euclidean: the result is always in
         [0, divisor - 1] whatever the dividend's sign *)
      match (b.lo, b.hi) with
      | Fin l, Fin h when l >= 1 -> (
          match (a'.lo, a'.hi) with
          | Fin alo, Fin ahi when alo >= 0 && ahi < l -> Itv a'
          | _ when l = h && (a'.m = 0 || (a'.m > 1 && a'.m mod l = 0)) ->
              (* the congruence class survives a divisor dividing its modulus *)
              const (pos_mod a'.r l)
          | _ -> range 0 (h - 1))
      | _ -> top)

let wrap m v =
  if m <= 0 then v
  else
    match v with
    | Bot -> Bot
    | Itv { lo = Fin l; hi = Fin h; _ } when l >= 0 && h < m -> v
    | Itv { m = 0; r; _ } -> norm (Fin (pos_mod r m)) (Fin (pos_mod r m)) 1 0
    | Itv i ->
        (* wrapping preserves congruence only when m' divides m *)
        let full = range 0 (m - 1) in
        if i.m > 1 && m mod i.m = 0 then meet full (norm Ninf Pinf i.m i.r)
        else full

let fin_pair v =
  match v with Itv { lo = Fin l; hi = Fin h; _ } -> Some (l, h) | _ -> None

let const_of v =
  match v with
  | Itv { lo = Fin l; hi = Fin h; _ } when l = h -> Some l
  | _ -> None

let width_range m = if m > 0 then range 0 (m - 1) else top

let band m a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ ->
      let base = width_range m in
      (* x land c <= c for nonneg c; and result >= 0 when either side nonneg *)
      let mask =
        match (const_of a, const_of b) with
        | Some c, _ when c >= 0 -> range 0 c
        | _, Some c when c >= 0 -> range 0 c
        | _ -> (
            (* a possibly-negative side is a full bit mask in two's
               complement, so only a side known nonnegative bounds the
               result: x land y <= x when x >= 0, whatever y's sign *)
            match (fin_pair a, fin_pair b) with
            | Some (la, ha), Some (lb, hb) when la >= 0 && lb >= 0 ->
                range 0 (min ha hb)
            | Some (la, ha), _ when la >= 0 -> range 0 ha
            | _, Some (lb, hb) when lb >= 0 -> range 0 hb
            | _ -> top)
      in
      let r = meet base mask in
      if is_bot r then base else r

let bor m a b =
  match (a, b) with Bot, _ | _, Bot -> Bot | _ -> width_range m

let bxor m a b =
  match (a, b) with Bot, _ | _, Bot -> Bot | _ -> width_range m

let bnot m v = match v with Bot -> Bot | _ -> width_range m

let shl m a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      match (const_of a, const_of b) with
      | Some x, Some s when m = 0 && s >= 0 && s < 62 -> const (x lsl s)
      | _ -> width_range m)

let shr m a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      let base = width_range m in
      match (fin_pair a, fin_pair b) with
      | Some (la, ha), Some (sl, _) when la >= 0 && sl >= 0 && sl < 62 ->
          let r = range 0 (ha asr sl) in
          let r = meet base r in
          if is_bot r then base else r
      | _ -> base)

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

let definitely_lt a b =
  match (a, b) with
  | Bot, _ | _, Bot -> true
  | Itv a, Itv b -> (
      match (a.hi, b.lo) with Fin h, Fin l -> h < l | _ -> false)

let definitely_le a b =
  match (a, b) with
  | Bot, _ | _, Bot -> true
  | Itv a, Itv b -> (
      match (a.hi, b.lo) with Fin h, Fin l -> h <= l | _ -> false)

let definitely_eq a b =
  match (const_of a, const_of b) with
  | Some x, Some y -> x = y
  | _ -> is_bot a || is_bot b

let definitely_ne a b =
  match (a, b) with
  | Bot, _ | _, Bot -> true
  | Itv ia, Itv ib ->
      definitely_lt a b || definitely_lt b a
      || (match (ia.m, ib.m) with
         | 0, 0 -> ia.r <> ib.r
         | 0, m when m > 1 -> pos_mod ia.r m <> ib.r
         | m, 0 when m > 1 -> pos_mod ib.r m <> ia.r
         | ma, mb when ma > 1 && mb > 1 ->
             let g = gcd ma mb in
             g > 1 && pos_mod ia.r g <> pos_mod ib.r g
         | _ -> false)

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_bound fmt = function
  | Ninf -> Format.pp_print_string fmt "-oo"
  | Pinf -> Format.pp_print_string fmt "+oo"
  | Fin x -> Format.pp_print_int fmt x

let pp fmt = function
  | Bot -> Format.pp_print_string fmt "_|_"
  | Itv { lo; hi; m; r } ->
      Format.fprintf fmt "[%a,%a]" pp_bound lo pp_bound hi;
      if m > 1 then Format.fprintf fmt "(=%d mod %d)" r m

let to_string v = Format.asprintf "%a" pp v
