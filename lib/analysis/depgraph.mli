(** Interprocedural dependency graph over a MiniSpark program (§15).

    Nodes are subprograms; edges record why one subprogram's verification
    outcome can depend on another's text:

    - {e call} edges from statement bodies ([Call_stmt] and [Call]
      expressions, including loop invariants and assertions);
    - {e spec} edges from contract annotations (pre/postconditions) — a
      callee referenced only in a spec still binds the caller's VCs;
    - {e global} edges through shared mutable state (a writer of [g] is
      linked to every reader of [g]).

    The graph also records, per subprogram, which program-level
    declarations (constants, globals, named types) its meaning reads —
    the prover ground-evaluates function applications against those
    declarations, so they are part of the dependency frontier.

    Build on the {e normalised} program returned by {!Typecheck.check}:
    before normalisation, [Call] nodes can still denote array indexing and
    would create phantom edges. *)

open Minispark

type edge_kind =
  | Ecall            (** referenced from the body (statements, asserts,
                         loop invariants) *)
  | Espec            (** referenced from the pre/postcondition *)
  | Eglobal of Ast.ident  (** dataflow through the named global variable *)

val edge_kind_name : edge_kind -> string

type t

val build : Ast.program -> t

val subs : t -> Ast.ident list
(** All subprogram nodes, in declaration order. *)

val callees : t -> Ast.ident -> (Ast.ident * edge_kind) list
(** Outgoing edges: subprograms [s] depends on, with the strongest edge
    kind recorded per target (call > spec > global). *)

val callers : t -> Ast.ident -> (Ast.ident * edge_kind) list
(** Incoming edges: subprograms that depend on [s]. *)

val direct_callers : t -> Ast.ident -> Ast.ident list
(** Callers through call or spec edges only (no global dataflow). *)

val globals_read : t -> Ast.ident -> Ast.ident list
val globals_written : t -> Ast.ident -> Ast.ident list

val decl_refs : t -> Ast.ident -> Ast.ident list
(** Constants, global variables and named types whose declarations the
    subprogram's text references (transitively through type names). *)

val dependents : t -> Ast.ident list -> Ast.ident list
(** Reverse reachability: every subprogram from which some seed is
    reachable along dependency edges — the set whose verification a
    change to the seeds can influence.  Includes the seeds themselves.
    Sorted. *)

val eval_deps : t -> Ast.ident -> Ast.ident list
(** Subprograms whose {e bodies} the prover may execute while
    ground-evaluating function applications occurring in [s]'s VCs: the
    functions referenced from [s]'s body and annotations and from its
    direct callees' contracts, closed under body references.  [s] itself
    is excluded.  Sorted. *)

val decl_closure : t -> Ast.ident list -> Ast.ident list
(** Union of {!decl_refs} over the given subprograms.  Sorted. *)

val edge_count : t -> int

val pp : t Fmt.t
val to_json : t -> string
