open Minispark

type severity = Error | Warning | Info

type code =
  | FLOW_UNINIT
  | FLOW_OUT_UNSET
  | FLOW_INEFFECTIVE
  | FLOW_UNUSED
  | FLOW_UNUSED_GLOBAL
  | FLOW_DEAD_INIT
  | FLOW_UNREACHABLE
  | FLOW_STABLE_COND
  | AMEN_REROLL
  | AMEN_CLONE
  | AMEN_TABLE
  | AMEN_PACKED
  | AMEN_DEAD

type t = {
  d_code : code;
  d_severity : severity;
  d_sub : string;
  d_line : int;
  d_message : string;
}

let code_name = function
  | FLOW_UNINIT -> "FLOW_UNINIT"
  | FLOW_OUT_UNSET -> "FLOW_OUT_UNSET"
  | FLOW_INEFFECTIVE -> "FLOW_INEFFECTIVE"
  | FLOW_UNUSED -> "FLOW_UNUSED"
  | FLOW_UNUSED_GLOBAL -> "FLOW_UNUSED_GLOBAL"
  | FLOW_DEAD_INIT -> "FLOW_DEAD_INIT"
  | FLOW_UNREACHABLE -> "FLOW_UNREACHABLE"
  | FLOW_STABLE_COND -> "FLOW_STABLE_COND"
  | AMEN_REROLL -> "AMEN_REROLL"
  | AMEN_CLONE -> "AMEN_CLONE"
  | AMEN_TABLE -> "AMEN_TABLE"
  | AMEN_PACKED -> "AMEN_PACKED"
  | AMEN_DEAD -> "AMEN_DEAD"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let natural_severity = function
  | FLOW_UNINIT | FLOW_OUT_UNSET -> Error
  | FLOW_INEFFECTIVE | FLOW_UNUSED | FLOW_UNUSED_GLOBAL | FLOW_DEAD_INIT
  | FLOW_UNREACHABLE | FLOW_STABLE_COND ->
      Warning
  | AMEN_REROLL | AMEN_CLONE | AMEN_TABLE | AMEN_PACKED | AMEN_DEAD -> Info

let make ?severity ?(sub = "") ?(line = 0) code message =
  let d_severity =
    match severity with Some s -> s | None -> natural_severity code
  in
  { d_code = code; d_severity; d_sub = sub; d_line = line; d_message = message }

let count sev ds = List.length (List.filter (fun d -> d.d_severity = sev) ds)

(* Locate [stmt]'s first pretty-printed line inside [sub]'s section of the
   canonical program text.  Statements carry no locations, so we match the
   first non-blank trimmed line of the statement's own rendering against
   the program rendering, starting from the subprogram header. *)
let anchor program ~sub stmt =
  let text = Pretty.program_to_string program in
  let lines = String.split_on_char '\n' text in
  let trim = String.trim in
  let needle =
    match
      List.find_opt
        (fun l -> trim l <> "")
        (String.split_on_char '\n' (Pretty.stmts_to_string [ stmt ]))
    with
    | Some l -> trim l
    | None -> ""
  in
  if needle = "" then 0
  else
    let header_matches l =
      let l = trim l in
      let starts p = String.length l >= String.length p
                     && String.sub l 0 (String.length p) = p in
      starts ("procedure " ^ sub) || starts ("function " ^ sub)
    in
    let rec scan ln in_sub = function
      | [] -> 0
      | l :: rest ->
          let in_sub = in_sub || sub = "" || header_matches l in
          if in_sub && trim l = needle then ln
          else scan (ln + 1) in_sub rest
    in
    scan 1 false lines

let to_json d =
  Telemetry.Json.Obj
    [
      ("code", Telemetry.Json.String (code_name d.d_code));
      ("severity", Telemetry.Json.String (severity_name d.d_severity));
      ("sub", Telemetry.Json.String d.d_sub);
      ("line", Telemetry.Json.Int d.d_line);
      ("message", Telemetry.Json.String d.d_message);
    ]

let pp fmt d =
  let where =
    match (d.d_sub, d.d_line) with
    | "", 0 -> ""
    | s, 0 -> Printf.sprintf " [%s]" s
    | "", n -> Printf.sprintf " [line %d]" n
    | s, n -> Printf.sprintf " [%s:%d]" s n
  in
  Format.fprintf fmt "%s %s%s: %s"
    (severity_name d.d_severity)
    (code_name d.d_code) where d.d_message
