module F = Logic.Formula

let attempted_kind = function
  | F.Vc_index_check | F.Vc_range_check | F.Vc_div_check | F.Vc_overflow_check
    ->
      true
  | _ -> false

(* Environment mined from the hypotheses: scalar variables map to an
   interval; array symbols map to element-hull facts, each valid for
   select indices inside its per-dimension coverage intervals. *)
type env = {
  scalars : (string, Itv.t) Hashtbl.t;
  arrays : (string, (Itv.t list * Itv.t) list) Hashtbl.t;
}

let lookup env x =
  match Hashtbl.find_opt env.scalars x with Some v -> v | None -> Itv.top

let refine env x v =
  let cur = lookup env x in
  let v' = Itv.meet cur v in
  (* contradictory hypotheses mean the path is infeasible: Bot is sound *)
  Hashtbl.replace env.scalars x v'

let add_array_fact env a coverage hull =
  let cur = try Hashtbl.find env.arrays a with Not_found -> [] in
  Hashtbl.replace env.arrays a ((coverage, hull) :: cur)

(* ------------------------------------------------------------------ *)
(* Term evaluation                                                     *)
(* ------------------------------------------------------------------ *)

let rec eval env (t : F.t) =
  match t.F.node with
  | F.Int n -> Itv.const n
  | F.Bool _ -> Itv.top
  | F.Var x -> lookup env x
  | F.Ite (_, a, b) -> Itv.join (eval env a) (eval env b)
  | F.Forall _ | F.Exists _ -> Itv.top
  | F.App (op, args) -> (
      match (op, args) with
      | F.Add, [ a; b ] -> Itv.add (eval env a) (eval env b)
      | F.Sub, [ a; b ] -> Itv.sub (eval env a) (eval env b)
      | F.Mul, [ a; b ] -> Itv.mul (eval env a) (eval env b)
      | F.Div, [ a; b ] -> Itv.div (eval env a) (eval env b)
      | F.Mod_op, [ a; b ] -> Itv.md (eval env a) (eval env b)
      | F.Neg, [ a ] -> Itv.neg (eval env a)
      | F.Wrap m, [ a ] -> Itv.wrap m (eval env a)
      | F.Band m, [ a; b ] -> Itv.band m (eval env a) (eval env b)
      | F.Bor m, [ a; b ] -> Itv.bor m (eval env a) (eval env b)
      | F.Bxor m, [ a; b ] -> Itv.bxor m (eval env a) (eval env b)
      | F.Bnot m, [ a ] -> Itv.bnot m (eval env a)
      | F.Shl m, [ a; b ] -> Itv.shl m (eval env a) (eval env b)
      | F.Shr m, [ a; b ] -> Itv.shr m (eval env a) (eval env b)
      | F.Select, [ a; i ] -> eval_select env a [ eval env i ]
      | F.Arrlit _, elems ->
          List.fold_left
            (fun acc e -> Itv.join acc (eval env e))
            Itv.bot elems
      | _ -> Itv.top)

(* [idxs] are the intervals of the select indices collected inner-to-
   outer so far; peeling [Select (a, i)] pushes [i] in front, giving the
   outermost-first order the coverage lists use. *)
and eval_select env arr idxs =
  match arr.F.node with
  | F.Var a -> hull_for env a idxs
  | F.App (F.Store, [ a0; _; v ]) ->
      (* either the stored value or some other element *)
      Itv.join (eval env v) (eval_select env a0 idxs)
  | F.App (F.Arrlit _, elems) ->
      List.fold_left (fun acc e -> Itv.join acc (eval env e)) Itv.bot elems
  | F.App (F.Select, [ a; i ]) -> eval_select env a (eval env i :: idxs)
  | F.Ite (_, a, b) ->
      Itv.join (eval_select env a idxs) (eval_select env b idxs)
  | _ -> Itv.top

and hull_for env a idxs =
  match Hashtbl.find_opt env.arrays a with
  | None -> Itv.top
  | Some facts ->
      (* every fact whose coverage contains the index intervals bounds
         the selected element; intersect them all *)
      List.fold_left
        (fun acc (coverage, hull) ->
          let applies =
            List.length coverage = List.length idxs
            && List.for_all2 Itv.subset idxs coverage
          in
          if applies then
            let m = Itv.meet acc hull in
            if Itv.is_bot m then acc else m
          else acc)
        Itv.top facts

(* ------------------------------------------------------------------ *)
(* Hypothesis mining                                                   *)
(* ------------------------------------------------------------------ *)

let rec flatten_conj (t : F.t) acc =
  match t.F.node with
  | F.App (F.And, args) -> List.fold_right flatten_conj args acc
  | _ -> t :: acc

let itv_at_most v =
  match v with
  | Itv.Bot -> Itv.bot
  | Itv.Itv { hi; _ } -> Itv.make Itv.Ninf hi

let itv_at_least v =
  match v with
  | Itv.Bot -> Itv.bot
  | Itv.Itv { lo; _ } -> Itv.make lo Itv.Pinf

let pred n =
  match n with
  | Itv.Bot -> Itv.bot
  | Itv.Itv { hi = Itv.Fin h; _ } -> Itv.make Itv.Ninf (Itv.Fin (h - 1))
  | _ -> Itv.top

let succ n =
  match n with
  | Itv.Bot -> Itv.bot
  | Itv.Itv { lo = Itv.Fin l; _ } -> Itv.make (Itv.Fin (l + 1)) Itv.Pinf
  | _ -> Itv.top

(* The root array variable of a select chain, with the index terms
   outermost first; [None] when the chain is not rooted at a variable. *)
let rec select_root (t : F.t) idxs =
  match t.F.node with
  | F.App (F.Select, [ a; i ]) -> select_root a (i :: idxs)
  | F.Var a when idxs <> [] -> Some (a, idxs)
  | _ -> None

(* Mine one atomic fact into the environment.  [quant] maps quantified
   variable names (innermost scope last) to their binding intervals:
   inside [forall k in lo..hi], facts about [select (a, k)] become
   element-hull facts covering [lo, hi]. *)
let rec mine_fact env quant (t : F.t) =
  let constrain_cmp mk_left mk_right a b =
    (* a CMP b: refine whichever side is a plain variable *)
    (match a.F.node with
    | F.Var x when not (List.mem_assoc x quant) ->
        refine env x (mk_left (eval env b))
    | _ -> ());
    match b.F.node with
    | F.Var x when not (List.mem_assoc x quant) ->
        refine env x (mk_right (eval env a))
    | _ -> ()
  in
  let elem_bound sel_side mk other =
    match select_root sel_side [] with
    | Some (a, idx_terms) ->
        let covers =
          List.map
            (fun idx ->
              match idx.F.node with
              | F.Var k when List.mem_assoc k quant -> Some (List.assoc k quant)
              | _ -> None)
            idx_terms
        in
        if quant <> [] && List.for_all Option.is_some covers then
          add_array_fact env a
            (List.map Option.get covers)
            (mk (eval env other))
    | None -> ()
  in
  match t.F.node with
  | F.App (F.And, _) -> List.iter (mine_fact env quant) (flatten_conj t [])
  | F.App (F.Le, [ a; b ]) ->
      constrain_cmp itv_at_most itv_at_least a b;
      elem_bound a itv_at_most b;
      elem_bound b itv_at_least a
  | F.App (F.Ge, [ a; b ]) ->
      constrain_cmp itv_at_least itv_at_most a b;
      elem_bound a itv_at_least b;
      elem_bound b itv_at_most a
  | F.App (F.Lt, [ a; b ]) ->
      constrain_cmp pred succ a b;
      elem_bound a pred b;
      elem_bound b succ a
  | F.App (F.Gt, [ a; b ]) ->
      constrain_cmp succ pred a b;
      elem_bound a succ b;
      elem_bound b pred a
  | F.App (F.Eq, [ a; b ]) -> (
      (match (a.F.node, b.F.node) with
      | F.Var x, _ when not (List.mem_assoc x quant) ->
          refine env x (eval env b)
      | _, F.Var x when not (List.mem_assoc x quant) ->
          refine env x (eval env a)
      | _ -> ());
      elem_bound a (fun v -> v) b;
      elem_bound b (fun v -> v) a;
      (* constant-table defining equation: c = arrlit (...) *)
      match (a.F.node, b.F.node) with
      | F.Var c, F.App (F.Arrlit first, elems)
      | F.App (F.Arrlit first, elems), F.Var c ->
          let hull =
            List.fold_left
              (fun acc e -> Itv.join acc (eval env e))
              Itv.bot elems
          in
          add_array_fact env c
            [ Itv.range first (first + List.length elems - 1) ]
            hull
      | _ -> ())
  | F.Forall (k, lo, hi, body) ->
      let kv =
        match (eval env lo, eval env hi) with
        | Itv.Itv { lo = l; _ }, Itv.Itv { hi = h; _ } -> Itv.make l h
        | _ -> Itv.top
      in
      List.iter (mine_fact env ((k, kv) :: quant)) (flatten_conj body [])
  | _ -> ()

let mine_hyps hyps =
  let env = { scalars = Hashtbl.create 32; arrays = Hashtbl.create 8 } in
  let facts = List.fold_right flatten_conj hyps [] in
  (* a few rounds let bounds that mention other bounded variables
     tighten transitively (refinement is a meet, hence monotone) *)
  for _ = 1 to 3 do
    List.iter (mine_fact env []) facts
  done;
  env

(* ------------------------------------------------------------------ *)
(* Goal checking (definite only)                                       *)
(* ------------------------------------------------------------------ *)

let rec definite env (t : F.t) =
  match t.F.node with
  | F.Bool true -> true
  | F.App (F.And, args) -> List.for_all (definite env) args
  | F.App (F.Le, [ a; b ]) -> Itv.definitely_le (eval env a) (eval env b)
  | F.App (F.Lt, [ a; b ]) -> Itv.definitely_lt (eval env a) (eval env b)
  | F.App (F.Ge, [ a; b ]) -> Itv.definitely_le (eval env b) (eval env a)
  | F.App (F.Gt, [ a; b ]) -> Itv.definitely_lt (eval env b) (eval env a)
  | F.App (F.Ne, [ a; b ]) -> Itv.definitely_ne (eval env a) (eval env b)
  | F.App (F.Eq, [ a; b ]) -> Itv.definitely_eq (eval env a) (eval env b)
  | _ -> false

let vc_discharged (vc : F.vc) =
  attempted_kind vc.F.vc_kind
  &&
  let env = mine_hyps vc.F.vc_hyps in
  definite env vc.F.vc_goal
