(** The analyzer front door — the reproduction's stand-in for running the
    SPARK Examiner's flow analysis before any proof is attempted.

    Bundles the three instantiations of the dataflow framework: flow
    checks ({!Flow}), amenability lint ({!Amenability}), and — when
    [vcs] is set — interval discharge of exception-freedom VCs
    ({!Discharge}) over a fresh {!Vcgen} run.  When VC generation blows
    its budget the analysis degrades gracefully: flow and amenability
    results are kept, the discharge counts read 0, and a note records
    the §6.2.2 "VCs too complicated" situation. *)

type t = {
  ex_flow : Diag.t list;
  ex_amen : Diag.t list;
  ex_vcs_total : int;  (** exception-freedom VCs considered *)
  ex_vcs_discharged : int;
  ex_discharged : (string * string) list;
      (** (subprogram, VC name) of each statically discharged VC *)
  ex_notes : string list;
}

val analyze :
  ?vcs:bool ->
  ?budget:Vcgen.budget ->
  Minispark.Typecheck.env ->
  Minispark.Ast.program ->
  t
(** [vcs] defaults to [false] (flow + amenability only). *)

(** Number of error-severity diagnostics. *)
val errors : t -> int

(** All diagnostics, flow first. *)
val diags : t -> Diag.t list

val to_json : t -> Telemetry.Json.t
val pp : Format.formatter -> t -> unit
