(** Interval-plus-congruence abstract domain.

    An abstract value is either [Bot] (unreachable / no concrete value) or
    an interval [lo, hi] over possibly-infinite bounds, refined by a
    congruence component [(m, r)]: when [m >= 2] every concrete value [x]
    satisfies [x mod m = r] (with [0 <= r < m]); [m = 1] carries no
    congruence information; [m = 0] marks an exact singleton ([lo = hi =
    Fin r]), the strongest class â joining the constants 0 and 4 yields
    the stride-4 class, and semantically equal singletons are structurally
    equal.  The domain respects MiniSpark [Tint] range subtypes and [Tmod]
    wrap-around semantics. *)

type bound = Ninf | Fin of int | Pinf

type t =
  | Bot
  | Itv of { lo : bound; hi : bound; m : int; r : int }

val top : t
val bot : t
val is_bot : t -> bool

(** [make lo hi] builds the plain interval [lo, hi] (no congruence). *)
val make : bound -> bound -> t

(** Singleton [n, n] with exact congruence. *)
val const : int -> t

(** Finite range [lo, hi]; [Bot] if [lo > hi]. *)
val range : int -> int -> t

(** Abstract value of every member of a MiniSpark type, if bounded.
    [Tint (Some (lo,hi))] and [Tmod m] yield finite ranges; [Tbool],
    unconstrained [Tint None] and arrays yield [top] (callers handle array
    element hulls separately). *)
val of_typ : Minispark.Typecheck.env -> Minispark.Ast.typ -> t

(* Lattice operations *)

val join : t -> t -> t
val meet : t -> t -> t
val widen : t -> t -> t
val equal : t -> t -> bool

(** [subset a b] holds when every concrete value of [a] is a value of [b]. *)
val subset : t -> t -> bool

(** [contains v n] holds when concrete [n] is a member of [v]. *)
val contains : t -> int -> bool

(* Arithmetic transfer functions (sound over-approximations) *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** MiniSpark division: truncated, only precise when the divisor interval
    excludes zero; otherwise [top]. *)
val div : t -> t -> t

(** MiniSpark [mod] with a strictly-positive divisor interval gives
    [0, max_divisor - 1]; otherwise [top]. *)
val md : t -> t -> t

val neg : t -> t

(** [wrap m v] reduces [v] modulo [m] (the [Tmod m] assignment wrap).
    Values already inside [0, m-1] pass through unchanged. *)
val wrap : int -> t -> t

(** Bitwise operators; the [int] is the modulus payload from [Logic] /
    the typechecked width ([0] = unbounded).  [band] additionally meets
    with a literal mask when one side is a known nonneg constant. *)
val band : int -> t -> t -> t
val bor : int -> t -> t -> t
val bxor : int -> t -> t -> t
val bnot : int -> t -> t
val shl : int -> t -> t -> t
val shr : int -> t -> t -> t

(* Comparison refinement: definite truth of [a op b], if decidable. *)

val definitely_lt : t -> t -> bool
val definitely_le : t -> t -> bool
val definitely_eq : t -> t -> bool

(** Definite disequality: disjoint intervals, or congruence classes that
    can never coincide. *)
val definitely_ne : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
