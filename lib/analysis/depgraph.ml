open Minispark

type edge_kind = Ecall | Espec | Eglobal of Ast.ident

let edge_kind_name = function
  | Ecall -> "call"
  | Espec -> "spec"
  | Eglobal g -> "global:" ^ g

(* call > spec > global: when several edges link the same pair, the
   strongest reason is the one reported. *)
let edge_rank = function Ecall -> 2 | Espec -> 1 | Eglobal _ -> 0

module SS = Set.Make (String)

type node = {
  n_body_refs : SS.t;   (** subprogram names referenced from the body *)
  n_spec_refs : SS.t;   (** subprogram names referenced from pre/post *)
  n_greads : SS.t;
  n_gwrites : SS.t;
  n_decls : SS.t;       (** const/global/type declarations referenced *)
}

type t = {
  order : string list;
  nodes : (string, node) Hashtbl.t;
  fwd : (string, (string * edge_kind) list) Hashtbl.t;
  rev : (string, (string * edge_kind) list) Hashtbl.t;
}

(* {2 Reference collection} *)

let expr_sub_refs ~is_sub acc e =
  let acc = ref acc in
  Ast.iter_expr
    (function Ast.Call (f, _) when is_sub f -> acc := SS.add f !acc | _ -> ())
    e;
  !acc

let expr_name_refs acc e =
  List.fold_left (fun s v -> SS.add v s) acc (Ast.expr_vars e)

(* Every expression attached to a subprogram: body statements (guards,
   bounds, invariants, assertions, arguments), local initialisers and the
   contract annotations. *)
let iter_sub_exprs ~spec f (sub : Ast.subprogram) =
  Ast.iter_stmts (Ast.iter_own_exprs f) sub.Ast.sub_body;
  List.iter
    (fun (v : Ast.var_decl) -> Option.iter f v.Ast.v_init)
    sub.Ast.sub_locals;
  if spec then begin
    Option.iter f sub.Ast.sub_pre;
    Option.iter f sub.Ast.sub_post
  end

let rec typ_named acc = function
  | Ast.Tnamed n -> SS.add n acc
  | Ast.Tarray (_, _, elt) -> typ_named acc elt
  | Ast.Tbool | Ast.Tint _ | Ast.Tmod _ -> acc

let build (program : Ast.program) =
  let subs = Ast.subprograms program in
  let sub_names =
    List.fold_left (fun s (sp : Ast.subprogram) -> SS.add sp.Ast.sub_name s)
      SS.empty subs
  in
  let is_sub n = SS.mem n sub_names in
  let global_names =
    List.fold_left (fun s (v : Ast.var_decl) -> SS.add v.Ast.v_name s)
      SS.empty (Ast.global_vars program)
  in
  let const_names =
    List.fold_left (fun s (k : Ast.const_decl) -> SS.add k.Ast.k_name s)
      SS.empty (Ast.constants program)
  in
  let type_env = Ast.type_decls program in
  (* Direct references of each program-level declaration: a constant's
     value may read other constants or globals, a global initialiser
     likewise, and any declared type can mention further type names —
     declaration dependency is closed over all of these, so a change to
     [K2] in [K1 : T := K2 + 1] reaches everything that reads [K1]. *)
  let decl_ref_map = Hashtbl.create 16 in
  let expr_decl_refs e =
    List.fold_left (fun s v -> SS.add v s) SS.empty (Ast.expr_vars e)
    |> SS.filter (fun v -> SS.mem v const_names || SS.mem v global_names)
  in
  List.iter
    (fun (n, rhs) -> Hashtbl.replace decl_ref_map n (typ_named SS.empty rhs))
    type_env;
  List.iter
    (fun (k : Ast.const_decl) ->
      Hashtbl.replace decl_ref_map k.Ast.k_name
        (SS.union (typ_named SS.empty k.Ast.k_typ) (expr_decl_refs k.Ast.k_value)))
    (Ast.constants program);
  List.iter
    (fun (v : Ast.var_decl) ->
      Hashtbl.replace decl_ref_map v.Ast.v_name
        (SS.union
           (typ_named SS.empty v.Ast.v_typ)
           (match v.Ast.v_init with
           | Some e -> expr_decl_refs e
           | None -> SS.empty)))
    (Ast.global_vars program);
  let close_decls init =
    let rec go acc frontier =
      match SS.choose_opt frontier with
      | None -> acc
      | Some n ->
          let frontier = SS.remove n frontier in
          if SS.mem n acc then go acc frontier
          else
            let acc = SS.add n acc in
            let more =
              match Hashtbl.find_opt decl_ref_map n with
              | Some refs -> SS.diff refs acc
              | None -> SS.empty
            in
            go acc (SS.union frontier more)
    in
    go SS.empty init
  in
  let out_params_of name =
    match Ast.find_sub program name with
    | None -> []
    | Some sp ->
        List.mapi (fun i (p : Ast.param) -> (i, p.Ast.par_mode)) sp.Ast.sub_params
        |> List.filter_map (fun (i, m) -> if m <> Ast.Mode_in then Some i else None)
  in
  let node_of (sp : Ast.subprogram) =
    let shadowed =
      List.fold_left (fun s (p : Ast.param) -> SS.add p.Ast.par_name s)
        SS.empty sp.Ast.sub_params
      |> fun s ->
      List.fold_left (fun s (v : Ast.var_decl) -> SS.add v.Ast.v_name s) s
        sp.Ast.sub_locals
    in
    (* Subprogram references from the body (including local initialisers
       and call statements) vs from the contract. *)
    let body_refs = ref SS.empty and spec_refs = ref SS.empty in
    iter_sub_exprs ~spec:false
      (fun e -> body_refs := expr_sub_refs ~is_sub !body_refs e)
      sp;
    Ast.iter_stmts
      (function
        | Ast.Call_stmt (p, _) when is_sub p ->
            body_refs := SS.add p !body_refs
        | _ -> ())
      sp.Ast.sub_body;
    Option.iter
      (fun e -> spec_refs := expr_sub_refs ~is_sub !spec_refs e)
      sp.Ast.sub_pre;
    Option.iter
      (fun e -> spec_refs := expr_sub_refs ~is_sub !spec_refs e)
      sp.Ast.sub_post;
    (* Name references (variables and constants), with locals and
       parameters shadowing globals. *)
    let names = ref SS.empty in
    iter_sub_exprs ~spec:true (fun e -> names := expr_name_refs !names e) sp;
    let visible = SS.diff !names shadowed in
    let greads =
      let reads =
        List.fold_left (fun s v -> SS.add v s) SS.empty
          (Ast.read_vars sp.Ast.sub_body)
      in
      let reads =
        List.fold_left
          (fun s (v : Ast.var_decl) ->
            match v.Ast.v_init with
            | Some e -> expr_name_refs s e
            | None -> s)
          reads sp.Ast.sub_locals
      in
      let reads =
        List.fold_left
          (fun s e -> match e with Some e -> expr_name_refs s e | None -> s)
          reads [ sp.Ast.sub_pre; sp.Ast.sub_post ]
      in
      SS.inter (SS.diff reads shadowed) global_names
    in
    let gwrites =
      let writes =
        List.fold_left (fun s v -> SS.add v s) SS.empty
          (Ast.written_vars ~out_params_of sp.Ast.sub_body)
      in
      SS.inter (SS.diff writes shadowed) global_names
    in
    (* Declarations the subprogram's meaning reads: referenced constants
       and globals, plus every named type its signature or objects
       mention — closed over declaration right-hand sides. *)
    let consts = SS.inter visible const_names in
    let own_types =
      let t = ref SS.empty in
      List.iter
        (fun (p : Ast.param) -> t := typ_named !t p.Ast.par_typ)
        sp.Ast.sub_params;
      Option.iter (fun ty -> t := typ_named !t ty) sp.Ast.sub_return;
      List.iter
        (fun (v : Ast.var_decl) -> t := typ_named !t v.Ast.v_typ)
        sp.Ast.sub_locals;
      !t
    in
    {
      n_body_refs = !body_refs;
      n_spec_refs = !spec_refs;
      n_greads = greads;
      n_gwrites = gwrites;
      n_decls =
        close_decls
          (SS.union consts (SS.union (SS.union greads gwrites) own_types));
    }
  in
  let nodes = Hashtbl.create 32 in
  List.iter
    (fun (sp : Ast.subprogram) ->
      Hashtbl.replace nodes sp.Ast.sub_name (node_of sp))
    subs;
  let fwd = Hashtbl.create 32 and rev = Hashtbl.create 32 in
  let add tbl k v kind =
    let merge edges =
      match List.assoc_opt v edges with
      | Some k' when edge_rank k' >= edge_rank kind -> edges
      | Some _ -> (v, kind) :: List.remove_assoc v edges
      | None -> (v, kind) :: edges
    in
    Hashtbl.replace tbl k (merge (Option.value ~default:[] (Hashtbl.find_opt tbl k)))
  in
  let add_edge src dst kind =
    if src <> dst then begin
      add fwd src dst kind;
      add rev dst src kind
    end
  in
  Hashtbl.iter
    (fun name node ->
      SS.iter (fun c -> add_edge name c Ecall) node.n_body_refs;
      SS.iter (fun c -> add_edge name c Espec) node.n_spec_refs)
    nodes;
  (* Global dataflow: a reader of [g] depends on every writer of [g]. *)
  let writers = Hashtbl.create 8 in
  Hashtbl.iter
    (fun name node ->
      SS.iter
        (fun g ->
          Hashtbl.replace writers g
            (name :: Option.value ~default:[] (Hashtbl.find_opt writers g)))
        node.n_gwrites)
    nodes;
  Hashtbl.iter
    (fun name node ->
      SS.iter
        (fun g ->
          List.iter
            (fun w -> add_edge name w (Eglobal g))
            (Option.value ~default:[] (Hashtbl.find_opt writers g)))
        node.n_greads)
    nodes;
  let order = List.map (fun (sp : Ast.subprogram) -> sp.Ast.sub_name) subs in
  { order; nodes; fwd; rev }

(* {2 Queries} *)

let subs t = t.order

let sorted_edges tbl name =
  Option.value ~default:[] (Hashtbl.find_opt tbl name)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let callees t name = sorted_edges t.fwd name
let callers t name = sorted_edges t.rev name

let direct_callers t name =
  callers t name
  |> List.filter_map (fun (c, k) ->
         match k with Ecall | Espec -> Some c | Eglobal _ -> None)

let node_opt t name = Hashtbl.find_opt t.nodes name

let globals_read t name =
  match node_opt t name with
  | None -> []
  | Some n -> SS.elements n.n_greads

let globals_written t name =
  match node_opt t name with
  | None -> []
  | Some n -> SS.elements n.n_gwrites

let decl_refs t name =
  match node_opt t name with None -> [] | Some n -> SS.elements n.n_decls

let dependents t seeds =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
        if SS.mem s acc then go acc rest
        else
          let acc = SS.add s acc in
          let preds = List.map fst (callers t s) in
          go acc (preds @ rest)
  in
  SS.elements (go SS.empty seeds)

let eval_deps t name =
  match node_opt t name with
  | None -> []
  | Some node ->
      (* Functions the prover may apply while ground-evaluating [name]'s
         VCs: those its own text references, plus those appearing in its
         direct callees' contracts (which vcgen inlines into the caller's
         obligations).  Close under body references — the interpreter
         executes bodies, transitively. *)
      let direct = SS.union node.n_body_refs node.n_spec_refs in
      let seeds =
        SS.fold
          (fun callee acc ->
            match node_opt t callee with
            | None -> acc
            | Some cn -> SS.union acc cn.n_spec_refs)
          direct direct
      in
      let rec close acc frontier =
        match SS.choose_opt frontier with
        | None -> acc
        | Some f ->
            let frontier = SS.remove f frontier in
            if SS.mem f acc then close acc frontier
            else
              let acc = SS.add f acc in
              let more =
                match node_opt t f with
                | None -> SS.empty
                | Some fn -> SS.diff fn.n_body_refs acc
              in
              close acc (SS.union frontier more)
      in
      SS.elements (SS.remove name (close SS.empty seeds))

let decl_closure t names =
  List.fold_left
    (fun acc n ->
      List.fold_left (fun acc d -> SS.add d acc) acc (decl_refs t n))
    SS.empty names
  |> SS.elements

let edge_count t = Hashtbl.fold (fun _ es n -> n + List.length es) t.fwd 0

let pp ppf t =
  Fmt.pf ppf "@[<v>dependency graph: %d subprograms, %d edges@,"
    (List.length t.order) (edge_count t);
  List.iter
    (fun s ->
      match callees t s with
      | [] -> ()
      | es ->
          Fmt.pf ppf "  %s -> %a@," s
            Fmt.(list ~sep:(any ", ") (fun ppf (d, k) ->
                     Fmt.pf ppf "%s[%s]" d (edge_kind_name k)))
            es)
    t.order;
  Fmt.pf ppf "@]"

let to_json t =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"subprograms\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":%S,\"callees\":[" s);
      List.iteri
        (fun j (d, k) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"to\":%S,\"kind\":%S}" d (edge_kind_name k)))
        (callees t s);
      Buffer.add_string b "],\"globals_read\":[";
      List.iteri
        (fun j g ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S" g))
        (globals_read t s);
      Buffer.add_string b "],\"globals_written\":[";
      List.iteri
        (fun j g ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S" g))
        (globals_written t s);
      Buffer.add_string b "]}")
    t.order;
  Buffer.add_string b
    (Printf.sprintf "],\"edges\":%d}" (edge_count t));
  Buffer.contents b
