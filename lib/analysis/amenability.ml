open Minispark

let reroll_findings program =
  List.map
    (fun (sub, start, group_len, count) ->
      Diag.make ~sub Diag.AMEN_REROLL
        (Printf.sprintf
           "%d unrolled iterations of %d statement(s) starting at statement \
            %d: Refactor.Reroll.reroll applies"
           count group_len start))
    (Refactor.Reroll.suggest program)

let clone_findings program =
  (* rerolling subsumes single-subprogram repetition; surface clones that
     span subprograms or are long enough to be worth extracting *)
  List.filter_map
    (fun (c : Refactor.Inline_reverse.clone) ->
      let subs =
        List.sort_uniq compare (List.map fst c.Refactor.Inline_reverse.cl_occurrences)
      in
      if List.length c.Refactor.Inline_reverse.cl_occurrences < 2 then None
      else
        let sub = match subs with s :: _ -> s | [] -> "" in
        Some
          (Diag.make ~sub Diag.AMEN_CLONE
             (Printf.sprintf
                "%d occurrences of a %d-statement clone in %s: \
                 Refactor.Inline_reverse.extract_procedure applies"
                (List.length c.Refactor.Inline_reverse.cl_occurrences)
                c.Refactor.Inline_reverse.cl_len
                (String.concat ", " subs)))
        )
    (Refactor.Inline_reverse.suggest_clones program)

let table_findings program =
  let const_arrays =
    List.filter_map
      (fun (c : Ast.const_decl) ->
        match c.Ast.k_value with
        | Ast.Aggregate _ -> Some c.Ast.k_name
        | _ -> None)
      (Ast.constants program)
  in
  if const_arrays = [] then []
  else
    let counts = Hashtbl.create 8 in
    List.iter
      (fun (sub : Ast.subprogram) ->
        Ast.iter_stmts
          (fun stmt ->
            Ast.iter_own_exprs
              (fun e ->
                Ast.iter_expr
                  (fun e ->
                    match e with
                    | Ast.Index (Ast.Var t, _) when List.mem t const_arrays ->
                        let k = (t, sub.Ast.sub_name) in
                        Hashtbl.replace counts k
                          (1 + try Hashtbl.find counts k with Not_found -> 0)
                    | _ -> ())
                  e)
              stmt)
          sub.Ast.sub_body)
      (Ast.subprograms program);
    let per_table = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (t, sub) n ->
        let sites, subs =
          try Hashtbl.find per_table t with Not_found -> (0, [])
        in
        Hashtbl.replace per_table t (sites + n, sub :: subs))
      counts;
    Hashtbl.fold
      (fun t (sites, subs) acc ->
        if sites >= 2 then
          Diag.make
            ~sub:(match List.sort compare subs with s :: _ -> s | [] -> "")
            Diag.AMEN_TABLE
            (Printf.sprintf
               "constant table '%s' looked up at %d sites (%s): \
                Refactor.Table_reverse.reverse applies"
               t sites
               (String.concat ", " (List.sort_uniq compare subs)))
          :: acc
        else acc)
      per_table []

(* Count shifted operands in the or/xor combining tree of [e]. *)
let rec shifted_operands (e : Ast.expr) =
  match e with
  | Ast.Binop ((Ast.Bor | Ast.Bxor | Ast.Or), a, b) ->
      shifted_operands a + shifted_operands b
  | Ast.Binop (Ast.Shl, _, _) | Ast.Binop (Ast.Shr, _, _) -> 1
  | Ast.Binop (Ast.Band, a, b) -> max (shifted_operands a) (shifted_operands b)
  | _ -> 0

(* Count maximal packed expressions, not every or/xor node inside one. *)
let rec count_packed (e : Ast.expr) =
  match e with
  | Ast.Binop ((Ast.Bor | Ast.Bxor), _, _) when shifted_operands e >= 2 -> 1
  | Ast.Binop (_, a, b) -> count_packed a + count_packed b
  | Ast.Unop (_, a) -> count_packed a
  | Ast.Index (a, b) -> count_packed a + count_packed b
  | Ast.Call (_, args) | Ast.Aggregate args ->
      List.fold_left (fun n a -> n + count_packed a) 0 args
  | Ast.Quantified (_, _, lo, hi, body) ->
      count_packed lo + count_packed hi + count_packed body
  | _ -> 0

let packed_findings program =
  List.filter_map
    (fun (sub : Ast.subprogram) ->
      let hits = ref 0 in
      Ast.iter_stmts
        (fun stmt ->
          Ast.iter_own_exprs (fun e -> hits := !hits + count_packed e) stmt)
        sub.Ast.sub_body;
      if !hits > 0 then
        Some
          (Diag.make ~sub:sub.Ast.sub_name Diag.AMEN_PACKED
             (Printf.sprintf
                "%d packed-word pack/unpack expression(s) (or/xor of shifted \
                 fields): Refactor.Data_structures.word_to_bytes applies"
                !hits))
      else None)
    (Ast.subprograms program)

(* Dead code rides the lint: the paper's transformations match on
   statement windows, and dead stores or unused declarations both widen
   those windows and block exact clone matches — remove them first. *)
let dead_findings flow =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Diag.t) ->
      match d.Diag.d_code with
      | Diag.FLOW_UNUSED | Diag.FLOW_INEFFECTIVE | Diag.FLOW_DEAD_INIT
      | Diag.FLOW_UNUSED_GLOBAL ->
          Hashtbl.replace tbl d.Diag.d_sub
            (1 + (try Hashtbl.find tbl d.Diag.d_sub with Not_found -> 0))
      | _ -> ())
    flow;
  List.sort compare
    (Hashtbl.fold
       (fun sub n acc ->
         Diag.make ~sub Diag.AMEN_DEAD
           (Printf.sprintf
              "%d dead-code finding(s) (unused declarations, dead stores): \
               removing them first shrinks and stabilises the statement \
               windows the refactoring matchers work on"
              n)
         :: acc)
       tbl [])

let check ?(flow = []) program =
  reroll_findings program @ clone_findings program @ table_findings program
  @ packed_findings program @ dead_findings flow
