open Minispark

type change =
  | Unchanged
  | Body_changed
  | Sig_or_spec_changed
  | Added
  | Removed

let change_name = function
  | Unchanged -> "unchanged"
  | Body_changed -> "body-changed"
  | Sig_or_spec_changed -> "sig-or-spec-changed"
  | Added -> "added"
  | Removed -> "removed"

type t = {
  sd_subs : (Ast.ident * change) list;
  sd_decls : Ast.ident list;
}

(* Digests are taken over the canonical pretty-printed form: the printer
   round-trips through the parser, so two sources that parse to the same
   AST — whatever their spacing or comments — digest identically. *)

let mode_tag = function
  | Ast.Mode_in -> "in"
  | Ast.Mode_out -> "out"
  | Ast.Mode_in_out -> "in out"

let sig_string (sp : Ast.subprogram) =
  let b = Buffer.create 128 in
  Buffer.add_string b sp.Ast.sub_name;
  List.iter
    (fun (p : Ast.param) ->
      Buffer.add_string b
        (Printf.sprintf "|%s:%s:%s" p.Ast.par_name (mode_tag p.Ast.par_mode)
           (Pretty.typ_to_string p.Ast.par_typ)))
    sp.Ast.sub_params;
  Buffer.add_string b
    (match sp.Ast.sub_return with
    | Some ty -> "|ret:" ^ Pretty.typ_to_string ty
    | None -> "|proc");
  Buffer.add_string b
    (match sp.Ast.sub_pre with
    | Some e -> "|pre:" ^ Pretty.expr_to_string e
    | None -> "|pre:-");
  Buffer.add_string b
    (match sp.Ast.sub_post with
    | Some e -> "|post:" ^ Pretty.expr_to_string e
    | None -> "|post:-");
  Buffer.contents b

let body_string (sp : Ast.subprogram) =
  let b = Buffer.create 256 in
  List.iter
    (fun (v : Ast.var_decl) ->
      Buffer.add_string b
        (Printf.sprintf "|%s:%s:%s" v.Ast.v_name
           (Pretty.typ_to_string v.Ast.v_typ)
           (match v.Ast.v_init with
           | Some e -> Pretty.expr_to_string e
           | None -> "-")))
    sp.Ast.sub_locals;
  Buffer.add_string b "||";
  Buffer.add_string b (Pretty.stmts_to_string sp.Ast.sub_body);
  Buffer.contents b

let hex s = Digest.to_hex (Digest.string s)
let sig_digest sp = hex (sig_string sp)
let body_digest sp = hex (body_string sp)
let sub_digest sp = hex (sig_string sp ^ "##" ^ body_string sp)

let decl_digests (p : Ast.program) =
  let ds = ref [] in
  List.iter
    (fun (n, ty) -> ds := (n, hex ("type:" ^ Pretty.typ_to_string ty)) :: !ds)
    (Ast.type_decls p);
  List.iter
    (fun (k : Ast.const_decl) ->
      ds :=
        ( k.Ast.k_name,
          hex
            (Printf.sprintf "const:%s:%s"
               (Pretty.typ_to_string k.Ast.k_typ)
               (Pretty.expr_to_string k.Ast.k_value)) )
        :: !ds)
    (Ast.constants p);
  List.iter
    (fun (v : Ast.var_decl) ->
      ds :=
        ( v.Ast.v_name,
          hex
            (Printf.sprintf "var:%s:%s"
               (Pretty.typ_to_string v.Ast.v_typ)
               (match v.Ast.v_init with
               | Some e -> Pretty.expr_to_string e
               | None -> "-")) )
        :: !ds)
    (Ast.global_vars p);
  List.rev !ds

let diff ~old_p ~new_p =
  let old_subs = Ast.subprograms old_p and new_subs = Ast.subprograms new_p in
  let classify (sp : Ast.subprogram) =
    match Ast.find_sub new_p sp.Ast.sub_name with
    | None -> (sp.Ast.sub_name, Removed)
    | Some sp' ->
        if sig_digest sp <> sig_digest sp' then
          (sp.Ast.sub_name, Sig_or_spec_changed)
        else if body_digest sp <> body_digest sp' then
          (sp.Ast.sub_name, Body_changed)
        else (sp.Ast.sub_name, Unchanged)
  in
  let of_old = List.map classify old_subs in
  let added =
    List.filter_map
      (fun (sp : Ast.subprogram) ->
        match Ast.find_sub old_p sp.Ast.sub_name with
        | None -> Some (sp.Ast.sub_name, Added)
        | Some _ -> None)
      new_subs
  in
  let old_decls = decl_digests old_p and new_decls = decl_digests new_p in
  let decl_changed =
    let changed_or_removed =
      List.filter_map
        (fun (n, d) ->
          match List.assoc_opt n new_decls with
          | Some d' when d' = d -> None
          | _ -> Some n)
        old_decls
    in
    let added =
      List.filter_map
        (fun (n, _) ->
          match List.assoc_opt n old_decls with
          | None -> Some n
          | Some _ -> None)
        new_decls
    in
    List.sort_uniq compare (changed_or_removed @ added)
  in
  { sd_subs = of_old @ added; sd_decls = decl_changed }

let changed_subs t =
  List.filter_map
    (fun (n, c) -> if c = Unchanged then None else Some n)
    t.sd_subs
  |> List.sort compare

let sig_changed_subs t =
  List.filter_map
    (fun (n, c) ->
      match c with
      | Sig_or_spec_changed | Added | Removed -> Some n
      | Unchanged | Body_changed -> None)
    t.sd_subs
  |> List.sort compare

let is_empty t = changed_subs t = [] && t.sd_decls = []

let pp ppf t =
  if is_empty t then Fmt.pf ppf "no semantic changes"
  else begin
    Fmt.pf ppf "@[<v>";
    List.iter
      (fun (n, c) ->
        if c <> Unchanged then Fmt.pf ppf "%-28s %s@," n (change_name c))
      t.sd_subs;
    List.iter (fun d -> Fmt.pf ppf "%-28s decl-changed@," d) t.sd_decls;
    Fmt.pf ppf "@]"
  end

let to_json t =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"subprograms\":[";
  List.iteri
    (fun i (n, c) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":%S,\"change\":%S}" n (change_name c)))
    t.sd_subs;
  Buffer.add_string b "],\"decls_changed\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S" d))
    t.sd_decls;
  Buffer.add_string b "]}";
  Buffer.contents b
