open Minispark

type reason =
  | R_changed of Semdiff.change
  | R_caller of Ast.ident
  | R_eval_dep of Ast.ident
  | R_decl of Ast.ident
  | R_vc_drift

let reason_name = function
  | R_changed c -> Semdiff.change_name c
  | R_caller s -> "calls-changed-spec:" ^ s
  | R_eval_dep s -> "evaluates:" ^ s
  | R_decl d -> "references-changed-decl:" ^ d
  | R_vc_drift -> "vc-drift"

type plan = {
  pl_diff : Semdiff.t;
  pl_graph : Depgraph.t;
  pl_impacted : (Ast.ident * reason list) list;
  pl_carried : Ast.ident list;
}

module SS = Set.Make (String)
module SM = Map.Make (String)

let finish diff graph impacted all_subs =
  let impacted_names =
    SM.fold (fun n _ s -> SS.add n s) impacted SS.empty
  in
  {
    pl_diff = diff;
    pl_graph = graph;
    pl_impacted =
      SM.bindings impacted |> List.map (fun (n, rs) -> (n, List.rev rs));
    pl_carried =
      List.filter (fun s -> not (SS.mem s impacted_names)) all_subs
      |> List.sort compare;
  }

let compute ~old_p ~new_p =
  let diff = Semdiff.diff ~old_p ~new_p in
  let graph = Depgraph.build new_p in
  let all_subs = Depgraph.subs graph in
  let changed = SS.of_list (Semdiff.changed_subs diff) in
  let sig_changed = SS.of_list (Semdiff.sig_changed_subs diff) in
  let changed_decls = SS.of_list diff.Semdiff.sd_decls in
  let impacted = ref SM.empty in
  let add name reason =
    impacted :=
      SM.update name
        (function None -> Some [ reason ] | Some rs -> Some (reason :: rs))
        !impacted
  in
  (* 1. Edited subprograms re-prove (removed ones no longer have VCs). *)
  List.iter
    (fun (n, c) ->
      if c <> Semdiff.Unchanged && c <> Semdiff.Removed then add n (R_changed c))
    diff.Semdiff.sd_subs;
  (* 2. Signature/spec changes escalate to direct callers: their VCs
     embed the callee's contract. *)
  SS.iter
    (fun callee ->
      List.iter
        (fun caller ->
          if List.mem caller all_subs then add caller (R_caller callee))
        (Depgraph.direct_callers graph callee))
    sig_changed;
  (* 3. Evaluation frontier: the prover executes function bodies, so a
     body change anywhere a subprogram's VCs can reach by evaluation
     invalidates its verdicts. *)
  List.iter
    (fun s ->
      List.iter
        (fun d -> if SS.mem d changed then add s (R_eval_dep d))
        (Depgraph.eval_deps graph s))
    all_subs;
  (* 4. Changed declarations: constants and globals feed both the VC text
     and the evaluation environment; types alter bounds obligations. *)
  if not (SS.is_empty changed_decls) then
    List.iter
      (fun s ->
        let refs =
          Depgraph.decl_closure graph (s :: Depgraph.eval_deps graph s)
        in
        List.iter
          (fun d -> if SS.mem d changed_decls then add s (R_decl d))
          refs)
      all_subs;
  finish diff graph !impacted all_subs

let refine plan ~baseline ~current =
  let norm digests = List.sort compare digests in
  let impacted =
    List.fold_left
      (fun m (n, rs) -> SM.add n rs m)
      SM.empty plan.pl_impacted
  in
  let impacted = ref impacted in
  List.iter
    (fun s ->
      let drifted =
        match (List.assoc_opt s baseline, List.assoc_opt s current) with
        | Some b, Some c -> norm b <> norm c
        | None, None -> false
        | _ -> true
      in
      if drifted then
        impacted :=
          SM.update s
            (function
              | None -> Some [ R_vc_drift ]
              | Some rs -> Some (rs @ [ R_vc_drift ]))
            !impacted)
    plan.pl_carried;
  finish plan.pl_diff plan.pl_graph !impacted (Depgraph.subs plan.pl_graph)

let impacted_subs plan = List.map fst plan.pl_impacted
let is_impacted plan name = List.mem_assoc name plan.pl_impacted

let pp ppf plan =
  let total =
    List.length plan.pl_impacted + List.length plan.pl_carried
  in
  Fmt.pf ppf "@[<v>impact: %d of %d subprograms re-prove@,"
    (List.length plan.pl_impacted) total;
  List.iter
    (fun (n, rs) ->
      Fmt.pf ppf "  %-28s %a@," n
        Fmt.(list ~sep:(any ", ") (fun ppf r -> string ppf (reason_name r)))
        rs)
    plan.pl_impacted;
  if plan.pl_carried <> [] then
    Fmt.pf ppf "  carried: %a@,"
      Fmt.(list ~sep:(any ", ") string)
      plan.pl_carried;
  Fmt.pf ppf "@]"

let to_json plan =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"diff\":";
  Buffer.add_string b (Semdiff.to_json plan.pl_diff);
  Buffer.add_string b ",\"impacted\":[";
  List.iteri
    (fun i (n, rs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":%S,\"reasons\":[" n);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%S" (reason_name r)))
        rs;
      Buffer.add_string b "]}")
    plan.pl_impacted;
  Buffer.add_string b "],\"carried\":[";
  List.iteri
    (fun i n ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%S" n))
    plan.pl_carried;
  Buffer.add_string b "]}";
  Buffer.contents b
