(** Change-impact analysis: compose {!Depgraph} and {!Semdiff} into the
    minimal sound re-prove set (§15).

    A subprogram must be re-proved when any of the following holds;
    everything else keeps its baseline verdicts:

    - its own text changed ({!Semdiff} classified it as anything other
      than unchanged);
    - it directly calls (or references from its contract) a subprogram
      whose signature or spec changed — vcgen inlines callee contracts
      into caller obligations;
    - some subprogram whose body the prover may ground-evaluate while
      discharging its VCs changed ({!Depgraph.eval_deps});
    - a program-level declaration (type, constant, global) that its text
      or its evaluation frontier references changed.

    The static argument is backstopped by a VC-digest refinement
    ({!refine}): after re-generating VCs for the new program, any
    subprogram whose per-VC digest set drifted from the baseline is
    escalated into the re-prove set regardless of what the graph said. *)

open Minispark

type reason =
  | R_changed of Semdiff.change
  | R_caller of Ast.ident        (** direct callee's signature/spec changed *)
  | R_eval_dep of Ast.ident      (** evaluation frontier includes a changed
                                     subprogram *)
  | R_decl of Ast.ident          (** references a changed declaration *)
  | R_vc_drift                   (** VC digest set differs from baseline *)

val reason_name : reason -> string

type plan = {
  pl_diff : Semdiff.t;
  pl_graph : Depgraph.t;             (** graph of the {e new} program *)
  pl_impacted : (Ast.ident * reason list) list;  (** sorted by name *)
  pl_carried : Ast.ident list;
      (** subprograms of the new program whose baseline verdicts remain
          valid, sorted *)
}

val compute : old_p:Ast.program -> new_p:Ast.program -> plan
(** Static plan from the two program versions (both should be the
    normalised form returned by {!Typecheck.check}). *)

val refine :
  plan ->
  baseline:(Ast.ident * string list) list ->
  current:(Ast.ident * string list) list ->
  plan
(** Escalate any currently-carried subprogram whose VC digest set under
    the new program differs from the baseline's (or that is missing from
    either side).  [baseline] and [current] map subprogram names to their
    VC digests, order-insensitive. *)

val impacted_subs : plan -> Ast.ident list
val is_impacted : plan -> Ast.ident -> bool

val pp : plan Fmt.t
(** Human-readable impact table. *)

val to_json : plan -> string
