(** Static discharge of exception-freedom VCs by interval reasoning.

    Works directly on {!Logic.Formula} verification conditions, mining
    the hypotheses for interval facts and checking whether the goal is a
    consequence — no prover involved.  Only exception-freedom kinds
    ([Vc_index_check], [Vc_range_check], [Vc_div_check],
    [Vc_overflow_check]) are attempted: their goals are conjunctions of
    bound and disequality constraints, exactly the shape an interval
    domain decides.  Everything here is a {e definite} check: [true]
    means the goal provably holds under the hypotheses, so dropping the
    VC from the prover queue is sound.

    Mined hypothesis shapes:
    - comparison facts [x <= e] / [x >= e] / [x < e] / [x > e] /
      [x = e] with a variable on either side and the other side
      evaluable to an interval (this covers [Vcgen]'s subtype range
      facts, loop [in_range] hypotheses, and derived bounds with
      non-literal endpoints such as [(nr - 1) / 2]);
    - conjunctions, recursively (range facts arrive as
      [lo <= x and x <= hi]);
    - array literal equations [c = arrlit(...)], yielding an element
      hull for constant tables;
    - bounded-quantifier element bounds
      [forall k in lo..hi, P(select(a, k))], yielding an element hull
      for [a].

    Facts are iterated to a small fixpoint so that bounds depending on
    other bounded variables (e.g. [j <= 4 * nr] with [nr <= 14])
    tighten transitively. *)

(** [vc_discharged vc] — can the goal be proved by interval evaluation
    of the hypotheses alone? *)
val vc_discharged : Logic.Formula.vc -> bool

(** The exception-freedom kinds {!vc_discharged} attempts; it returns
    [false] immediately for every other kind. *)
val attempted_kind : Logic.Formula.vc_kind -> bool
