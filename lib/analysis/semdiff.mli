(** Semantic diff between two versions of a MiniSpark program (§15).

    Subprograms are compared by digests of their canonical pretty-printed
    form, so formatting, comments and source spans never register as
    changes — only the abstract syntax does.  Two digests are kept per
    subprogram: one over the interface (name, parameters, return type,
    pre/postcondition) and one over the implementation (locals and body),
    so the differ can distinguish a body-only edit — whose effect is
    confined to the subprogram's own VCs and to provers that evaluate its
    body — from a signature-or-spec change, which {!Impact} escalates to
    every caller. *)

open Minispark

type change =
  | Unchanged
  | Body_changed
  | Sig_or_spec_changed   (** interface digest differs (body may too) *)
  | Added
  | Removed

val change_name : change -> string

type t = {
  sd_subs : (Ast.ident * change) list;
      (** every subprogram of either version, in old-then-new declaration
          order *)
  sd_decls : Ast.ident list;
      (** program-level declarations (types, constants, globals) whose
          definition changed, was added or was removed *)
}

val sig_digest : Ast.subprogram -> string
(** Digest of the interface: name, parameters, return type and
    contract. *)

val body_digest : Ast.subprogram -> string
(** Digest of the implementation: local declarations and body. *)

val sub_digest : Ast.subprogram -> string
(** Digest of the whole canonical form ([sig_digest] + [body_digest]). *)

val diff : old_p:Ast.program -> new_p:Ast.program -> t

val changed_subs : t -> Ast.ident list
(** Names with any change other than [Unchanged], sorted. *)

val sig_changed_subs : t -> Ast.ident list
(** Names classified [Sig_or_spec_changed], [Added] or [Removed] —
    the changes that escalate to callers.  Sorted. *)

val is_empty : t -> bool

val pp : t Fmt.t
val to_json : t -> string
