(** Interval abstract interpretation of MiniSpark subprograms.

    The abstract state maps each scalar variable to an {!Itv.t}; an
    array-typed variable maps to the {e hull} of its elements (one
    interval covering every element any execution could store).  Missing
    bindings read as top.  Assignments to a [Tmod] variable wrap; [Tint]
    range subtypes are {e not} clamped on assignment — staying inside the
    range is a proof obligation, not a dynamic truncation, exactly as in
    {!Minispark.Interp}.  Uninitialised locals start at the singleton of
    {!Minispark.Interp.default_value}, matching the interpreter. *)

type state = Itv.t Map.Make(String).t

val lookup : state -> string -> Itv.t

(** Abstract value of an expression in a state.  [sub] scopes
    {!Minispark.Typecheck.expr_type} lookups for bitwise operand widths. *)
val eval :
  Minispark.Typecheck.env ->
  Minispark.Ast.program ->
  Minispark.Ast.subprogram option ->
  state ->
  Minispark.Ast.expr ->
  Itv.t

(** Entry state of a subprogram: parameters at their type ranges, locals
    at their initialiser values (or interpreter defaults), globals and
    constants at their declared / computed values. *)
val entry_state :
  Minispark.Typecheck.env ->
  Minispark.Ast.program ->
  Minispark.Ast.subprogram ->
  state

(** Run the body from the entry state; [None] when every path returns.
    The result maps each variable to an interval containing every value
    it can hold at subprogram exit. *)
val analyze_sub :
  Minispark.Typecheck.env ->
  Minispark.Ast.program ->
  Minispark.Ast.subprogram ->
  state option

(** [(var, interval)] view of {!analyze_sub} for tests and reports. *)
val exit_intervals :
  Minispark.Typecheck.env ->
  Minispark.Ast.program ->
  Minispark.Ast.subprogram ->
  (string * Itv.t) list
