(** Structured analyzer diagnostics: machine-readable code, severity,
    subprogram, and a best-effort line anchor into the pretty-printed
    program (MiniSpark AST nodes carry no source locations). *)

type severity = Error | Warning | Info

type code =
  | FLOW_UNINIT  (** read of a variable on a path with no prior write *)
  | FLOW_OUT_UNSET  (** [out] parameter never assigned in the body *)
  | FLOW_INEFFECTIVE  (** assignment whose value is never used *)
  | FLOW_UNUSED  (** local or parameter referenced nowhere *)
  | FLOW_UNUSED_GLOBAL
      (** program-level constant or global in no subprogram's
          declaration frontier *)
  | FLOW_DEAD_INIT
      (** declaration initializer overwritten before any read *)
  | FLOW_UNREACHABLE  (** statement after an unconditional [Return] *)
  | FLOW_STABLE_COND  (** [While] condition no body statement can change *)
  | AMEN_REROLL  (** unrolled loop run; [Refactor.Reroll] applies *)
  | AMEN_CLONE  (** repeated clone; [Refactor.Inline_reverse] applies *)
  | AMEN_TABLE  (** constant-table lookups; table-introduction applies *)
  | AMEN_PACKED  (** packed-word shift/mask idiom *)
  | AMEN_DEAD  (** dead code from the flow checks; remove before refactoring *)

type t = {
  d_code : code;
  d_severity : severity;
  d_sub : string;  (** enclosing subprogram, or [""] for program level *)
  d_line : int;  (** 1-based line in the pretty-printed program; 0 = none *)
  d_message : string;
}

val make :
  ?severity:severity -> ?sub:string -> ?line:int -> code -> string -> t
(** [make code msg].  Severity defaults to the code's natural severity:
    [FLOW_UNINIT] and [FLOW_OUT_UNSET] are errors, other flow checks are
    warnings, amenability findings are informational. *)

val code_name : code -> string
val severity_name : severity -> string
val count : severity -> t list -> int

(** [anchor program ~sub stmt] locates the first pretty-printed line of
    [stmt] inside [sub]'s section of [Pretty.program_to_string program];
    returns 0 when the text does not appear (e.g. after rewriting). *)
val anchor : Minispark.Ast.program -> sub:string -> Minispark.Ast.stmt -> int

val to_json : t -> Telemetry.Json.t
val pp : Format.formatter -> t -> unit
