(** Verification-condition generation for MiniSpark — the stand-in for the
    SPARK Examiner.

    Forward symbolic execution between cut points produces postcondition,
    call-precondition, loop-invariant, assert, and exception-freedom VCs.
    Resource accounting reproduces the paper's §6.2.2 observation that
    optimized (unrolled, packed) code makes VC generation explode: term
    sizes are tracked as unfolded node counts and generation aborts with
    {!Infeasible} past a budget — the analogue of the SPARK tools running
    out of memory. *)

open Minispark

exception Infeasible of string

type budget = {
  max_vc_nodes : int;      (** per-VC unfolded node cap *)
  max_total_nodes : int;   (** whole-program cap *)
  max_paths : int;         (** per-subprogram symbolic path cap *)
}

val default_budget : budget

type sub_report = {
  sr_sub : string;
  sr_vcs : Logic.Formula.vc list;
  sr_sizes : (string * int) list;  (** per-VC unfolded node counts *)
  sr_discharged : string list;
      (** names of VCs statically discharged by analysis; empty until
          {!tag_discharged} is applied *)
}

val generate_sub :
  ?budget:budget -> Typecheck.env -> Ast.program -> Ast.subprogram -> sub_report
(** @raise Infeasible when the budget is exceeded. *)

type report = {
  r_subs : sub_report list;
  r_infeasible : string option;
      (** why generation stopped, mirroring the paper's "no value because
          the VCs were too complicated" columns *)
}

val generate : ?budget:budget -> Typecheck.env -> Ast.program -> report
(** Generate VCs for every subprogram; on budget exhaustion the
    subprograms analysed so far are kept and the failure recorded. *)

val all_vcs : report -> Logic.Formula.vc list

(** Mark every VC the oracle proves statically in its subprogram's
    [sr_discharged] list — the per-VC "discharged-by-analysis" tag.
    Formulas are untouched; proof schedulers skip the tagged names. *)
val tag_discharged :
  oracle:(Logic.Formula.vc -> bool) -> report -> report
val total_nodes : report -> int

val provenance : report -> (string * string list) list
(** Per-subprogram VC provenance: each subprogram paired with the names
    of the VCs generated from it, in generation order.  This is the map
    change-impact analysis ({!Analysis.Impact}) keys re-prove sets on. *)

val vc_digests : report -> (string * string list) list
(** Per-subprogram digests ({!Logic.Formula.vc_digest}) of the generated
    formulas, order-preserving; used to detect VC drift between two
    generation runs over different program versions. *)

val bytes_of_nodes : int -> int
(** Approximate printed bytes of an unfolded term tree (~8 per node). *)

val equivalence_sub :
  ?budget:budget ->
  before:Typecheck.env * Ast.program ->
  after:Typecheck.env * Ast.program ->
  string -> Logic.Formula.vc list
(** Equivalence VCs for one subprogram present in two program versions:
    both bodies are executed symbolically from a shared initial state
    (same parameter symbols = equal inputs; objects whose definitions
    differ are side-tagged with their own defining equations), and the
    product of exit paths yields one [Vc_equivalence] goal per observable
    output — function result, out / in-out parameter, written global —
    under both versions' preconditions (the applicability
    side-conditions).

    @raise Infeasible when a body has loops (outputs would be
    havoc-under-constrained — the differential oracle covers those), when
    the path product or node budget is exceeded, or when there is no
    comparable output. *)

val max_vc_lines : report -> int
(** Printed-line length of the longest VC (the paper's "maximum length of
    verification conditions" metric). *)
