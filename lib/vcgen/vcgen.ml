(* Verification-condition generation for MiniSpark — the stand-in for the
   SPARK Examiner.

   Per subprogram, a forward symbolic execution between cut points (entry,
   asserts, loop invariants, exit) produces VCs for:
   - the postcondition on every path reaching the exit;
   - callee preconditions at every call site;
   - loop-invariant establishment and preservation;
   - [Assert] statements;
   - exception freedom: array index checks, range checks on assignments to
     range-subtyped objects, and division-by-zero checks.

   Resource accounting reproduces the paper's observation that unrolled,
   optimised code makes VC generation explode: every symbolic term carries a
   size estimate (the node count of its fully unfolded tree, which is what
   printing the VC would produce) and generation aborts with [Infeasible]
   when a per-VC or total budget is exceeded — the analogue of the SPARK
   tools running out of memory on the original AES (§6.2.2). *)

open Minispark
module F = Logic.Formula

exception Infeasible of string
(** VC generation exceeded its resource budget. *)

type budget = {
  max_vc_nodes : int;      (** per-VC unfolded node cap *)
  max_total_nodes : int;   (** whole-program cap *)
  max_paths : int;         (** per-subprogram symbolic path cap *)
}

let default_budget =
  { max_vc_nodes = 6_000_000; max_total_nodes = 40_000_000; max_paths = 64 }

(* A term with the node count of its fully-unfolded tree (terms share
   subtrees in memory; the estimate is what printing would cost). *)
type sized = { t : F.t; n : int }

let leaf t = { t; n = 1 }
let app1 op a = { t = F.app op [ a.t ]; n = a.n + 1 }
let app2 op a b = { t = F.app op [ a.t; b.t ]; n = a.n + b.n + 1 }
let app3 op a b c = { t = F.app op [ a.t; b.t; c.t ]; n = a.n + b.n + c.n + 1 }

type sym_state = {
  bindings : (string * sized) list;  (** program variable -> current term *)
  hyps : sized list;                 (** reversed hypothesis list *)
}

type gen = {
  env : Typecheck.env;
  program : Ast.program;
  budget : budget;
  mutable total_nodes : int;
  mutable fresh : int;
  mutable vcs : F.vc list;
  mutable sizes : (string * int) list;  (** vc name -> unfolded node count *)
  sub : Ast.subprogram;
  var_types : (string * Ast.typ) list;  (** resolved types of all visible objects *)
  record_vcs : bool;
      (** false in equivalence mode: safety/annotation VCs are budgeted but
          not recorded — only the final-state equalities matter there *)
  mutable returns : (sym_state * sized option) list;
      (** exit paths ended by [Return], with the result term — collected so
          equivalence generation can compare final states across versions *)
}

let fresh_name g base =
  g.fresh <- g.fresh + 1;
  Printf.sprintf "%s__%d" base g.fresh

(* ------------------------------------------------------------------ *)
(* Types of expressions (resolved, lightweight)                        *)
(* ------------------------------------------------------------------ *)

let rec type_of g (e : Ast.expr) : Ast.typ =
  match e with
  | Ast.Bool_lit _ -> Ast.Tbool
  | Ast.Int_lit _ -> Ast.Tint None
  | Ast.Var x | Ast.Old x -> (
      match List.assoc_opt x g.var_types with
      | Some t -> t
      | None -> Ast.Tint None (* loop variables and havoc symbols *))
  | Ast.Result -> (
      match g.sub.Ast.sub_return with
      | Some t -> Typecheck.resolve g.env t
      | None -> Ast.Tint None)
  | Ast.Index (a, _) -> (
      match type_of g a with
      | Ast.Tarray (_, _, elt) -> elt
      | _ -> Ast.Tint None)
  | Ast.Unop (Ast.Not, a) -> type_of g a
  | Ast.Unop (Ast.Neg, a) -> type_of g a
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) -> (
      match (type_of g a, type_of g b) with
      | Ast.Tmod m, _ | _, Ast.Tmod m -> Ast.Tmod m
      | _ -> Ast.Tint None)
  | Ast.Binop ((Ast.Band | Ast.Bor | Ast.Bxor), a, b) -> (
      match (type_of g a, type_of g b) with
      | Ast.Tmod m, _ | _, Ast.Tmod m -> Ast.Tmod m
      | Ast.Tbool, _ -> Ast.Tbool
      | _ -> Ast.Tint None)
  | Ast.Binop ((Ast.Shl | Ast.Shr), a, _) -> type_of g a
  | Ast.Binop ((Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _)
  | Ast.Binop ((Ast.And | Ast.Or | Ast.And_then | Ast.Or_else), _, _)
  | Ast.Quantified _ ->
      Ast.Tbool
  | Ast.Call (name, _) -> (
      match Ast.find_sub g.program name with
      | Some { Ast.sub_return = Some t; _ } -> Typecheck.resolve g.env t
      | _ -> Ast.Tint None)
  | Ast.Aggregate es -> Ast.Tarray (0, List.length es - 1, Ast.Tint None)

let modulus_of g e = match type_of g e with Ast.Tmod m -> m | _ -> 0

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

let lookup_binding st x =
  match List.assoc_opt x st.bindings with
  | Some s -> s
  | None -> leaf (F.var x)

(* [old_prefix]: how to translate [Old x] — entry-value symbol. *)
let old_sym x = x ^ "~"

let rec tr g st (e : Ast.expr) : sized =
  match e with
  | Ast.Bool_lit b -> leaf (F.bool_ b)
  | Ast.Int_lit n -> leaf (F.num n)
  | Ast.Var x -> lookup_binding st x
  | Ast.Old x -> leaf (F.var (old_sym x))
  | Ast.Result -> leaf (F.var "result!")
  | Ast.Index (a, i) -> app2 F.Select (tr g st a) (tr g st i)
  | Ast.Unop (Ast.Neg, a) ->
      let m = modulus_of g a in
      let base = app1 F.Neg (tr g st a) in
      if m > 0 then app1 (F.Wrap m) base else base
  | Ast.Unop (Ast.Not, a) -> (
      match type_of g a with
      | Ast.Tmod m -> app1 (F.Bnot m) (tr g st a)
      | _ -> app1 F.Not (tr g st a))
  | Ast.Binop (op, a, b) -> tr_binop g st op a b
  | Ast.Call (name, args) -> (
      let args' = List.map (tr g st) args in
      let t = F.app (F.Uf name) (List.map (fun s -> s.t) args') in
      let n = List.fold_left (fun acc s -> acc + s.n) 1 args' in
      match () with () -> { t; n })
  | Ast.Aggregate es ->
      let es' = List.map (tr g st) es in
      { t = F.app (F.Arrlit 0) (List.map (fun s -> s.t) es');
        n = List.fold_left (fun acc s -> acc + s.n) 1 es' }
  | Ast.Quantified (q, x, lo, hi, body) ->
      let lo' = tr g st lo and hi' = tr g st hi in
      (* the bound variable must not be captured by current bindings *)
      let st' = { st with bindings = List.remove_assoc x st.bindings } in
      let body' = tr g st' body in
      let mk =
        match q with
        | Ast.Forall -> fun l h b -> F.forall x l h b
        | Ast.Exists -> fun l h b -> F.exists x l h b
      in
      { t = mk lo'.t hi'.t body'.t; n = lo'.n + hi'.n + body'.n + 1 }

and tr_binop g st op a b =
  let wrap_mod m s = if m > 0 then app1 (F.Wrap m) s else s in
  let m () =
    match (type_of g a, type_of g b) with
    | Ast.Tmod m, _ | _, Ast.Tmod m -> m
    | _ -> 0
  in
  let ta = tr g st a and tb = tr g st b in
  match op with
  | Ast.Add -> wrap_mod (m ()) (app2 F.Add ta tb)
  | Ast.Sub -> wrap_mod (m ()) (app2 F.Sub ta tb)
  | Ast.Mul -> wrap_mod (m ()) (app2 F.Mul ta tb)
  | Ast.Div -> wrap_mod (m ()) (app2 F.Div ta tb)
  | Ast.Mod -> wrap_mod (m ()) (app2 F.Mod_op ta tb)
  | Ast.Eq -> app2 F.Eq ta tb
  | Ast.Ne -> app2 F.Ne ta tb
  | Ast.Lt -> app2 F.Lt ta tb
  | Ast.Le -> app2 F.Le ta tb
  | Ast.Gt -> app2 F.Gt ta tb
  | Ast.Ge -> app2 F.Ge ta tb
  | Ast.And | Ast.And_then -> (
      match type_of g a with
      | Ast.Tmod mm -> app2 (F.Band mm) ta tb
      | _ -> app2 F.And ta tb)
  | Ast.Or | Ast.Or_else -> (
      match type_of g a with
      | Ast.Tmod mm -> app2 (F.Bor mm) ta tb
      | _ -> app2 F.Or ta tb)
  | Ast.Band -> app2 (F.Band (m ())) ta tb
  | Ast.Bor -> app2 (F.Bor (m ())) ta tb
  | Ast.Bxor -> (
      match type_of g a with
      | Ast.Tbool -> app2 (F.Bxor 0) ta tb
      | _ -> app2 (F.Bxor (m ())) ta tb)
  | Ast.Shl -> app2 (F.Shl (m ())) ta tb
  | Ast.Shr -> app2 (F.Shr (m ())) ta tb

(* ------------------------------------------------------------------ *)
(* VC emission                                                         *)
(* ------------------------------------------------------------------ *)

let emit g st kind goal_sized =
  let hyp_nodes = List.fold_left (fun acc h -> acc + h.n) 0 st.hyps in
  let vc_nodes = hyp_nodes + goal_sized.n in
  if vc_nodes > g.budget.max_vc_nodes then
    raise (Infeasible
             (Printf.sprintf "VC in %s exceeds per-VC budget (%d nodes)"
                g.sub.Ast.sub_name vc_nodes));
  g.total_nodes <- g.total_nodes + vc_nodes;
  if g.total_nodes > g.budget.max_total_nodes then
    raise (Infeasible
             (Printf.sprintf "total VC budget exceeded in %s" g.sub.Ast.sub_name));
  if g.record_vcs then begin
    let name = Printf.sprintf "%s.%d" g.sub.Ast.sub_name (List.length g.vcs + 1) in
    let vc =
      {
        F.vc_name = name;
        vc_sub = g.sub.Ast.sub_name;
        vc_kind = kind;
        vc_hyps = List.rev_map (fun h -> h.t) st.hyps;
        vc_goal = goal_sized.t;
      }
    in
    g.vcs <- vc :: g.vcs;
    g.sizes <- (name, vc_nodes) :: g.sizes
  end

let add_hyp st h = { st with hyps = h :: st.hyps }

let set_var st x s = { st with bindings = (x, s) :: List.remove_assoc x st.bindings }

(* type-derived range facts for a symbol; nested array levels quantify
   over distinct bound variables *)
let rec range_fact ?(depth = 0) g (t : Ast.typ) (sym : F.t) : F.t option =
  match t with
  | Ast.Tint (Some (lo, hi)) ->
      Some (F.app F.And [ F.app F.Ge [ sym; F.num lo ];
                          F.app F.Le [ sym; F.num hi ] ])
  | Ast.Tmod m ->
      Some (F.app F.And [ F.app F.Ge [ sym; F.num 0 ];
                          F.app F.Lt [ sym; F.num m ] ])
  | Ast.Tarray (lo, hi, elt) -> (
      let k = Printf.sprintf "k!%d" depth in
      match range_fact ~depth:(depth + 1) g elt (F.select sym (F.var k)) with
      | Some body -> Some (F.forall k (F.num lo) (F.num hi) body)
      | None -> None)
  | Ast.Tbool | Ast.Tint None | Ast.Tnamed _ -> None

let sized_of_formula f = { t = f; n = F.node_count f }

(* havoc a variable: bind to a fresh symbol, with its type range assumed *)
let havoc g st x =
  let sym = fresh_name g x in
  let st = set_var st x (leaf (F.var sym)) in
  match List.assoc_opt x g.var_types with
  | Some t -> (
      match range_fact g t (F.var sym) with
      | Some fact -> add_hyp st (sized_of_formula fact)
      | None -> st)
  | None -> st

(* ------------------------------------------------------------------ *)
(* Exception-freedom checks inside expressions                          *)
(* ------------------------------------------------------------------ *)

let rec check_expr_safety g st (e : Ast.expr) =
  match e with
  | Ast.Bool_lit _ | Ast.Int_lit _ | Ast.Var _ | Ast.Old _ | Ast.Result -> ()
  | Ast.Index (a, i) -> (
      check_expr_safety g st a;
      check_expr_safety g st i;
      match type_of g a with
      | Ast.Tarray (lo, hi, _) ->
          let ti = tr g st i in
          let goal =
            app2 F.And
              (app2 F.Ge ti (leaf (F.num lo)))
              (app2 F.Le ti (leaf (F.num hi)))
          in
          emit g st F.Vc_index_check goal
      | _ -> ())
  | Ast.Unop (_, a) -> check_expr_safety g st a
  | Ast.Binop ((Ast.Div | Ast.Mod), a, b) ->
      check_expr_safety g st a;
      check_expr_safety g st b;
      emit g st F.Vc_div_check (app2 F.Ne (tr g st b) (leaf (F.num 0)))
  | Ast.Binop (_, a, b) ->
      check_expr_safety g st a;
      check_expr_safety g st b
  | Ast.Call (name, args) ->
      List.iter (check_expr_safety g st) args;
      emit_call_pre g st name args
  | Ast.Aggregate es -> List.iter (check_expr_safety g st) es
  | Ast.Quantified (_, _, lo, hi, _) ->
      (* quantified bodies appear in annotations; bounds still checked *)
      check_expr_safety g st lo;
      check_expr_safety g st hi

and emit_call_pre g st name args =
  match Ast.find_sub g.program name with
  | Some callee -> (
      match callee.Ast.sub_pre with
      | None -> ()
      | Some pre ->
          (* substitute actuals for formals in the precondition *)
          let subst_env =
            List.map2
              (fun (p : Ast.param) a -> (p.Ast.par_name, a))
              callee.Ast.sub_params args
          in
          let pre' = Ast.subst_expr subst_env pre in
          emit g st F.Vc_precondition_call (tr g st pre'))
  | None -> ()

(* assume the contract of a called function at an applied occurrence *)
let assume_function_posts g st (e : Ast.expr) =
  let st_ref = ref st in
  Ast.iter_expr
    (fun sub_e ->
      match sub_e with
      | Ast.Call (name, args) -> (
          match Ast.find_sub g.program name with
          | Some callee -> (
              match callee.Ast.sub_post with
              | None -> ()
              | Some post ->
                  let subst_env =
                    List.map2
                      (fun (p : Ast.param) a -> (p.Ast.par_name, a))
                      callee.Ast.sub_params args
                  in
                  let post' = Ast.subst_expr subst_env post in
                  (* Result -> the application itself *)
                  let post' =
                    Ast.map_expr
                      (function Ast.Result -> sub_e | x -> x)
                      post'
                  in
                  st_ref := add_hyp !st_ref (tr g !st_ref post'))
          | None -> ())
      | _ -> ())
    e;
  !st_ref

(* ------------------------------------------------------------------ *)
(* Statement-level symbolic execution                                  *)
(* ------------------------------------------------------------------ *)

(* Represent an assignment target path: translate nested stores. *)
let rec store_path g st (lv : Ast.lvalue) (value : sized) : string * sized =
  match lv with
  | Ast.Lvar x -> (x, value)
  | Ast.Lindex (lv', i) ->
      let cur = tr g st (Ast.expr_of_lvalue lv') in
      let ti = tr g st i in
      store_path g st lv' (app3 F.Store cur ti value)

let range_check_assign g st (t : Ast.typ) (value : sized) =
  match t with
  | Ast.Tint (Some (lo, hi)) ->
      let goal =
        app2 F.And
          (app2 F.Ge value (leaf (F.num lo)))
          (app2 F.Le value (leaf (F.num hi)))
      in
      emit g st F.Vc_range_check goal
  | _ -> ()

let rec lvalue_type g (lv : Ast.lvalue) : Ast.typ =
  match lv with
  | Ast.Lvar x -> (
      match List.assoc_opt x g.var_types with
      | Some t -> t
      | None -> Ast.Tint None)
  | Ast.Lindex (lv', _) -> (
      match lvalue_type g lv' with
      | Ast.Tarray (_, _, elt) -> elt
      | _ -> Ast.Tint None)

(* Each statement transforms a list of live paths.  Paths that return are
   finalised immediately (postcondition VC for functions). *)
type path = sym_state

let rec exec_stmt g (paths : path list) (stmt : Ast.stmt) : path list =
  if List.length paths > g.budget.max_paths then
    raise (Infeasible (Printf.sprintf "path explosion in %s" g.sub.Ast.sub_name));
  match stmt with
  | Ast.Null -> paths
  | Ast.Assert e ->
      List.map
        (fun st ->
          check_expr_safety g st e;
          let st = assume_function_posts g st e in
          emit g st F.Vc_assert (tr g st e);
          add_hyp st (tr g st e))
        paths
  | Ast.Assign (lv, e) ->
      List.map
        (fun st ->
          check_expr_safety g st (Ast.expr_of_lvalue lv);
          check_expr_safety g st e;
          let st = assume_function_posts g st e in
          let value = tr g st e in
          range_check_assign g st (lvalue_type g lv) value;
          (* index checks on the target were done via expr_of_lvalue above *)
          let x, stored = store_path g st lv value in
          set_var st x stored)
        paths
  | Ast.If (branches, els) ->
      List.concat_map
        (fun st ->
          let rec go st_nots branches =
            match branches with
            | [] ->
                let st' = List.fold_left add_hyp st st_nots in
                exec_stmts g [ st' ] els
            | (guard, body) :: rest ->
                check_expr_safety g st guard;
                let st_g = assume_function_posts g st guard in
                let tg = tr g st_g guard in
                let taken = List.fold_left add_hyp st_g st_nots in
                let taken = add_hyp taken tg in
                let this_paths = exec_stmts g [ taken ] body in
                let not_g = app1 F.Not tg in
                this_paths @ go (not_g :: st_nots) rest
          in
          go [] branches)
        paths
  | Ast.For fl -> List.concat_map (fun st -> exec_for g st fl) paths
  | Ast.While wl -> List.concat_map (fun st -> exec_while g st wl) paths
  | Ast.Return e ->
      List.iter
        (fun st ->
          (match e with
          | Some e ->
              check_expr_safety g st e;
              let st = assume_function_posts g st e in
              let r = tr g st e in
              g.returns <- (st, Some r) :: g.returns;
              finalize_post g st ~result:(Some r)
          | None ->
              g.returns <- (st, None) :: g.returns;
              finalize_post g st ~result:None))
        paths;
      [] (* path ends *)
  | Ast.Call_stmt (name, args) ->
      List.map (fun st -> exec_call g st name args) paths

and exec_stmts g paths stmts = List.fold_left (exec_stmt g) paths stmts

and exec_call g st name args =
  List.iter (fun a -> check_expr_safety g st a) args;
  emit_call_pre g st name args;
  match Ast.find_sub g.program name with
  | None -> st
  | Some callee ->
      (* snapshot in-going actual values for Old in the callee post *)
      let formals = callee.Ast.sub_params in
      let pre_values =
        List.map2 (fun (p : Ast.param) a -> (p.Ast.par_name, tr g st a)) formals args
      in
      (* havoc written actuals *)
      let st' =
        List.fold_left2
          (fun st (p : Ast.param) a ->
            match (p.Ast.par_mode, a) with
            | (Ast.Mode_out | Ast.Mode_in_out), Ast.Var x -> havoc g st x
            | _ -> st)
          st formals args
      in
      (* assume the callee postcondition, translated over formals:
         formal -> new actual term; Old formal -> pre-call actual term *)
      (match callee.Ast.sub_post with
      | None -> st'
      | Some post ->
          let subst_new =
            List.map2 (fun (p : Ast.param) a -> (p.Ast.par_name, a)) formals args
          in
          let post =
            Ast.map_expr
              (function
                | Ast.Old x when List.mem_assoc x subst_new ->
                    (* encode as marker; replaced below *)
                    Ast.Old ("__pre_" ^ x)
                | e -> e)
              post
          in
          let post = Ast.subst_expr subst_new post in
          let tpost = tr g st' post in
          (* patch the Old markers with pre-call terms *)
          let rec patch (t : F.t) : F.t =
            match t.F.node with
            | F.Var v when String.length v > 6 && String.sub v 0 6 = "__pre_" ->
                let x = String.sub v 6 (String.length v - 6) in
                let x = if x.[String.length x - 1] = '~' then String.sub x 0 (String.length x - 1) else x in
                (match List.assoc_opt x pre_values with
                | Some s -> s.t
                | None -> t)
            | F.Int _ | F.Bool _ | F.Var _ -> t
            | F.App (op, args) -> F.app op (List.map patch args)
            | F.Ite (c, a, b) -> F.ite (patch c) (patch a) (patch b)
            | F.Forall (x, lo, hi, b) -> F.forall x (patch lo) (patch hi) (patch b)
            | F.Exists (x, lo, hi, b) -> F.exists x (patch lo) (patch hi) (patch b)
          in
          add_hyp st' { tpost with t = patch tpost.t })

and exec_for g st (fl : Ast.for_loop) : path list =
  check_expr_safety g st fl.Ast.for_lo;
  check_expr_safety g st fl.Ast.for_hi;
  let lo = tr g st fl.Ast.for_lo and hi = tr g st fl.Ast.for_hi in
  let i = fl.Ast.for_var in
  let first = if fl.Ast.for_reverse then hi else lo in
  let last = if fl.Ast.for_reverse then lo else hi in
  let next v =
    if fl.Ast.for_reverse then app2 F.Sub v (leaf (F.num 1))
    else app2 F.Add v (leaf (F.num 1))
  in
  let written =
    Ast.written_vars
      ~out_params_of:(fun name ->
        match Ast.find_sub g.program name with
        | Some callee ->
            List.mapi (fun k (p : Ast.param) -> (k, p.Ast.par_mode)) callee.Ast.sub_params
            |> List.filter_map (fun (k, m) ->
                   match m with Ast.Mode_out | Ast.Mode_in_out -> Some k | Ast.Mode_in -> None)
        | None -> [])
      fl.Ast.for_body
  in
  (* 1. invariant init: i = first *)
  let st_entry = set_var st i first in
  List.iter
    (fun inv ->
      let guard_nonempty = app2 F.Le lo hi in
      let st' = add_hyp st_entry guard_nonempty in
      emit g st' F.Vc_invariant_init (tr g st' inv))
    fl.Ast.for_invariants;
  (* 2. preservation: havoc written vars, assume invariant at i, execute
     body, prove invariant at next i *)
  let st_h = List.fold_left (fun st x -> havoc g st x) st written in
  let iv = fresh_name g i in
  let st_h = set_var st_h i (leaf (F.var iv)) in
  let in_range =
    app2 F.And (app2 F.Ge (leaf (F.var iv)) lo) (app2 F.Le (leaf (F.var iv)) hi)
  in
  let st_h = add_hyp st_h in_range in
  let st_h =
    List.fold_left (fun st inv -> add_hyp st (tr g st inv)) st_h fl.Ast.for_invariants
  in
  let body_paths = exec_stmts g [ st_h ] fl.Ast.for_body in
  if fl.Ast.for_invariants <> [] then
    List.iter
      (fun st_end ->
        let st_next = set_var st_end i (next (leaf (F.var iv))) in
        let continue = app2 F.Ne (leaf (F.var iv)) last in
        let st_next = add_hyp st_next continue in
        List.iter
          (fun inv -> emit g st_next F.Vc_invariant_preserve (tr g st_next inv))
          fl.Ast.for_invariants)
      body_paths;
  (* 3. after the loop: havoc written vars; if invariants exist, assume them
     at the exit index; fork on empty loop *)
  let st_exit = List.fold_left (fun st x -> havoc g st x) st written in
  let exit_index = next last in
  let st_exit = set_var st_exit i exit_index in
  let st_exit =
    List.fold_left (fun st inv -> add_hyp st (tr g st inv)) st_exit fl.Ast.for_invariants
  in
  (* remove the loop variable binding after the loop *)
  let st_exit = { st_exit with bindings = List.remove_assoc i st_exit.bindings } in
  (* constant bounds don't fork: emptiness is statically known *)
  match (lo.t.F.node, hi.t.F.node) with
  | F.Int l, F.Int h when l <= h -> [ add_hyp st_exit (app2 F.Le lo hi) ]
  | F.Int _, F.Int _ -> [ st ]
  | _ ->
      let st_nonempty = add_hyp st_exit (app2 F.Le lo hi) in
      let st_empty = add_hyp st (app2 F.Gt lo hi) in
      [ st_nonempty; st_empty ]

and exec_while g st (wl : Ast.while_loop) : path list =
  check_expr_safety g st wl.Ast.while_cond;
  let written =
    Ast.written_vars
      ~out_params_of:(fun name ->
        match Ast.find_sub g.program name with
        | Some callee ->
            List.mapi (fun k (p : Ast.param) -> (k, p.Ast.par_mode)) callee.Ast.sub_params
            |> List.filter_map (fun (k, m) ->
                   match m with Ast.Mode_out | Ast.Mode_in_out -> Some k | Ast.Mode_in -> None)
        | None -> [])
      wl.Ast.while_body
  in
  (* invariant init *)
  List.iter (fun inv -> emit g st F.Vc_invariant_init (tr g st inv)) wl.Ast.while_invariants;
  (* preservation *)
  let st_h = List.fold_left (fun st x -> havoc g st x) st written in
  let st_h =
    List.fold_left (fun st inv -> add_hyp st (tr g st inv)) st_h wl.Ast.while_invariants
  in
  let st_h_in = add_hyp st_h (tr g st_h wl.Ast.while_cond) in
  let body_paths = exec_stmts g [ st_h_in ] wl.Ast.while_body in
  if wl.Ast.while_invariants <> [] then
    List.iter
      (fun st_end ->
        List.iter
          (fun inv -> emit g st_end F.Vc_invariant_preserve (tr g st_end inv))
          wl.Ast.while_invariants)
      body_paths;
  (* exit *)
  let st_exit = List.fold_left (fun st x -> havoc g st x) st written in
  let st_exit =
    List.fold_left (fun st inv -> add_hyp st (tr g st inv)) st_exit wl.Ast.while_invariants
  in
  let st_exit = add_hyp st_exit (app1 F.Not (tr g st_exit wl.Ast.while_cond)) in
  [ st_exit ]

and finalize_post g st ~result =
  match g.sub.Ast.sub_post with
  | None -> ()
  | Some post ->
      let tpost = tr g st post in
      let tpost =
        match result with
        | None -> tpost
        | Some r ->
            let rec sub (t : F.t) : F.t =
              match t.F.node with
              | F.Var "result!" -> r.t
              | F.Int _ | F.Bool _ | F.Var _ -> t
              | F.App (op, args) -> F.app op (List.map sub args)
              | F.Ite (c, a, b) -> F.ite (sub c) (sub a) (sub b)
              | F.Forall (x, lo, hi, b) -> F.forall x (sub lo) (sub hi) (sub b)
              | F.Exists (x, lo, hi, b) -> F.exists x (sub lo) (sub hi) (sub b)
            in
            { t = sub tpost.t; n = tpost.n + r.n }
      in
      emit g st F.Vc_postcondition tpost

(* ------------------------------------------------------------------ *)
(* Per-subprogram driver                                               *)
(* ------------------------------------------------------------------ *)

let used_constants g (sub : Ast.subprogram) =
  (* constants referenced anywhere in the subprogram *)
  let used = ref [] in
  let note e = used := Ast.expr_vars e @ !used in
  Ast.iter_stmts (fun s -> Ast.iter_own_exprs note s) sub.Ast.sub_body;
  Option.iter note sub.Ast.sub_pre;
  Option.iter note sub.Ast.sub_post;
  let used = List.sort_uniq String.compare !used in
  List.filter (fun (c : Ast.const_decl) -> List.mem c.Ast.k_name used)
    (Ast.constants g.program)

let initial_state g (sub : Ast.subprogram) =
  let st = { bindings = []; hyps = [] } in
  (* parameters: bound to themselves; range facts assumed; Old symbols equal
     entry values *)
  let st =
    List.fold_left
      (fun st (p : Ast.param) ->
        let t = Typecheck.resolve g.env p.Ast.par_typ in
        let st =
          match range_fact g t (F.var p.Ast.par_name) with
          | Some fact -> add_hyp st (sized_of_formula fact)
          | None -> st
        in
        add_hyp st
          (sized_of_formula (F.eq (F.var (old_sym p.Ast.par_name)) (F.var p.Ast.par_name))))
      st sub.Ast.sub_params
  in
  (* locals: initialised ones get equations; others are default symbols *)
  let st =
    List.fold_left
      (fun st (v : Ast.var_decl) ->
        match v.Ast.v_init with
        | Some e -> set_var st v.Ast.v_name (tr g st e)
        | None -> st)
      st sub.Ast.sub_locals
  in
  (* constants used: defining equations *)
  let st =
    List.fold_left
      (fun st (c : Ast.const_decl) -> add_hyp st (sized_of_formula
        (F.eq (F.var c.Ast.k_name) ((tr g st c.Ast.k_value).t))))
      st (used_constants g sub)
  in
  (* precondition assumed *)
  match sub.Ast.sub_pre with
  | Some pre -> add_hyp st (tr g st pre)
  | None -> st

let var_types_of g_env program (sub : Ast.subprogram) =
  let resolve = Typecheck.resolve g_env in
  List.map (fun (p : Ast.param) -> (p.Ast.par_name, resolve p.Ast.par_typ)) sub.Ast.sub_params
  @ List.map (fun (v : Ast.var_decl) -> (v.Ast.v_name, resolve v.Ast.v_typ)) sub.Ast.sub_locals
  @ List.map (fun (c : Ast.const_decl) -> (c.Ast.k_name, resolve c.Ast.k_typ)) (Ast.constants program)
  @ List.map (fun (v : Ast.var_decl) -> (v.Ast.v_name, resolve v.Ast.v_typ)) (Ast.global_vars program)

type sub_report = {
  sr_sub : string;
  sr_vcs : F.vc list;
  sr_sizes : (string * int) list;  (** per-VC unfolded node counts *)
  sr_discharged : string list;
      (** names of VCs discharged by static analysis (empty until
          {!tag_discharged}) *)
}

let generate_sub ?(budget = default_budget) env program (sub : Ast.subprogram) : sub_report =
  let g =
    {
      env;
      program;
      budget;
      total_nodes = 0;
      fresh = 0;
      vcs = [];
      sizes = [];
      sub;
      var_types = var_types_of env program sub;
      record_vcs = true;
      returns = [];
    }
  in
  let st0 = initial_state g sub in
  let final_paths = exec_stmts g [ st0 ] sub.Ast.sub_body in
  (* procedures: postcondition proved at fall-through exits *)
  if sub.Ast.sub_return = None then
    List.iter (fun st -> finalize_post g st ~result:None) final_paths;
  { sr_sub = sub.Ast.sub_name; sr_vcs = List.rev g.vcs; sr_sizes = List.rev g.sizes;
    sr_discharged = [] }

type report = {
  r_subs : sub_report list;
  r_infeasible : string option;  (** reason, when the budget was exceeded *)
}

let all_vcs r = List.concat_map (fun s -> s.sr_vcs) r.r_subs

(** Tag each VC the [oracle] can prove without the prover — the report's
    "discharged-by-analysis" column.  The VCs themselves are untouched;
    consumers that schedule proofs skip the tagged names. *)
let tag_discharged ~oracle r =
  {
    r with
    r_subs =
      List.map
        (fun s ->
          {
            s with
            sr_discharged =
              List.filter_map
                (fun (vc : F.vc) ->
                  if oracle vc then Some vc.F.vc_name else None)
                s.sr_vcs;
          })
        r.r_subs;
  }

let total_nodes r =
  List.fold_left
    (fun acc s -> List.fold_left (fun acc (_, n) -> acc + n) acc s.sr_sizes)
    0 r.r_subs

(** Per-subprogram VC provenance — every VC already carries its owning
    subprogram ([vc_sub]); this formalises the map (name -> VC names)
    that change-impact analysis keys re-prove sets on. *)
let provenance r =
  List.map
    (fun s -> (s.sr_sub, List.map (fun (vc : F.vc) -> vc.F.vc_name) s.sr_vcs))
    r.r_subs

(** Per-subprogram digests of the generated formulas, for impact
    refinement: a subprogram whose digest set matches the baseline's
    generated byte-identical obligations. *)
let vc_digests r =
  List.map
    (fun s -> (s.sr_sub, List.map F.vc_digest s.sr_vcs))
    r.r_subs

(** Generate VCs for every subprogram of a (checked) program.  On budget
    exhaustion the subprograms analysed so far are kept and the failure
    recorded, mirroring the paper's "no value because the VCs were too
    complicated to be handled" columns. *)
let generate ?(budget = default_budget) env program : report =
  let shared_total = ref 0 in
  let rec go acc = function
    | [] -> { r_subs = List.rev acc; r_infeasible = None }
    | sub :: rest -> (
        match
          let r = generate_sub ~budget:{ budget with max_total_nodes = budget.max_total_nodes - !shared_total } env program sub in
          shared_total := !shared_total + List.fold_left (fun a (_, n) -> a + n) 0 r.sr_sizes;
          r
        with
        | r -> go (r :: acc) rest
        | exception Infeasible reason ->
            { r_subs = List.rev acc; r_infeasible = Some reason })
  in
  go [] (Ast.subprograms program)

(** Approximate printed size in bytes of an unfolded VC term tree: the
    average printed node costs ~8 bytes. *)
let bytes_of_nodes n = n * 8

(** Printed-line length of the longest VC of a report, from the unfolded
    node estimates (a printed node costs ~8 bytes, a line ~78). *)
let max_vc_lines r =
  List.fold_left
    (fun acc s ->
      List.fold_left (fun acc (_, n) -> max acc (1 + (bytes_of_nodes n / 78))) acc
        s.sr_sizes)
    0 r.r_subs

(* ------------------------------------------------------------------ *)
(* Equivalence VCs for certified refactoring                           *)
(*                                                                     *)
(* Both versions of a touched subprogram are executed symbolically     *)
(* from one shared initial state (same parameter symbols = equal       *)
(* inputs); the product of their exit paths yields one VC per          *)
(* observable output — function result, out / in-out parameter,        *)
(* written global — stating the two final values are equal under both  *)
(* preconditions (the transformation's applicability side-conditions). *)
(*                                                                     *)
(* Objects whose *definitions* differ between the versions (a mutated  *)
(* table constant, a re-initialised global) must not share a symbol:   *)
(* each side binds its own tagged symbol with its own defining         *)
(* equation, otherwise contradictory hypotheses would make every goal  *)
(* vacuously provable.  Fresh (havoc) symbols are disjoint by          *)
(* construction: side B's counter starts far above side A's.           *)
(*                                                                     *)
(* Loops and callee havoc leave outputs under-constrained (invariants  *)
(* rarely pin exact values), so loopy bodies are rejected upfront —    *)
(* the differential oracle covers them.                                *)
(* ------------------------------------------------------------------ *)

let loop_free stmts =
  let ok = ref true in
  Ast.iter_stmts
    (fun s -> match s with Ast.For _ | Ast.While _ -> ok := false | _ -> ())
    stmts;
  !ok

let divergent_objects prog_a prog_b =
  let objs p =
    List.map (fun (c : Ast.const_decl) -> (c.Ast.k_name, `C c)) (Ast.constants p)
    @ List.map (fun (v : Ast.var_decl) -> (v.Ast.v_name, `V v)) (Ast.global_vars p)
  in
  let a = objs prog_a and b = objs prog_b in
  let names = List.sort_uniq String.compare (List.map fst a @ List.map fst b) in
  List.filter
    (fun x ->
      match (List.assoc_opt x a, List.assoc_opt x b) with
      | Some da, Some db -> da <> db
      | _ -> true)
    names

let equiv_initial_state g ~tag ~divergent (sub : Ast.subprogram) =
  let st = { bindings = []; hyps = [] } in
  (* parameters: shared symbols (equal initial states), range facts *)
  let st =
    List.fold_left
      (fun st (p : Ast.param) ->
        let t = Typecheck.resolve g.env p.Ast.par_typ in
        let st =
          match range_fact g t (F.var p.Ast.par_name) with
          | Some fact -> add_hyp st (sized_of_formula fact)
          | None -> st
        in
        add_hyp st
          (sized_of_formula
             (F.eq (F.var (old_sym p.Ast.par_name)) (F.var p.Ast.par_name))))
      st sub.Ast.sub_params
  in
  (* side-tag objects whose definitions differ between the versions *)
  let st =
    List.fold_left (fun st x -> set_var st x (leaf (F.var (x ^ tag)))) st divergent
  in
  (* locals with initialisers *)
  let st =
    List.fold_left
      (fun st (v : Ast.var_decl) ->
        match v.Ast.v_init with
        | Some e -> set_var st v.Ast.v_name (tr g st e)
        | None -> st)
      st sub.Ast.sub_locals
  in
  (* used constants: defining equations on this side's own symbol *)
  let st =
    List.fold_left
      (fun st (c : Ast.const_decl) ->
        add_hyp st
          (sized_of_formula
             (F.eq (lookup_binding st c.Ast.k_name).t (tr g st c.Ast.k_value).t)))
      st (used_constants g sub)
  in
  (* initialised divergent globals: defining equations too *)
  let st =
    List.fold_left
      (fun st (v : Ast.var_decl) ->
        match v.Ast.v_init with
        | Some e when List.mem v.Ast.v_name divergent ->
            add_hyp st
              (sized_of_formula
                 (F.eq (lookup_binding st v.Ast.v_name).t (tr g st e).t))
        | _ -> st)
      st (Ast.global_vars g.program)
  in
  match sub.Ast.sub_pre with
  | Some pre -> add_hyp st (tr g st pre)
  | None -> st

let written_globals g (sub : Ast.subprogram) =
  let out_params_of name =
    match Ast.find_sub g.program name with
    | Some callee ->
        List.mapi (fun k (p : Ast.param) -> (k, p.Ast.par_mode)) callee.Ast.sub_params
        |> List.filter_map (fun (k, m) ->
               match m with
               | Ast.Mode_out | Ast.Mode_in_out -> Some k
               | Ast.Mode_in -> None)
    | None -> []
  in
  let written = Ast.written_vars ~out_params_of sub.Ast.sub_body in
  let globals =
    List.map (fun (v : Ast.var_decl) -> v.Ast.v_name) (Ast.global_vars g.program)
  in
  let locals = List.map (fun (v : Ast.var_decl) -> v.Ast.v_name) sub.Ast.sub_locals in
  let params = List.map (fun (p : Ast.param) -> p.Ast.par_name) sub.Ast.sub_params in
  List.filter
    (fun x ->
      List.mem x globals && (not (List.mem x locals)) && not (List.mem x params))
    written

let equivalence_sub ?(budget = default_budget) ~before:(env_a, prog_a)
    ~after:(env_b, prog_b) name : F.vc list =
  let sub_a = Ast.find_sub_exn prog_a name in
  let sub_b = Ast.find_sub_exn prog_b name in
  if not (loop_free sub_a.Ast.sub_body && loop_free sub_b.Ast.sub_body) then
    raise
      (Infeasible
         (Printf.sprintf "%s has loops: outputs under-constrained, oracle only"
            name));
  let divergent = divergent_objects prog_a prog_b in
  let run tag offset env program sub =
    let g =
      {
        env;
        program;
        budget;
        total_nodes = 0;
        fresh = offset;
        vcs = [];
        sizes = [];
        sub;
        var_types = var_types_of env program sub;
        record_vcs = false;
        returns = [];
      }
    in
    let st0 = equiv_initial_state g ~tag ~divergent sub in
    let finals = exec_stmts g [ st0 ] sub.Ast.sub_body in
    (g, finals)
  in
  let g_a, finals_a = run "!old" 0 env_a prog_a sub_a in
  let g_b, finals_b = run "!new" 1_000_000 env_b prog_b sub_b in
  (* exit paths: fall-through states (procedures) plus explicit returns *)
  let exits g finals = List.map (fun st -> (st, None)) finals @ List.rev g.returns in
  let exits_a = exits g_a finals_a and exits_b = exits g_b finals_b in
  if List.length exits_a * List.length exits_b > budget.max_paths then
    raise (Infeasible (Printf.sprintf "path product explosion in %s" name));
  let outs =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.Ast.par_mode with
        | Ast.Mode_out | Ast.Mode_in_out -> Some p.Ast.par_name
        | Ast.Mode_in -> None)
      sub_b.Ast.sub_params
  in
  let written_g =
    List.sort_uniq String.compare
      (written_globals g_a sub_a @ written_globals g_b sub_b)
  in
  let counter = ref 0 and total = ref 0 and vcs = ref [] in
  let emit_eq (st_a : sym_state) (st_b : sym_state) (ta : sized) (tb : sized) =
    incr counter;
    let nodes =
      List.fold_left (fun acc h -> acc + h.n) 0 st_a.hyps
      + List.fold_left (fun acc h -> acc + h.n) 0 st_b.hyps
      + ta.n + tb.n + 1
    in
    if nodes > budget.max_vc_nodes then
      raise
        (Infeasible
           (Printf.sprintf "equivalence VC in %s exceeds per-VC budget (%d nodes)"
              name nodes));
    total := !total + nodes;
    if !total > budget.max_total_nodes then
      raise (Infeasible (Printf.sprintf "total equivalence budget exceeded in %s" name));
    vcs :=
      {
        F.vc_name = Printf.sprintf "%s.equiv.%d" name !counter;
        vc_sub = name;
        vc_kind = F.Vc_equivalence;
        vc_hyps =
          List.rev_map (fun h -> h.t) st_a.hyps
          @ List.rev_map (fun h -> h.t) st_b.hyps;
        vc_goal = F.eq ta.t tb.t;
      }
      :: !vcs
  in
  List.iter
    (fun ((st_a, ret_a) : sym_state * sized option) ->
      List.iter
        (fun ((st_b, ret_b) : sym_state * sized option) ->
          (match (sub_b.Ast.sub_return, ret_a, ret_b) with
          | Some _, Some ra, Some rb -> emit_eq st_a st_b ra rb
          | _ -> ());
          let observed = if sub_b.Ast.sub_return = None then outs else [] in
          List.iter
            (fun x ->
              emit_eq st_a st_b (lookup_binding st_a x) (lookup_binding st_b x))
            (observed @ written_g))
        exits_b)
    exits_a;
  if !counter = 0 then
    raise (Infeasible (Printf.sprintf "%s has no comparable outputs" name));
  List.rev !vcs
