(* echo-verify: command-line driver for the Echo verification toolchain.

   Subcommands operate on MiniSpark source files or on the built-in AES
   case study:
     check      parse and type-check a program
     analyze    Examiner-style flow analysis, amenability lint and
                interval discharge of exception-freedom VCs
     metrics    print the §5.2 metric hybrid
     suggest    propose loop-rerolling sites (§5.2 "suggested automatically")
     vcs        generate and summarise verification conditions
     prove      run the implementation proof (VC generation + prover)
     aes        drive the AES case study (refactor / proofs / defects)
     certify    certify the AES refactoring step by step (equivalence VCs
                + differential fuzzing oracle), or the seeded-defect corpus
     chaos      fault-injection suite over the orchestrated pipeline
     report     render a recorded run's telemetry as a text dashboard
     profile    perf attribution for a recorded run: cost centers,
                critical path, worker utilisation, flamegraph export
     serve      run the long-lived verification daemon (job queue +
                process-sharded proof workers, NDJSON over a Unix socket)
     submit     send one program to a running daemon and stream verdicts

   Exit codes follow the fault taxonomy (Echo.Fault.exit_code): 2 parse,
   3 type, 4 refactoring-not-applicable, 5 proof failure (residual VCs,
   timeouts, failed lemmas), 6 flow-analysis errors, 7 refuted
   certification, 8 service errors, 1 everything else. *)

open Minispark

let read_source path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  src

let read_program path = Typecheck.check (Parser.of_string (read_source path))

(* every failure leaves through the fault taxonomy, so each class has a
   stable exit code (documented in --help) *)
let with_errors f =
  match Echo.Fault.guard f with
  | Ok v -> v
  | Error fault ->
      Fmt.epr "%a@." Echo.Fault.pp fault;
      exit (Echo.Fault.exit_code fault)

(* Resolve a --jobs request: 0 (the default) = the visible core count,
   because a fixed default oversubscribes small containers — jobs=4
   measured 3x slower than jobs=1 at one visible core (BENCH_farm.json).
   Explicit oversubscription is honoured but called out. *)
let resolve_jobs jobs =
  if jobs <= 0 then Farm.Pool.default_jobs ()
  else begin
    (match Farm.Pool.oversubscribed ~jobs with
    | Some cores ->
        Fmt.epr
          "warning: --jobs %d exceeds the %d visible core(s); extra domains \
           only time-share@."
          jobs cores
    | None -> ());
    jobs
  end

(* ---------------- subcommands ---------------- *)

let cmd_check path () =
  with_errors (fun () ->
      let _, prog = read_program path in
      Fmt.pr "%s: %d declarations, %d subprograms — OK@." prog.Ast.prog_name
        (List.length prog.Ast.prog_decls)
        (List.length (Ast.subprograms prog)))

let cmd_analyze path json no_vcs () =
  with_errors (fun () ->
      let env, prog = read_program path in
      let an = Analysis.Examiner.analyze ~vcs:(not no_vcs) env prog in
      if json then
        print_endline (Telemetry.Json.to_string (Analysis.Examiner.to_json an))
      else Fmt.pr "%a" Analysis.Examiner.pp an;
      let errs = Analysis.Examiner.errors an in
      if errs > 0 then
        let first =
          match
            List.filter
              (fun d -> d.Analysis.Diag.d_severity = Analysis.Diag.Error)
              (Analysis.Examiner.diags an)
          with
          | d :: _ -> Fmt.str "%a" Analysis.Diag.pp d
          | [] -> ""
        in
        raise (Echo.Fault.Fault (Echo.Fault.Analysis { errors = errs; first })))

(* `impact OLD NEW`: change-impact analysis between two versions of a
   program — semantic diff, dependency-graph escalation, and (unless
   --no-vcs) the VC counts behind the re-prove set. *)
let cmd_impact old_path new_path json no_vcs () =
  with_errors (fun () ->
      let old_env, old_p = read_program old_path in
      let env, new_p = read_program new_path in
      let plan = Analysis.Impact.compute ~old_p ~new_p in
      let vc_counts =
        if no_vcs then None
        else
          let digests e p = Vcgen.vc_digests (Vcgen.generate e p) in
          let baseline = digests old_env old_p in
          let current = digests env new_p in
          let plan = Analysis.Impact.refine plan ~baseline ~current in
          let count names =
            List.fold_left
              (fun acc (s, ds) ->
                if List.mem s names then acc + List.length ds else acc)
              0 current
          in
          let reprove = count (Analysis.Impact.impacted_subs plan) in
          let total =
            List.fold_left (fun acc (_, ds) -> acc + List.length ds) 0 current
          in
          Some (plan, reprove, total)
      in
      let plan, vcs =
        match vc_counts with
        | Some (p, reprove, total) -> (p, Some (reprove, total))
        | None -> (plan, None)
      in
      if json then begin
        let b = Buffer.create 512 in
        Buffer.add_string b "{\"old\":";
        Buffer.add_string b (Printf.sprintf "%S" old_path);
        Buffer.add_string b ",\"new\":";
        Buffer.add_string b (Printf.sprintf "%S" new_path);
        Buffer.add_string b ",\"impact\":";
        Buffer.add_string b (Analysis.Impact.to_json plan);
        (match vcs with
        | Some (reprove, total) ->
            Buffer.add_string b
              (Printf.sprintf ",\"vcs\":{\"reprove\":%d,\"total\":%d}" reprove
                 total)
        | None -> ());
        Buffer.add_string b "}";
        print_endline (Buffer.contents b)
      end
      else begin
        Fmt.pr "%a@." Analysis.Semdiff.pp plan.Analysis.Impact.pl_diff;
        Fmt.pr "%a@." Analysis.Impact.pp plan;
        match vcs with
        | Some (reprove, total) ->
            Fmt.pr "VCs to re-prove: %d of %d@." reprove total
        | None -> ()
      end)

let cmd_metrics path () =
  with_errors (fun () ->
      let _, prog = read_program path in
      Fmt.pr "%a@." Metrics.pp (Metrics.analyze prog))

let cmd_suggest path () =
  with_errors (fun () ->
      let _, prog = read_program path in
      (match Refactor.Reroll.suggest prog with
      | [] -> Fmt.pr "no rerolling opportunities found@."
      | suggestions ->
          List.iter
            (fun (sub, from, group_len, count) ->
              Fmt.pr "reroll: %s statements %d..%d as %d groups of %d@." sub from
                (from + (group_len * count) - 1)
                count group_len)
            suggestions);
      match Refactor.Inline_reverse.suggest_clones prog with
      | [] -> Fmt.pr "no cloned fragments found@."
      | clones ->
          List.iter
            (fun c -> Fmt.pr "clone:  %a@." Refactor.Inline_reverse.pp_clone c)
            clones)

let cmd_vcs path () =
  with_errors (fun () ->
      let env, prog = read_program path in
      let report = Vcgen.generate env prog in
      (match report.Vcgen.r_infeasible with
      | Some reason -> Fmt.pr "VC generation infeasible: %s@." reason
      | None -> ());
      List.iter
        (fun (sr : Vcgen.sub_report) ->
          Fmt.pr "%-24s %d VCs@." sr.Vcgen.sr_sub (List.length sr.Vcgen.sr_vcs))
        report.Vcgen.r_subs;
      Fmt.pr "total: %d VCs, ~%d KB@."
        (List.length (Vcgen.all_vcs report))
        (Vcgen.bytes_of_nodes (Vcgen.total_nodes report) / 1024))

let cmd_prove path verbose jobs () =
  with_errors (fun () ->
      let jobs = resolve_jobs jobs in
      let env, prog = read_program path in
      let r = Echo.Implementation_proof.run ~jobs env prog in
      if verbose then Fmt.pr "%a@." Echo.Implementation_proof.pp_details r
      else Fmt.pr "%a@." Echo.Implementation_proof.pp_report r;
      if r.Echo.Implementation_proof.ip_residual > 0
         || r.Echo.Implementation_proof.ip_timed_out > 0
      then exit 5)

let cmd_aes_refactor upto dump () =
  with_errors (fun () ->
      let snapshots, h = Aes.Aes_refactoring.run ~upto () in
      List.iter
        (fun (s : Aes.Aes_refactoring.snapshot) ->
          let m = Metrics.analyze s.Aes.Aes_refactoring.sn_program in
          Fmt.pr "block %2d: %4d LoC, %2d subprograms, cyclomatic %.2f — %s@."
            s.Aes.Aes_refactoring.sn_block m.Metrics.element.Metrics.em_lines
            m.Metrics.element.Metrics.em_subprograms
            m.Metrics.complexity.Metrics.cm_avg_cyclomatic s.Aes.Aes_refactoring.sn_title)
        snapshots;
      Fmt.pr "%a@." Refactor.History.pp_summary h;
      match dump with
      | None -> ()
      | Some path ->
          let final = List.nth snapshots (min upto (List.length snapshots - 1)) in
          let oc = open_out path in
          output_string oc
            (Pretty.program_to_string final.Aes.Aes_refactoring.sn_program);
          close_out oc;
          Fmt.pr "wrote %s@." path)

(* telemetry exporters share one error convention: warn, don't fail the
   verification verdict over an unwritable trace file *)
let write_or_warn what = function
  | Ok () -> ()
  | Error e -> Fmt.epr "warning: could not write %s: %s@." what e

(* the synthetic one-subprogram edit behind `--edit-sub`: a benign assert
   prepended to the named body — changes the subprogram's digest (and adds
   one trivially-true VC) without touching its meaning or its contract,
   so the blast radius of the impact analysis is exactly measurable *)
let benign_edit name prog =
  if Ast.find_sub prog name = None then
    invalid_arg (Printf.sprintf "--edit-sub: no subprogram %S" name);
  Ast.update_sub prog name (fun sp ->
      {
        sp with
        Ast.sub_body = Ast.Assert (Ast.Bool_lit true) :: sp.Ast.sub_body;
      })

let cmd_aes_verify run_dir resume global_deadline vc_deadline analyze certify
    jobs cache_dir no_cache incremental baseline edit_sub trace metrics () =
  with_errors (fun () ->
      if resume && run_dir = None then begin
        Fmt.epr "--resume requires --run-dir@.";
        exit 1
      end;
      if no_cache && cache_dir <> None then begin
        Fmt.epr "--no-cache and --cache-dir are mutually exclusive@.";
        exit 1
      end;
      let incremental = incremental || baseline <> None in
      let baseline =
        if not incremental then None
        else
          match (baseline, run_dir) with
          | Some b, _ -> Some b
          | None, Some d -> Some d
          | None, None ->
              Fmt.epr "--incremental requires --baseline or --run-dir@.";
              exit 1
      in
      if edit_sub <> None && not incremental then begin
        Fmt.epr "--edit-sub only makes sense with --incremental@.";
        exit 1
      end;
      (* an incremental run without its own --run-dir updates the
         baseline directory in place (safe: the baseline is snapshotted
         before any stage writes) *)
      let run_dir = if incremental && run_dir = None then baseline else run_dir in
      if trace <> None || metrics <> None then Telemetry.enable ();
      let cache =
        if no_cache then Echo.Orchestrator.Cache_off
        else
          match cache_dir with
          | Some d -> Echo.Orchestrator.Cache_dir d
          | None -> Echo.Orchestrator.Cache_default
      in
      let config =
        {
          Echo.Orchestrator.default_config with
          Echo.Orchestrator.oc_run_dir = run_dir;
          oc_global_deadline_s = global_deadline;
          oc_vc_deadline_s = vc_deadline;
          oc_analyze = analyze;
          oc_certify = certify;
          oc_jobs = resolve_jobs jobs;
          oc_cache = cache;
          oc_baseline = baseline;
          oc_edit = Option.map benign_edit edit_sub;
        }
      in
      let report = Echo.Orchestrator.run ~resume ~config Aes.Aes_echo.case_study in
      Fmt.pr "%a@." Echo.Orchestrator.pp_report report;
      (match trace with
      | Some path ->
          write_or_warn path (Telemetry.write_chrome_trace ~path (Telemetry.events ()));
          Fmt.pr "trace: %s (load in chrome://tracing or ui.perfetto.dev)@." path
      | None -> ());
      (match metrics with
      | Some path ->
          write_or_warn path (Telemetry.write_metrics ~path (Telemetry.snapshot ()));
          Fmt.pr "metrics: %s@." path
      | None -> ());
      match report.Echo.Orchestrator.o_verdict with
      | Echo.Orchestrator.Verified | Echo.Orchestrator.Conditionally_verified _ -> ()
      | Echo.Orchestrator.Degraded d ->
          exit (Echo.Fault.exit_code d.Echo.Orchestrator.dg_fault)
      | Echo.Orchestrator.Failed f -> exit (Echo.Fault.exit_code f))

(* `report DIR`: render the telemetry persisted by `aes verify --run-dir
   DIR --metrics/--trace ...` (or by any orchestrated run with telemetry
   enabled) as a plain-text dashboard. *)
let cmd_report dir top trace_out () =
  with_errors (fun () ->
      let events_path = Filename.concat dir "telemetry.events.jsonl" in
      let metrics_path = Filename.concat dir "telemetry.metrics.json" in
      if not (Sys.file_exists events_path) then begin
        Fmt.epr
          "%s: no telemetry found (expected %s).@.Produce it with: echo-verify aes \
           verify --run-dir %s --trace trace.json@."
          dir events_path dir;
        exit 1
      end;
      let events =
        match Telemetry.read_jsonl ~path:events_path with
        | Ok evs -> evs
        | Error e ->
            Fmt.epr "%s: %s@." events_path e;
            exit 1
      in
      let metrics =
        if not (Sys.file_exists metrics_path) then None
        else
          match Telemetry.read_metrics ~path:metrics_path with
          | Ok m -> Some m
          | Error e ->
              Fmt.epr "warning: ignoring unreadable %s: %s@." metrics_path e;
              None
      in
      print_string (Telemetry.Summary.render ~top ~events ~metrics ());
      match trace_out with
      | Some path ->
          write_or_warn path (Telemetry.write_chrome_trace ~path events);
          Fmt.pr "trace: %s (load in chrome://tracing or ui.perfetto.dev)@." path
      | None -> ())

(* `profile DIR`: perf attribution over the same persisted telemetry
   `report` renders — hierarchical cost centers with GC deltas, the
   critical path with parallelism efficiency, per-worker utilisation,
   per-category refactor time, and an optional folded-stack flamegraph. *)

let focus_pred = function
  | "refactor" ->
      fun ~cat ~name -> cat = Telemetry.cat_stage && name = "refactor"
  | "prove" ->
      fun ~cat ~name ->
        cat = Telemetry.cat_stage
        && (name = "implementation-proof" || name = "implication-proof")
  | "certify" ->
      fun ~cat ~name -> cat = Telemetry.cat_transform && name = "certify"
  | _ -> fun ~cat:_ ~name:_ -> true

let cmd_profile dir top focus flame () =
  with_errors (fun () ->
      let events_path = Filename.concat dir "telemetry.events.jsonl" in
      if not (Sys.file_exists events_path) then begin
        Fmt.epr
          "%s: no telemetry found (expected %s).@.Produce it with: echo-verify aes \
           verify --run-dir %s --trace trace.json@."
          dir events_path dir;
        exit 1
      end;
      let events =
        match Telemetry.read_jsonl ~path:events_path with
        | Ok evs -> evs
        | Error e ->
            Fmt.epr "%s: %s@." events_path e;
            exit 1
      in
      let events =
        match focus with
        | None -> events
        | Some f -> Profile.focus ~keep:(focus_pred f) events
      in
      let centers = Profile.cost_centers events in
      if centers = [] then begin
        Fmt.epr "no spans%s in %s@."
          (match focus with Some f -> " matching --focus " ^ f | None -> "")
          events_path;
        exit 1
      end;
      Fmt.pr "top %d cost center(s) of %d (self-time order):@." (min top (List.length centers))
        (List.length centers);
      Fmt.pr "  %9s %9s %6s %11s %11s  %s@." "self(s)" "total(s)" "count"
        "minor(Mw)" "major(Mw)" "cost center";
      List.iteri
        (fun i (cc : Profile.cost_center) ->
          if i < top then
            Fmt.pr "  %9.3f %9.3f %6d %11.2f %11.2f  %s@." cc.Profile.cc_self
              cc.Profile.cc_total cc.Profile.cc_count
              (cc.Profile.cc_gc_minor_w /. 1e6)
              (cc.Profile.cc_gc_major_w /. 1e6)
              (String.concat " / " cc.Profile.cc_path))
        centers;
      let cp = Profile.critical_path events in
      Fmt.pr
        "@.critical path %.3fs over %d frame(s), total work %.3fs, %d worker(s) \
         -> parallelism efficiency %.1f%%@."
        cp.Profile.cp_seconds
        (List.length cp.Profile.cp_frames)
        cp.Profile.cp_total_work cp.Profile.cp_workers
        (100.0 *. cp.Profile.cp_efficiency);
      (* the chain can run to hundreds of frames on a long refactoring
         script; show where its time actually sits *)
      let heaviest =
        List.mapi (fun i (name, self) -> (i, name, self)) cp.Profile.cp_frames
        |> List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
      in
      Fmt.pr "  heaviest frames on the path (position. name):@.";
      List.iteri
        (fun rank (i, name, self) ->
          if rank < top then Fmt.pr "    %4d. %-40s %9.3fs self@." i name self)
        heaviest;
      (match Profile.worker_stats events with
      | [] -> ()
      | ws ->
          Fmt.pr "@.worker utilisation:@.";
          List.iter
            (fun (w : Profile.worker_stat) ->
              Fmt.pr
                "  %-12s wall %8.3fs  busy %8.3fs  idle %8.3fs  steal-scan \
                 %7.3fs  %d job(s), %d steal(s)@."
                w.Profile.w_name w.Profile.w_wall w.Profile.w_busy
                w.Profile.w_idle w.Profile.w_steal w.Profile.w_jobs
                w.Profile.w_steals)
            ws);
      (match Profile.refactor_categories events with
      | [] -> ()
      | cats ->
          Fmt.pr "@.refactor time by transformation category:@.";
          List.iter
            (fun (cat, steps, secs) ->
              Fmt.pr "  %-52s %3d step(s) %9.3fs@." cat steps secs)
            cats);
      match flame with
      | Some path ->
          write_or_warn path (Profile.write_folded ~path events);
          Fmt.pr "@.flamegraph: %s (load in speedscope.app or flamegraph.pl)@." path
      | None -> ())

(* `certify`: the refactoring certification gate as a standalone command.
   Default mode runs the whole AES script with per-step certification and
   prints the certificate table; --defects instead certifies each seeded
   defect against the original, expecting a refutation with a concrete
   counterexample for every non-benign defect.  Either way a violated
   expectation leaves with exit code 7 (Fault.Certification). *)

let certify_entries = [ "encrypt_block"; "decrypt_block" ]

let write_json path json =
  let oc = open_out path in
  output_string oc (Telemetry.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s@." path

let audit_json (a : Refactor.Certify.audit) =
  Telemetry.Json.Obj
    [ ("steps", Telemetry.Json.Int a.Refactor.Certify.au_steps);
      ("certified", Telemetry.Json.Int a.Refactor.Certify.au_certified);
      ("refuted", Telemetry.Json.Int a.Refactor.Certify.au_refuted);
      ("unknown", Telemetry.Json.Int a.Refactor.Certify.au_unknown) ]

let cmd_certify_script trials jobs cache_dir json () =
  let cache = Option.map (fun dir -> Farm.Cache.open_ ~dir) cache_dir in
  let cfg =
    {
      (Refactor.Certify.default_config ~entries:certify_entries ()) with
      Refactor.Certify.cf_trials = trials;
      cf_jobs = resolve_jobs jobs;
      cf_cache = cache;
    }
  in
  let _, h = Aes.Aes_refactoring.run ~certify:cfg () in
  let certs = Refactor.History.certificates h in
  List.iter
    (fun (i, name, c) ->
      Fmt.pr "step %2d  %-36s %s@." i name (Refactor.Certify.describe c))
    certs;
  let audit = Refactor.Certify.audit certs in
  let stats = Refactor.History.certification_stats h in
  Fmt.pr "certified %d/%d step(s) (%d refuted, %d unknown)@."
    audit.Refactor.Certify.au_certified audit.Refactor.Certify.au_steps
    audit.Refactor.Certify.au_refuted audit.Refactor.Certify.au_unknown;
  Fmt.pr
    "targets %d, equivalence VCs %d (%d proved), cache %d hit(s) / %d miss(es), \
     oracle trials %d@."
    stats.Refactor.Certify.ct_targets stats.Refactor.Certify.ct_vcs_generated
    stats.Refactor.Certify.ct_vcs_proved stats.Refactor.Certify.ct_cache_hits
    stats.Refactor.Certify.ct_cache_misses stats.Refactor.Certify.ct_oracle_trials;
  (match json with
  | None -> ()
  | Some path ->
      write_json path
        (Telemetry.Json.Obj
           [ ("case", Telemetry.Json.String "aes-refactoring-script");
             ( "steps",
               Telemetry.Json.List
                 (List.map
                    (fun (i, name, c) ->
                      Telemetry.Json.Obj
                        [ ("index", Telemetry.Json.Int i);
                          ("name", Telemetry.Json.String name);
                          ("certificate", Refactor.Certify.certificate_to_json c) ])
                    certs) );
             ("audit", audit_json audit);
             ("stats", Refactor.Certify.stats_to_json stats) ]));
  if audit.Refactor.Certify.au_unknown > 0 then
    raise
      (Echo.Fault.Fault
         (Echo.Fault.Certification
            {
              cert_step = "<script>";
              cert_reason =
                Printf.sprintf "%d step(s) could not be certified"
                  audit.Refactor.Certify.au_unknown;
            }))

let cmd_certify_defects trials jobs cache_dir json () =
  let _, prog = Aes.Aes_impl.checked () in
  let before = Typecheck.check prog in
  let cache = Option.map (fun dir -> Farm.Cache.open_ ~dir) cache_dir in
  let cfg =
    {
      (Refactor.Certify.default_config ~entries:certify_entries ()) with
      Refactor.Certify.cf_trials = trials;
      cf_jobs = resolve_jobs jobs;
      cf_cache = cache;
    }
  in
  let outcomes =
    List.map
      (fun (d : Defects.Seed.defect) ->
        let after = Typecheck.check (d.Defects.Seed.d_apply prog) in
        let cert, _ =
          Refactor.Certify.certify cfg
            ~step_name:(Printf.sprintf "defect-%d" d.Defects.Seed.d_id)
            ~before ~after
        in
        let expected =
          match (cert, d.Defects.Seed.d_benign) with
          | Refactor.Certify.Refuted _, false -> true
          | Refactor.Certify.Certified _, true -> true
          | _ -> false
        in
        Fmt.pr "defect %2d %-8s %-44s %s%s@." d.Defects.Seed.d_id
          (if d.Defects.Seed.d_benign then "benign" else "real")
          d.Defects.Seed.d_describe
          (Refactor.Certify.describe cert)
          (if expected then "" else "  <-- UNEXPECTED");
        (d, cert, expected))
      (Defects.Seed.seed_all prog)
  in
  let missed = List.filter (fun (_, _, ok) -> not ok) outcomes in
  Fmt.pr "%d/%d defect(s) behaved as expected@."
    (List.length outcomes - List.length missed)
    (List.length outcomes);
  (match json with
  | None -> ()
  | Some path ->
      write_json path
        (Telemetry.Json.Obj
           [ ("case", Telemetry.Json.String "aes-seeded-defects");
             ( "defects",
               Telemetry.Json.List
                 (List.map
                    (fun ((d : Defects.Seed.defect), cert, ok) ->
                      Telemetry.Json.Obj
                        [ ("id", Telemetry.Json.Int d.Defects.Seed.d_id);
                          ( "benign",
                            Telemetry.Json.Bool d.Defects.Seed.d_benign );
                          ( "describe",
                            Telemetry.Json.String d.Defects.Seed.d_describe );
                          ("certificate", Refactor.Certify.certificate_to_json cert);
                          ("as_expected", Telemetry.Json.Bool ok) ])
                    outcomes) ) ]));
  match missed with
  | [] -> ()
  | ((d : Defects.Seed.defect), cert, _) :: _ ->
      raise
        (Echo.Fault.Fault
           (Echo.Fault.Certification
              {
                cert_step = Printf.sprintf "defect-%d" d.Defects.Seed.d_id;
                cert_reason =
                  Printf.sprintf
                    "%d defect(s) not caught as expected (first: %s — %s)"
                    (List.length missed) d.Defects.Seed.d_describe
                    (Refactor.Certify.describe cert);
              }))

let cmd_certify defects trials jobs cache_dir json () =
  with_errors
    (if defects then cmd_certify_defects trials jobs cache_dir json
     else cmd_certify_script trials jobs cache_dir json)

let cmd_chaos probe () =
  with_errors (fun () ->
      let outcomes =
        match probe with
        | None -> Defects.Chaos.run_suite Aes.Aes_echo.case_study
        | Some name -> (
            match
              List.find_opt
                (fun p -> String.equal (Defects.Chaos.probe_name p) name)
                Defects.Chaos.all_probes
            with
            | Some p -> [ Defects.Chaos.run_probe p Aes.Aes_echo.case_study ]
            | None ->
                Fmt.epr "unknown probe %S (try: %s)@." name
                  (String.concat ", "
                     (List.map Defects.Chaos.probe_name Defects.Chaos.all_probes));
                exit 1)
      in
      Fmt.pr "%a@." Defects.Chaos.pp_suite outcomes;
      if not (Defects.Chaos.all_ok outcomes) then exit 1)

let cmd_aes_defects setup () =
  with_errors (fun () ->
      let t1, t2 = Defects.Experiment.run_experiment () in
      (match setup with
      | 1 -> Fmt.pr "%a@." Defects.Experiment.pp_table t1
      | 2 -> Fmt.pr "%a@." Defects.Experiment.pp_table t2
      | _ ->
          Fmt.pr "%a@." Defects.Experiment.pp_table t1;
          Fmt.pr "%a@." Defects.Experiment.pp_table t2))

let cmd_aes_dump which path () =
  with_errors (fun () ->
      let program =
        match which with
        | "optimized" -> snd (Aes.Aes_impl.checked ())
        | "refactored" ->
            let snapshots, _ = Aes.Aes_refactoring.run () in
            (List.nth snapshots 14).Aes.Aes_refactoring.sn_program
        | "annotated" ->
            let snapshots, _ = Aes.Aes_refactoring.run () in
            Aes.Aes_annotations.annotate
              (List.nth snapshots 14).Aes.Aes_refactoring.sn_program
        | other ->
            Fmt.epr "unknown variant %S (optimized|refactored|annotated)@." other;
            exit 1
      in
      let text = Pretty.program_to_string program in
      match path with
      | None -> print_string text
      | Some path ->
          let oc = open_out path in
          output_string oc text;
          close_out oc;
          Fmt.pr "wrote %s@." path)

(* ---------------- the verification service ---------------- *)

let default_socket () =
  Filename.concat (Filename.get_temp_dir_name ()) "echo-serve.sock"

let default_state_dir () =
  Filename.concat (Filename.get_temp_dir_name ()) "echo-serve"

let cmd_serve socket jobs capacity max_attempts cache_dir no_cache state_dir
    telemetry verbose () =
  with_errors (fun () ->
      let jobs = if jobs <= 0 then Farm.Pool.default_jobs () else resolve_jobs jobs in
      let state_dir = Option.value ~default:(default_state_dir ()) state_dir in
      let cache_dir =
        if no_cache then None
        else Some (Option.value ~default:(Filename.concat state_dir "cache") cache_dir)
      in
      let config =
        {
          Serve.Daemon.default_config with
          Serve.Daemon.dc_jobs = jobs;
          dc_capacity = capacity;
          dc_max_attempts = max_attempts;
          dc_cache_dir = cache_dir;
          dc_state_dir = Some state_dir;
          dc_telemetry = telemetry;
          dc_log =
            (if verbose then Some (fun m -> Fmt.epr "[serve] %s@." m) else None);
        }
      in
      Fmt.pr "echo serve: %d worker(s), queue capacity %d, socket %s@." jobs
        capacity socket;
      Fmt.pr "SIGTERM drains: running jobs finish, queued jobs checkpoint to %s@."
        (Filename.concat state_dir "queue.jsonl");
      let st = Serve.Daemon.run_socket ~config ~path:socket () in
      Fmt.pr
        "served %d submission(s): %d completed, %d dedup hit(s), %d rejected, \
         %d worker crash(es) survived@."
        st.Serve.Protocol.st_submitted st.Serve.Protocol.st_completed
        st.Serve.Protocol.st_dedup_hits st.Serve.Protocol.st_rejected
        st.Serve.Protocol.st_worker_crashes)

let pp_stage_event quiet ev =
  if not quiet then
    match ev with
    | Serve.Protocol.Accepted { ev_job; ev_depth } ->
        Fmt.pr "accepted as %s (queue depth %d)@." ev_job ev_depth
    | Serve.Protocol.Stage { ev_stage; ev_phase; ev_attempt; _ } -> (
        match ev_phase with
        | Serve.Protocol.P_start ->
            if ev_attempt > 1 then
              Fmt.pr "  %-8s start (attempt %d)@." ev_stage ev_attempt
            else Fmt.pr "  %-8s start@." ev_stage
        | Serve.Protocol.P_ok s -> Fmt.pr "  %-8s ok    %.3fs@." ev_stage s
        | Serve.Protocol.P_failed d -> Fmt.pr "  %-8s failed: %s@." ev_stage d)
    | _ -> ()

let cmd_submit path socket id analyze priority deadline baseline_job quiet () =
  with_errors (fun () ->
      (* a daemon that vanishes mid-write must surface as exit 8, not
         SIGPIPE death *)
      ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
      let source = read_source path in
      match Serve.Client.connect ~path:socket with
      | Error e ->
          Fmt.epr "%s@." e;
          exit (Serve.Protocol.exit_code_of_class "service")
      | Ok cl -> (
          let js =
            Serve.Protocol.job ~id ~analyze ~priority ?deadline_s:deadline
              ?baseline_job ~source ()
          in
          match Serve.Client.run_job ~on_event:(pp_stage_event quiet) cl js with
          | Error reason ->
              Serve.Client.close cl;
              Fmt.epr "rejected: %s@." reason;
              exit (Serve.Protocol.exit_code_of_class "service")
          | Ok (w, dedup, _attempts) ->
              Serve.Client.close cl;
              Fmt.pr "%s: %d VCs — %d auto, %d hinted, %d discharged, %d \
                      carried, %d residual, %d timed out (%.3fs%s)@."
                w.Serve.Protocol.w_verdict w.Serve.Protocol.w_total
                w.Serve.Protocol.w_auto w.Serve.Protocol.w_hinted
                w.Serve.Protocol.w_discharged w.Serve.Protocol.w_carried
                w.Serve.Protocol.w_residual w.Serve.Protocol.w_timed_out
                w.Serve.Protocol.w_seconds
                (if dedup then ", deduplicated" else "");
              List.iter (fun n -> Fmt.pr "note: %s@." n) w.Serve.Protocol.w_notes;
              (match w.Serve.Protocol.w_verdict with
              | "verified" -> ()
              | "failed" ->
                  let cls, detail =
                    Option.value ~default:("other", "") w.Serve.Protocol.w_fault
                  in
                  Fmt.epr "fault (%s): %s@." cls detail;
                  exit (Serve.Protocol.exit_code_of_class cls)
              | _ -> exit 5)))

(* ---------------- cmdliner wiring ---------------- *)

open Cmdliner

(* the fault-taxonomy exit codes, shown in every subcommand's --help *)
let exits =
  Cmd.Exit.info ~doc:"on parse errors." 2
  :: Cmd.Exit.info ~doc:"on type errors." 3
  :: Cmd.Exit.info ~doc:"when a refactoring transformation is not applicable." 4
  :: Cmd.Exit.info ~doc:"on proof failure: residual VCs, prover timeouts, infeasible \
                         VC generation or failed implication lemmas."
       5
  :: Cmd.Exit.info ~doc:"when flow analysis reports error-severity diagnostics." 6
  :: Cmd.Exit.info ~doc:"when step certification refutes a refactoring step (or the \
                         certification gate's expectation is violated)."
       7
  :: Cmd.Exit.info ~doc:"on verification-service errors: no daemon at the socket, \
                         rejected submissions, or a worker process that crashed \
                         past its retry budget."
       8
  :: Cmd.Exit.defaults

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniSpark source file")

let check_cmd =
  Cmd.v (Cmd.info "check" ~exits ~doc:"Parse and type-check a MiniSpark program")
    Term.(const cmd_check $ path_arg $ const ())

let analyze_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output")
  in
  let no_vcs =
    Arg.(value & flag
         & info [ "no-vcs" ]
             ~doc:"Skip VC generation and interval discharge (flow and \
                   amenability checks only)")
  in
  Cmd.v
    (Cmd.info "analyze" ~exits
       ~doc:"Examiner-style static analysis: definite-initialisation and \
             information-flow checks, refactoring-amenability lint, and \
             interval discharge of exception-freedom VCs")
    Term.(const cmd_analyze $ path_arg $ json $ no_vcs $ const ())

let impact_cmd =
  let old_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"OLD" ~doc:"Baseline MiniSpark source file")
  in
  let new_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"NEW" ~doc:"Edited MiniSpark source file")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Machine-readable JSON output")
  in
  let no_vcs =
    Arg.(value & flag
         & info [ "no-vcs" ]
             ~doc:"Skip VC generation (dependency graph, semantic diff and \
                   impact plan only — no re-prove VC counts)")
  in
  Cmd.v
    (Cmd.info "impact" ~exits
       ~doc:"Change-impact analysis between two versions of a program: \
             semantic diff over per-subprogram digests, interprocedural \
             dependency propagation, and the minimal sound set of VCs to \
             re-prove")
    Term.(const cmd_impact $ old_arg $ new_arg $ json $ no_vcs $ const ())

let metrics_cmd =
  Cmd.v (Cmd.info "metrics" ~exits ~doc:"Print the verification-guidance metrics (§5.2)")
    Term.(const cmd_metrics $ path_arg $ const ())

let suggest_cmd =
  Cmd.v (Cmd.info "suggest" ~exits ~doc:"Suggest loop-rerolling transformations")
    Term.(const cmd_suggest $ path_arg $ const ())

let vcs_cmd =
  Cmd.v (Cmd.info "vcs" ~exits ~doc:"Generate verification conditions and report sizes")
    Term.(const cmd_vcs $ path_arg $ const ())

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Prove VCs on N domains with work stealing.  Defaults to the \
                 visible core count; explicit values above it are honoured \
                 with a warning (extra domains only time-share).  Verdicts \
                 are identical for any value")

let prove_cmd =
  let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-VC details") in
  Cmd.v (Cmd.info "prove" ~exits ~doc:"Run the implementation proof on an annotated program")
    Term.(const cmd_prove $ path_arg $ verbose $ jobs_arg $ const ())

let aes_refactor_cmd =
  let upto =
    Arg.(value & opt int 14 & info [ "upto" ] ~docv:"N" ~doc:"Stop after block N")
  in
  let dump =
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc:"Write the result")
  in
  Cmd.v (Cmd.info "refactor" ~exits ~doc:"Run the 14-block AES verification refactoring")
    Term.(const cmd_aes_refactor $ upto $ dump $ const ())

let aes_verify_cmd =
  let run_dir =
    Arg.(value & opt (some string) None
         & info [ "run-dir" ] ~docv:"DIR" ~doc:"Checkpoint directory for the run")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ] ~doc:"Resume from the checkpoints in --run-dir")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Global pipeline wall-clock budget")
  in
  let vc_deadline =
    Arg.(value & opt (some float) None
         & info [ "vc-deadline" ] ~docv:"SECONDS" ~doc:"Per-VC-attempt wall-clock budget")
  in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Run the flow-analysis pre-pass; interval analysis \
                   statically discharges exception-freedom VCs so the \
                   prover never sees them")
  in
  let certify =
    Arg.(value & flag
         & info [ "certify" ]
             ~doc:"Certify every refactoring step: per-step equivalence \
                   VCs through the proof cache plus a differential \
                   fuzzing oracle.  A refuted step fails the run with \
                   exit code 7")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persistent proof-cache directory shared across runs \
                   (default: proof-cache/ under --run-dir when set)")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ]
             ~doc:"Never consult or write the persistent proof cache")
  in
  let incremental =
    Arg.(value & flag
         & info [ "incremental" ]
             ~doc:"Incremental re-verification: load the baseline run's \
                   checkpoints, diff the annotated program, re-prove only \
                   the impacted VCs and carry every other baseline verdict \
                   (the impact audit is checkpointed and printed)")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"DIR"
             ~doc:"Baseline run directory for --incremental (default: \
                   --run-dir; implies --incremental when given)")
  in
  let edit_sub =
    Arg.(value & opt (some string) None
         & info [ "edit-sub" ] ~docv:"NAME"
             ~doc:"With --incremental: apply a benign synthetic edit (a \
                   true assert) to the named subprogram of the baseline's \
                   annotated program before re-verifying — the measurable \
                   one-subprogram change the CI gate is built on")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write a Chrome trace_event file \
                   (chrome://tracing, ui.perfetto.dev)")
  in
  let metrics =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"Enable telemetry and write the metrics snapshot as JSON")
  in
  Cmd.v
    (Cmd.info "verify" ~exits
       ~doc:"Full Echo pipeline on AES under the resilient orchestrator: refactor, \
             both proofs, with optional budgets, checkpoint/resume, incremental \
             re-verification and telemetry")
    Term.(
      const cmd_aes_verify $ run_dir $ resume $ deadline $ vc_deadline $ analyze
      $ certify $ jobs_arg $ cache_dir $ no_cache $ incremental $ baseline
      $ edit_sub $ trace $ metrics $ const ())

let aes_defects_cmd =
  let setup =
    Arg.(value & opt int 0 & info [ "setup" ] ~docv:"N" ~doc:"Run only setup 1 or 2")
  in
  Cmd.v (Cmd.info "defects" ~exits ~doc:"Run the seeded-defect experiment (Tables 2/3)")
    Term.(const cmd_aes_defects $ setup $ const ())

let aes_dump_cmd =
  let which =
    Arg.(value & pos 0 string "optimized" & info [] ~docv:"VARIANT"
           ~doc:"optimized | refactored | annotated")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output file")
  in
  Cmd.v (Cmd.info "dump" ~exits ~doc:"Print an AES program variant as MiniSpark source")
    Term.(const cmd_aes_dump $ which $ out $ const ())

let aes_cmd =
  Cmd.group (Cmd.info "aes" ~exits ~doc:"The AES case study (§6)")
    [ aes_refactor_cmd; aes_verify_cmd; aes_defects_cmd; aes_dump_cmd ]

let certify_cmd =
  let defects =
    Arg.(value & flag
         & info [ "defects" ]
             ~doc:"Certify each seeded defect against the original \
                   program instead of running the refactoring script; \
                   every non-benign defect must be refuted with a \
                   concrete counterexample")
  in
  let trials =
    Arg.(value & opt int 24
         & info [ "trials" ] ~docv:"N"
             ~doc:"Differential-oracle trials per certification target")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Persistent proof cache for the equivalence VCs; a \
                   repeated script re-certifies its static side for free")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write the per-step certificates (or per-defect \
                   outcomes) as a JSON artifact")
  in
  Cmd.v
    (Cmd.info "certify" ~exits
       ~doc:"Certify the AES refactoring step by step: equivalence VCs on \
             the proof farm plus a fuel-bounded differential fuzzing \
             oracle.  Exit code 7 when a step is refuted or a seeded \
             defect escapes")
    Term.(const cmd_certify $ defects $ trials $ jobs_arg $ cache_dir $ json $ const ())

let chaos_cmd =
  let probe =
    Arg.(value & opt (some string) None
         & info [ "probe" ] ~docv:"NAME" ~doc:"Run a single probe instead of the suite")
  in
  Cmd.v
    (Cmd.info "chaos" ~exits
       ~doc:"Inject a fault into each pipeline stage and check the orchestrator \
             absorbs it (never raises, degrades gracefully)")
    Term.(const cmd_chaos $ probe $ const ())

let report_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"Run directory with persisted telemetry")
  in
  let top =
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc:"Rows in the top-N tables")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Also export the stored events as a Chrome trace_event file")
  in
  Cmd.v
    (Cmd.info "report" ~exits
       ~doc:"Render the telemetry of a previous run: per-stage timings, slowest VCs, \
             retry hot spots, match-ratio evolution, metrics")
    Term.(const cmd_report $ dir $ top $ trace_out $ const ())

let profile_cmd =
  let dir =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR" ~doc:"Run directory with persisted telemetry")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"N" ~doc:"Rows in the cost-center table")
  in
  let focus =
    Arg.(value
         & opt (some (enum [ ("refactor", "refactor"); ("prove", "prove");
                             ("certify", "certify") ]))
             None
         & info [ "focus" ] ~docv:"STAGE"
             ~doc:"Restrict the analysis to one subtree: the refactor \
                   stage, the proof stages, or the per-step certification \
                   spans")
  in
  let flame =
    Arg.(value & opt (some string) None
         & info [ "flamegraph" ] ~docv:"FILE"
             ~doc:"Write a folded-stack (Brendan Gregg collapse format) \
                   flamegraph, loadable in speedscope or flamegraph.pl")
  in
  Cmd.v
    (Cmd.info "profile" ~exits
       ~doc:"Attribute a recorded run's time: hierarchical cost centers with \
             self/total time and GC words, the critical path with parallelism \
             efficiency, per-worker utilisation, per-category refactor time, \
             and folded-stack flamegraph export")
    Term.(const cmd_profile $ dir $ top $ focus $ flame $ const ())

let socket_arg =
  let doc = "Unix-domain socket the daemon listens on" in
  Arg.(value
       & opt string (default_socket ())
       & info [ "socket"; "s" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let capacity =
    Arg.(value & opt int 64
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Job-queue bound; submissions past it are rejected with \
                   backpressure")
  in
  let max_attempts =
    Arg.(value & opt int 2
         & info [ "max-attempts" ] ~docv:"N"
             ~doc:"Attempts per job including retries after worker crashes")
  in
  let cache_dir =
    Arg.(value & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Proof-cache directory shared by all workers (default: \
                   CACHE under --state-dir)")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the shared proof cache")
  in
  let state_dir =
    Arg.(value & opt (some string) None
         & info [ "state-dir" ] ~docv:"DIR"
             ~doc:"Daemon state: queue checkpoints, telemetry scratch")
  in
  let telemetry =
    Arg.(value & flag
         & info [ "telemetry" ]
             ~doc:"Collect a daemon trace (per-job spans with each worker's \
                   span tree merged in); written to serve-trace.jsonl under \
                   --state-dir on exit")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log daemon activity to stderr")
  in
  Cmd.v
    (Cmd.info "serve" ~exits
       ~doc:"Run the verification daemon: a bounded priority job queue feeding \
             forked proof-worker processes, streaming per-stage status and \
             verdicts to clients over NDJSON.  Duplicate submissions are \
             answered from the outcome table; jobs naming a baseline job \
             re-prove only the impacted subprograms; worker crashes are \
             retried on a respawned worker without daemon downtime")
    Term.(const cmd_serve $ socket_arg $ jobs_arg $ capacity $ max_attempts
          $ cache_dir $ no_cache $ state_dir $ telemetry $ verbose $ const ())

let submit_cmd =
  let id =
    Arg.(value & opt string ""
         & info [ "id" ] ~docv:"ID"
             ~doc:"Job id (daemon assigns one when omitted); later jobs can \
                   name it as their --baseline")
  in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Flow-analysis pre-pass + interval discharge before the proof")
  in
  let priority =
    Arg.(value & opt int 1
         & info [ "priority" ] ~docv:"P"
             ~doc:"Queue level: 0 urgent, 1 normal, 2 batch")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS" ~doc:"Per-job wall-clock budget")
  in
  let baseline_job =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"JOB"
             ~doc:"Completed job id to verify incrementally against: only \
                   subprograms the change-impact analysis flags are re-proved, \
                   every other verdict is carried over")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress per-stage progress")
  in
  Cmd.v
    (Cmd.info "submit" ~exits
       ~doc:"Submit a MiniSpark program to a running daemon, stream its \
             per-stage progress, and exit with the verdict's fault-taxonomy \
             code")
    Term.(const cmd_submit $ path_arg $ socket_arg $ id $ analyze $ priority
          $ deadline $ baseline_job $ quiet $ const ())

let main =
  Cmd.group
    (Cmd.info "echo-verify" ~version:"1.0.0" ~exits
       ~doc:"Echo verification with refactoring (Yin, Knight & Weimer, DSN 2009)")
    [ check_cmd; analyze_cmd; impact_cmd; metrics_cmd; suggest_cmd; vcs_cmd;
      prove_cmd; aes_cmd; certify_cmd; chaos_cmd; report_cmd; profile_cmd;
      serve_cmd; submit_cmd ]

let () = exit (Cmd.eval main)
