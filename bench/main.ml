(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6, §7) and prints paper-reported vs measured values.

   Figures 2(a)-(f): metric trajectories over the 14 refactoring blocks.
   Table 1: annotation counts.
   §6.2.3: implementation-proof statistics.
   §6.2.4: implication-proof statistics.
   Tables 2/3: the seeded-defect experiment.
   Static analysis: VC pre-discharge economics (BENCH_analysis.json).
   Ablations (DESIGN.md §5): simplifier off, architectural mapping off.
   Plus Bechamel micro-benchmarks of the underlying machinery.

   Absolute numbers necessarily differ from the 2009 SPARK/PVS toolchain;
   the shapes (monotone declines, infeasibility at early blocks, detection
   splits) are the reproduction targets.  See EXPERIMENTS.md. *)

open Minispark

let quick = Array.exists (fun a -> a = "--quick") Sys.argv

(* --smoke: CI mode — run only the instrumented orchestrated pipeline so
   the BENCH_*.json artifacts exist, skipping the long table/figure
   regenerations *)
let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let only = ref None

let () =
  Array.iteri
    (fun i a -> if a = "--only" && i + 1 < Array.length Sys.argv then only := Some Sys.argv.(i + 1))
    Sys.argv

let section name = Fmt.pr "@.=== %s ===@." name

let want name =
  match !only with None -> true | Some o -> String.equal o name

(* ------------------------------------------------------------------ *)
(* shared pipeline run                                                 *)
(* ------------------------------------------------------------------ *)

let snapshots_and_history = lazy (Aes.Aes_refactoring.run ())
let snapshots () = fst (Lazy.force snapshots_and_history)

let final_annotated =
  lazy
    (let s = List.nth (snapshots ()) 14 in
     let annotated = Aes.Aes_annotations.annotate s.Aes.Aes_refactoring.sn_program in
     Typecheck.check annotated)

(* ------------------------------------------------------------------ *)
(* Figure 2: per-block metric trajectories                             *)
(* ------------------------------------------------------------------ *)

(* paper-reported values where the text gives them explicitly; the
   histograms of Fig. 2 are otherwise only available as chart bars *)
let paper_loc = [ (0, 1365); (14, 412) ]
let paper_cyclo = [ (0, 2.40); (14, 1.48) ]

let fig2_metrics () =
  section "Figure 2(a)/(b): lines of code and average cyclomatic complexity";
  Fmt.pr "%-6s %-8s %-10s %-8s %-10s@." "block" "LoC" "paper-LoC" "cyclo" "paper-cyc";
  List.iter
    (fun (s : Aes.Aes_refactoring.snapshot) ->
      let m = Metrics.analyze s.Aes.Aes_refactoring.sn_program in
      let paper_l =
        match List.assoc_opt s.Aes.Aes_refactoring.sn_block paper_loc with
        | Some v -> string_of_int v
        | None -> "-"
      in
      let paper_c =
        match List.assoc_opt s.Aes.Aes_refactoring.sn_block paper_cyclo with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      Fmt.pr "%-6d %-8d %-10s %-8.2f %-10s@." s.Aes.Aes_refactoring.sn_block
        m.Metrics.element.Metrics.em_lines paper_l
        m.Metrics.complexity.Metrics.cm_avg_cyclomatic paper_c)
    (snapshots ())

(* Fig 2(c)/(d)/(e): VC generation with all postconditions true *)
let strip_functional_annotations (program : Ast.program) =
  let decls =
    List.map
      (function
        | Ast.Dsub s ->
            Ast.Dsub
              {
                s with
                Ast.sub_post = None;
                sub_body =
                  Ast.map_stmts
                    (fun st ->
                      match st with
                      | Ast.For fl -> [ Ast.For { fl with Ast.for_invariants = [] } ]
                      | Ast.While wl -> [ Ast.While { wl with Ast.while_invariants = [] } ]
                      | st -> [ st ])
                    s.Ast.sub_body;
              }
        | d -> d)
      program.Ast.prog_decls
  in
  { program with Ast.prog_decls = decls }

let fig2_vcs () =
  section "Figure 2(c)/(d)/(e): analysis time, generated and simplified VC sizes";
  Fmt.pr "(postconditions set to true, as in §6.2.2; sizes in KB; '-' = infeasible)@.";
  Fmt.pr "%-6s %-10s %-12s %-12s %-8s %-10s@." "block" "time(s)" "genVC(KB)"
    "simpVC(KB)" "VCs" "maxVC(ln)";
  let budget =
    { Vcgen.default_budget with
      Vcgen.max_vc_nodes = 3_000_000;
      max_total_nodes = 12_000_000 }
  in
  List.iter
    (fun (s : Aes.Aes_refactoring.snapshot) ->
      let program = strip_functional_annotations s.Aes.Aes_refactoring.sn_program in
      let env, program = Typecheck.check program in
      let t0 = Unix.gettimeofday () in
      let report = Vcgen.generate ~budget env program in
      match report.Vcgen.r_infeasible with
      | Some _ ->
          Fmt.pr "%-6d %-10s %-12s %-12s %-8s %-10s@." s.Aes.Aes_refactoring.sn_block
            "-" "-" "-" "-" "-"
      | None ->
          let vcs = Vcgen.all_vcs report in
          (* both columns in printed bytes, so they are comparable *)
          let gen_bytes =
            List.fold_left (fun acc vc -> acc + Logic.Formula.vc_byte_size vc) 0 vcs
          in
          (* simplify those below a per-VC size cap (the rest would defeat
             the simplifier, as the paper observed) *)
          let simp_bytes =
            List.fold_left
              (fun acc vc ->
                let size = Logic.Formula.vc_byte_size vc in
                if size > 2_000_000 then acc + size
                else
                  let vc' = Logic.Simplify.simplify_vc vc in
                  acc + Logic.Formula.vc_byte_size vc')
              0 vcs
          in
          let dt = Unix.gettimeofday () -. t0 in
          Fmt.pr "%-6d %-10.2f %-12d %-12d %-8d %-10d@." s.Aes.Aes_refactoring.sn_block
            dt (gen_bytes / 1024) (simp_bytes / 1024) (List.length vcs)
            (Vcgen.max_vc_lines report))
    (snapshots ());
  Fmt.pr "paper: block 1 = 51.16 MB generated / 2.59 MB simplified, 7h23m; final = 1.90 MB / 86 KB, 1m42s@."

let fig2f () =
  section "Figure 2(f): specification structure match ratio";
  Fmt.pr "%-6s %-10s@." "block" "ratio";
  List.iter
    (fun (s : Aes.Aes_refactoring.snapshot) ->
      let sk = Extract.skeleton s.Aes.Aes_refactoring.sn_program in
      let r = Aes.Aes_implication.match_ratio ~extracted:sk in
      Fmt.pr "%-6d %5.1f%%  (%d/%d)@." s.Aes.Aes_refactoring.sn_block
        (100.0 *. r.Specl.Match_ratio.mr_ratio) r.Specl.Match_ratio.mr_matched
        r.Specl.Match_ratio.mr_total)
    (snapshots ());
  Fmt.pr "paper: 25.9%% at block 0 rising to 96.3%% at block 14@."

(* ------------------------------------------------------------------ *)
(* Table 1 and the two proofs                                          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: annotations in the implementation proof";
  let _, annotated = Lazy.force final_annotated in
  let t = Aes.Aes_annotations.annotation_lines annotated in
  Fmt.pr "%-40s %-10s %-8s@." "Type" "measured" "paper";
  Fmt.pr "%-40s %-10d %-8d@." "Preconditions" t.Aes.Aes_annotations.t1_pre_lines 8;
  Fmt.pr "%-40s %-10d %-8d@." "Postconditions" t.Aes.Aes_annotations.t1_post_lines 123;
  Fmt.pr "%-40s %-10d %-8d@." "Loop Invariants & Assertions"
    t.Aes.Aes_annotations.t1_invariant_lines 54;
  Fmt.pr "%-40s %-10d %-8d@." "Proof Functions, Proof Rules & Other"
    t.Aes.Aes_annotations.t1_other_lines 32

let impl_proof () =
  section "Implementation proof (§6.2.3)";
  let env, annotated = Lazy.force final_annotated in
  let r = Echo.Implementation_proof.run env annotated in
  Fmt.pr "%a@." Echo.Implementation_proof.pp_report r;
  Fmt.pr "paper: 306 VCs, 86.6%% auto in 145s, 15/25 functions fully automatic@."

let implication_proof () =
  section "Implication proof (§6.2.4)";
  let env, annotated = Lazy.force final_annotated in
  let extracted = Extract.extract_program env annotated in
  let mr = Aes.Aes_implication.match_ratio ~extracted in
  Fmt.pr "extracted specification: %d lines, match ratio %a@."
    (Specl.Spretty.line_count extracted) Specl.Match_ratio.pp_result mr;
  let r = Aes.Aes_implication.run ~extracted in
  Fmt.pr "lemmas discharged: %d/%d in %.1fs@." r.Echo.Implication.im_proved
    r.Echo.Implication.im_total r.Echo.Implication.im_time;
  Fmt.pr "paper: 1685-line extracted spec, 32 major lemmas, all discharged interactively@."

(* ------------------------------------------------------------------ *)
(* Tables 2 and 3: seeded defects                                      *)
(* ------------------------------------------------------------------ *)

let tables23 () =
  section "Tables 2 and 3: defect detection (15 seeded defects, two setups)";
  let t1, t2 = Defects.Experiment.run_experiment () in
  Fmt.pr "%a@." Defects.Experiment.pp_table t1;
  Fmt.pr "paper (setup 1): refactoring 4, implementation 2, implication 8, left 1@.";
  Fmt.pr "%a@." Defects.Experiment.pp_table t2;
  Fmt.pr "paper (setup 2): refactoring 4, implementation 10, implication 0, left 1@.";
  section "Extension: defects seeded into the refactored program (proofs only)";
  Fmt.pr
    "(our refactoring checks every instance, so original-program defects are mostly@.\
     caught before the proofs; this variant isolates the annotation-placement contrast)@.";
  let p1, p2 = Defects.Experiment.run_post_experiment () in
  Fmt.pr "%a@." Defects.Experiment.pp_table p1;
  Fmt.pr "%a@." Defects.Experiment.pp_table p2

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                            *)
(* ------------------------------------------------------------------ *)

let ablation_simplifier () =
  section "Ablation: simplifier off (generated vs simplified VC residue)";
  let env, annotated = Lazy.force final_annotated in
  let report = Vcgen.generate env annotated in
  let vcs = Vcgen.all_vcs report in
  let raw = List.fold_left (fun a vc -> a + Logic.Formula.vc_byte_size vc) 0 vcs in
  let simplified =
    List.fold_left
      (fun a vc -> a + Logic.Formula.vc_byte_size (Logic.Simplify.simplify_vc vc))
      0 vcs
  in
  Fmt.pr "final program: %d KB raw, %d KB simplified (%.1fx reduction)@." (raw / 1024)
    (simplified / 1024)
    (float_of_int raw /. float_of_int (max 1 simplified))

let ablation_mapping () =
  section "Ablation: architectural mapping off (flat whole-cipher lemma only)";
  let env, annotated = Lazy.force final_annotated in
  let extracted = Extract.extract_program env annotated in
  (* with mapping: the lemma suite; without: only the top-level lemma *)
  let all = Aes.Aes_implication.lemmas ~extracted in
  let flat =
    List.filter
      (fun l ->
        List.mem l.Echo.Implication.lm_name
          [ "encrypt_block_lemma"; "decrypt_block_lemma"; "encrypt_kat_lemma" ])
      all
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = Echo.Implication.run f in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_all, t_all = time all in
  let r_flat, t_flat = time flat in
  Fmt.pr
    "with architectural mapping: %d lemmas (%d byte-level decided exhaustively), %.2fs@."
    r_all.Echo.Implication.im_total
    (List.length
       (List.filter
          (fun (_, o) ->
            match o with Echo.Implication.Holds (Echo.Implication.Exhaustive _) -> true | _ -> false)
          r_all.Echo.Implication.im_lemmas))
    t_all;
  Fmt.pr
    "flat comparison only: %d lemmas, %.2fs — no exhaustive coverage of the \
     byte-level algebra, and a failure localises nowhere@."
    r_flat.Echo.Implication.im_total t_flat

let ablation_order () =
  section "Ablation: refactoring order (rerolling alone vs full sequence)";
  let partial, _ = Aes.Aes_refactoring.run ~upto:1 () in
  let s1 = List.nth partial 1 in
  let program = strip_functional_annotations s1.Aes.Aes_refactoring.sn_program in
  let env, program = Typecheck.check program in
  let budget =
    { Vcgen.default_budget with Vcgen.max_vc_nodes = 3_000_000; max_total_nodes = 12_000_000 }
  in
  let report = Vcgen.generate ~budget env program in
  (match report.Vcgen.r_infeasible with
  | Some _ -> Fmt.pr "block 1 alone: VC generation still infeasible@."
  | None ->
      Fmt.pr "block 1 alone: %d KB of VCs@."
        (Vcgen.bytes_of_nodes (Vcgen.total_nodes report) / 1024));
  Fmt.pr "the paper's heuristics (§5.2) put structural/global transformations first@."

(* ------------------------------------------------------------------ *)
(* Orchestrated pipeline: per-stage timing + retry counts as JSON       *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* short revision for the bench-history record: CI exposes GITHUB_SHA,
   local runs ask git, and a tarball build degrades to "unknown" *)
let git_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when String.length s >= 7 -> String.sub s 0 7
  | Some s when s <> "" -> s
  | _ -> (
      try
        let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
        let line = try input_line ic with End_of_file -> "" in
        match Unix.close_process_in ic with
        | Unix.WEXITED 0 when line <> "" -> line
        | _ -> "unknown"
      with _ -> "unknown")

(* serve-stream rates measured by serve_json, folded into the history
   record so Profile.detect_regressions watches the service path too;
   (0, 0) when the serve section has not run — of_json's back-compat
   default, which the detector's warm-up logic already tolerates *)
let serve_rates = ref (0.0, 0.0)

(* attribution artifacts distilled from one instrumented pipeline run:
   per-category refactor time, a flamegraph, and the history record that
   feeds the rolling-baseline regression gate *)
let profile_artifacts events (r : Echo.Orchestrator.report) =
  (* BENCH_refactor.json: per-transformation-category seconds, checked
     against the refactor stage span so unattributed time is visible *)
  let refactor_stage_seconds =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Telemetry.Span { sp_cat = cat; sp_name = name; sp_dur = dur; _ }
          when cat = Telemetry.cat_stage && name = "refactor" ->
            acc +. dur
        | _ -> acc)
      0.0 events
  in
  (* the per-block KAT gate is refactor-stage work that is not a
     transformation; it has its own span and its own line here, so the
     category sums plus the gate account for the whole stage *)
  let kat_gate_seconds =
    List.fold_left
      (fun acc ev ->
        match ev with
        | Telemetry.Span { sp_cat = cat; sp_name = name; sp_dur = dur; _ }
          when cat = "gate" && name = "kat-gate" ->
            acc +. dur
        | _ -> acc)
      0.0 events
  in
  let cats = Profile.refactor_categories events in
  let cats_total = List.fold_left (fun a (_, _, s) -> a +. s) 0.0 cats in
  let coverage_pct =
    if refactor_stage_seconds <= 0.0 then 0.0
    else 100.0 *. cats_total /. refactor_stage_seconds
  in
  let attributed_pct =
    if refactor_stage_seconds <= 0.0 then 0.0
    else 100.0 *. (cats_total +. kat_gate_seconds) /. refactor_stage_seconds
  in
  (* the remainder is loop overhead, snapshotting and history bookkeeping
     between steps; an explicit bucket keeps the accounting closed so the
     CI band on attributed_pct can be tight without hiding drift *)
  let other_seconds =
    Float.max 0.0 (refactor_stage_seconds -. cats_total -. kat_gate_seconds)
  in
  let cat_obj (c, steps, secs) =
    Printf.sprintf {|    {"category": "%s", "steps": %d, "seconds": %.4f}|}
      (json_escape c) steps secs
  in
  let steps_per_sec =
    if refactor_stage_seconds > 0.0 then
      float_of_int r.Echo.Orchestrator.o_refactor_steps /. refactor_stage_seconds
    else 0.0
  in
  (* the PR5 profiling run clocked the sequential refactor stage at
     26.69s; the sharing/incremental/memoization work is gated against
     that number (>= 5x, stage <= 5.4s) *)
  let pr5_baseline_seconds = 26.6889 in
  let speedup_vs_pr5 =
    if refactor_stage_seconds > 0.0 then
      pr5_baseline_seconds /. refactor_stage_seconds
    else 0.0
  in
  (* the identity gate for the parallel block runner: same script, once
     sequential and once on 2 domains, must agree on the final program,
     every step (name, evidence, after-state), and every per-block
     snapshot — with the KAT gate live on both sides (it raises on any
     vector mismatch, so reaching the comparison means both passed) *)
  let digest p = Minispark.Share.program_digest p in
  let t0 = Unix.gettimeofday () in
  let snap_s, h_s = Aes.Aes_refactoring.run () in
  let seq_seconds = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let snap_p, h_p = Aes.Aes_refactoring.run_parallel ~jobs:2 () in
  let par_seconds = Unix.gettimeofday () -. t0 in
  let _, p_s = Refactor.History.current h_s in
  let _, p_p = Refactor.History.current h_p in
  let digest_match = String.equal (digest p_s) (digest p_p) in
  let steps_s = Refactor.History.steps h_s
  and steps_p = Refactor.History.steps h_p in
  let steps_match =
    List.length steps_s = List.length steps_p
    && List.for_all2
         (fun (a : Refactor.History.step) (b : Refactor.History.step) ->
           String.equal a.Refactor.History.st_name b.Refactor.History.st_name
           && a.Refactor.History.st_index = b.Refactor.History.st_index
           && String.equal
                (digest a.Refactor.History.st_after)
                (digest b.Refactor.History.st_after))
         steps_s steps_p
  in
  let evidence_match =
    List.length steps_s = List.length steps_p
    && List.for_all2
         (fun (a : Refactor.History.step) (b : Refactor.History.step) ->
           a.Refactor.History.st_evidence = b.Refactor.History.st_evidence)
         steps_s steps_p
  in
  let snapshots_match =
    List.length snap_s = List.length snap_p
    && List.for_all2
         (fun (a : Aes.Aes_refactoring.snapshot) (b : Aes.Aes_refactoring.snapshot) ->
           a.Aes.Aes_refactoring.sn_block = b.Aes.Aes_refactoring.sn_block
           && String.equal
                (digest a.Aes.Aes_refactoring.sn_program)
                (digest b.Aes.Aes_refactoring.sn_program))
         snap_s snap_p
  in
  Fmt.pr
    "  parallel identity: seq %.2fs, jobs=2 %.2fs — digest %b, steps %b, evidence %b, snapshots %b@."
    seq_seconds par_seconds digest_match steps_match evidence_match
    snapshots_match;
  let json =
    Printf.sprintf
      {|{
  "case": "%s",
  "refactor_stage_seconds": %.4f,
  "steps_per_sec": %.2f,
  "pr5_baseline_seconds": %.4f,
  "speedup_vs_pr5": %.2f,
  "categories": [
%s
  ],
  "categories_total_seconds": %.4f,
  "kat_gate_seconds": %.4f,
  "other_seconds": %.4f,
  "coverage_pct": %.1f,
  "attributed_pct": %.1f,
  "parallel": {
    "jobs": 2,
    "sequential_seconds": %.3f,
    "parallel_seconds": %.3f,
    "speedup": %.2f,
    "digest_match": %b,
    "steps_match": %b,
    "evidence_match": %b,
    "snapshots_match": %b,
    "kat_gate_passed": true
  }
}
|}
      (json_escape r.Echo.Orchestrator.o_case)
      refactor_stage_seconds steps_per_sec pr5_baseline_seconds speedup_vs_pr5
      (String.concat ",\n" (List.map cat_obj cats))
      cats_total kat_gate_seconds other_seconds coverage_pct attributed_pct
      seq_seconds par_seconds
      (seq_seconds /. Float.max 1e-9 par_seconds)
      digest_match steps_match evidence_match snapshots_match
  in
  let oc = open_out "BENCH_refactor.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr
    "wrote BENCH_refactor.json (%d categories %.1f%%, + KAT gate = %.1f%% of refactor stage)@."
    (List.length cats) coverage_pct attributed_pct;
  (match Profile.write_folded ~path:"BENCH_flame.folded" events with
  | Ok () -> Fmt.pr "wrote BENCH_flame.folded@."
  | Error e -> Fmt.epr "warning: BENCH_flame.folded: %s@." e);
  (* bench history: append this run, then compare against the rolling
     baseline — warn-only, so a slow container never fails the build *)
  let stage_seconds =
    List.filter_map
      (fun (s, status) ->
        match status with
        | Echo.Orchestrator.St_ok { st_time; _ } ->
            Some (Echo.Checkpoint.stage_name s, st_time)
        | _ -> None)
      r.Echo.Orchestrator.o_stages
  in
  let vcs_per_sec =
    match r.Echo.Orchestrator.o_impl with
    | Some ip when ip.Echo.Implementation_proof.ip_time > 0.0 ->
        float_of_int ip.Echo.Implementation_proof.ip_total
        /. ip.Echo.Implementation_proof.ip_time
    | _ -> 0.0
  in
  let record =
    {
      Profile.h_timestamp = Unix.time ();
      h_git_rev = git_rev ();
      h_cores = Domain.recommended_domain_count ();
      h_total_seconds = r.Echo.Orchestrator.o_time;
      h_stage_seconds = stage_seconds;
      h_vcs_per_sec = vcs_per_sec;
      h_steps_per_sec = steps_per_sec;
      h_serve_jobs_per_sec = fst !serve_rates;
      h_serve_p95_s = snd !serve_rates;
    }
  in
  (match Profile.append_history ~path:"BENCH_history.jsonl" record with
  | Ok () -> Fmt.pr "appended run to BENCH_history.jsonl@."
  | Error e -> Fmt.epr "warning: BENCH_history.jsonl: %s@." e);
  match Profile.load_history ~path:"BENCH_history.jsonl" with
  | Error e -> Fmt.epr "warning: BENCH_history.jsonl: %s@." e
  | Ok records -> (
      match Profile.detect_regressions records with
      | [] ->
          Fmt.pr "  no perf regressions vs rolling baseline (%d record(s) in history)@."
            (List.length records)
      | regs ->
          List.iter
            (fun rg ->
              Fmt.pr "  PERF WARNING: %s %.3f vs baseline %.3f (%+.1f%%)@."
                rg.Profile.rg_metric rg.Profile.rg_latest rg.Profile.rg_baseline
                rg.Profile.rg_delta_pct)
            regs)

let pipeline_json () =
  section "Orchestrated pipeline timing (BENCH_pipeline.json)";
  Telemetry.reset ();
  Telemetry.enable ();
  let r = Echo.Orchestrator.run Aes.Aes_echo.case_study in
  let stage_obj (s, status) =
    let name = Echo.Checkpoint.stage_name s in
    match status with
    | Echo.Orchestrator.St_ok { st_time; st_from_checkpoint } ->
        Printf.sprintf
          {|    {"name": "%s", "status": "ok", "seconds": %.3f, "from_checkpoint": %b}|}
          name st_time st_from_checkpoint
    | Echo.Orchestrator.St_failed f ->
        Printf.sprintf {|    {"name": "%s", "status": "failed", "fault": "%s"}|} name
          (json_escape (Echo.Fault.describe f))
    | Echo.Orchestrator.St_skipped ->
        Printf.sprintf {|    {"name": "%s", "status": "skipped"}|} name
  in
  let impl_obj =
    match r.Echo.Orchestrator.o_impl with
    | None -> "null"
    | Some ip ->
        let retried =
          List.length
            (List.filter
               (fun (vr : Echo.Implementation_proof.vc_result) ->
                 vr.Echo.Implementation_proof.vr_attempts > 1)
               ip.Echo.Implementation_proof.ip_results)
        in
        let max_attempts =
          List.fold_left
            (fun acc (vr : Echo.Implementation_proof.vc_result) ->
              max acc vr.Echo.Implementation_proof.vr_attempts)
            0 ip.Echo.Implementation_proof.ip_results
        in
        Printf.sprintf
          {|{"vcs": %d, "auto": %d, "hinted": %d, "residual": %d, "timed_out": %d,
     "attempts": %d, "vcs_retried": %d, "max_attempts_per_vc": %d, "seconds": %.3f}|}
          ip.Echo.Implementation_proof.ip_total ip.Echo.Implementation_proof.ip_auto
          ip.Echo.Implementation_proof.ip_hinted ip.Echo.Implementation_proof.ip_residual
          ip.Echo.Implementation_proof.ip_timed_out ip.Echo.Implementation_proof.ip_attempts
          retried max_attempts ip.Echo.Implementation_proof.ip_time
  in
  let json =
    Printf.sprintf
      {|{
  "case": "%s",
  "verdict": "%s",
  "total_seconds": %.3f,
  "prover_attempts": %d,
  "refactor_steps": %d,
  "stages": [
%s
  ],
  "implementation_proof": %s
}
|}
      (json_escape r.Echo.Orchestrator.o_case)
      (json_escape (Fmt.str "%a" Echo.Orchestrator.pp_verdict r.Echo.Orchestrator.o_verdict))
      r.Echo.Orchestrator.o_time r.Echo.Orchestrator.o_attempts
      r.Echo.Orchestrator.o_refactor_steps
      (String.concat ",\n" (List.map stage_obj r.Echo.Orchestrator.o_stages))
      impl_obj
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc json;
  close_out oc;
  (* the run's telemetry: metrics snapshot + Chrome trace *)
  (match Telemetry.write_metrics ~path:"BENCH_telemetry.json" (Telemetry.snapshot ()) with
  | Ok () -> Fmt.pr "wrote BENCH_telemetry.json@."
  | Error e -> Fmt.epr "warning: BENCH_telemetry.json: %s@." e);
  let events = Telemetry.events () in
  (match Telemetry.write_chrome_trace ~path:"BENCH_trace.json" events with
  | Ok () -> Fmt.pr "wrote BENCH_trace.json@."
  | Error e -> Fmt.epr "warning: BENCH_trace.json: %s@." e);
  Telemetry.disable ();
  profile_artifacts events r;
  Fmt.pr "%a@." Echo.Orchestrator.pp_report r;
  Fmt.pr "wrote BENCH_pipeline.json@."

(* ------------------------------------------------------------------ *)
(* Static analysis: VC pre-discharge economics as JSON                 *)
(* ------------------------------------------------------------------ *)

let analysis_json () =
  section "Static analysis pre-discharge (BENCH_analysis.json)";
  let env, annotated = Lazy.force final_annotated in
  let an = Analysis.Examiner.analyze ~vcs:true env annotated in
  let discharged_names = List.map snd an.Analysis.Examiner.ex_discharged in
  (* one baseline proof run (no discharge) prices the discharged set in
     prover seconds: what the ladder would have spent on those VCs *)
  let r = Echo.Implementation_proof.run env annotated in
  let saved, total_time =
    List.fold_left
      (fun (saved, total) (vr : Echo.Implementation_proof.vc_result) ->
        let t = vr.Echo.Implementation_proof.vr_time in
        let name = vr.Echo.Implementation_proof.vr_vc.Logic.Formula.vc_name in
        ((if List.mem name discharged_names then saved +. t else saved), total +. t))
      (0.0, 0.0) r.Echo.Implementation_proof.ip_results
  in
  let d = Analysis.Examiner.diags an in
  let total = an.Analysis.Examiner.ex_vcs_total in
  let discharged = an.Analysis.Examiner.ex_vcs_discharged in
  let pct =
    if total = 0 then 0.0 else 100.0 *. float_of_int discharged /. float_of_int total
  in
  let json =
    Printf.sprintf
      {|{
  "case": "aes-final-annotated",
  "exception_freedom_vcs": %d,
  "discharged": %d,
  "discharged_pct": %.1f,
  "sent_to_prover": %d,
  "prover_time_saved_s": %.3f,
  "total_prover_time_s": %.3f,
  "diagnostics": {"errors": %d, "warnings": %d, "infos": %d},
  "amenability_findings": %d
}
|}
      total discharged pct (total - discharged) saved total_time
      (Analysis.Diag.count Analysis.Diag.Error d)
      (Analysis.Diag.count Analysis.Diag.Warning d)
      (Analysis.Diag.count Analysis.Diag.Info d)
      (List.length an.Analysis.Examiner.ex_amen)
  in
  let oc = open_out "BENCH_analysis.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "%d/%d exception-freedom VCs discharged (%.1f%%), %.3fs of prover time saved@."
    discharged total pct saved;
  Fmt.pr "wrote BENCH_analysis.json@."

(* ------------------------------------------------------------------ *)
(* Hash-consed prover core: sequential throughput + simplify memo      *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of the sequential implementation proof on this machine at
   PR 4 (pre hash-consing), the denominator of the reported speedup. *)
let pr4_baseline_seq_s = 7.6

let prover_json () =
  section "Hash-consed prover microbenchmark (BENCH_prover.json)";
  let env, annotated = Lazy.force final_annotated in
  (* sequential prover phase, with allocation accounting *)
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = Echo.Implementation_proof.run ~jobs:1 env annotated in
  let dt = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let vcs_total = r.Echo.Implementation_proof.ip_total in
  let vcs_per_sec = float_of_int vcs_total /. Float.max 1e-9 dt in
  let major_words = g1.Gc.major_words -. g0.Gc.major_words in
  let total_words =
    g1.Gc.minor_words +. g1.Gc.major_words -. g1.Gc.promoted_words
    -. (g0.Gc.minor_words +. g0.Gc.major_words -. g0.Gc.promoted_words)
  in
  let per_vc w = w /. float_of_int (max 1 vcs_total) in
  (* cold vs memo-warm simplification over the final program's VC set:
     cold is the raw fixpoint, warm hits the per-domain memo table that
     the proof run above has already populated *)
  let vcs = Vcgen.all_vcs (Vcgen.generate env annotated) in
  let each_term f =
    List.iter
      (fun vc ->
        List.iter (fun h -> ignore (f h)) vc.Logic.Formula.vc_hyps;
        ignore (f vc.Logic.Formula.vc_goal))
      vcs
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let t_cold = time (fun () -> each_term Logic.Simplify.simplify_nomemo) in
  each_term Logic.Simplify.simplify;
  let t_warm = time (fun () -> each_term Logic.Simplify.simplify) in
  let speedup = pr4_baseline_seq_s /. Float.max 1e-9 dt in
  Fmt.pr
    "  sequential: %.2fs for %d VCs (%.1f VCs/s), %.0f major words/VC, %.1fx vs PR4 baseline %.1fs@."
    dt vcs_total vcs_per_sec (per_vc major_words) speedup pr4_baseline_seq_s;
  Fmt.pr "  simplify: cold %.3fs, memo-warm %.3fs (%.1fx)@." t_cold t_warm
    (t_cold /. Float.max 1e-9 t_warm);
  let json =
    Printf.sprintf
      {|{
  "case": "aes-final-annotated",
  "sequential": {
    "seconds": %.3f,
    "vcs": %d,
    "auto": %d,
    "hinted": %d,
    "residual": %d,
    "timed_out": %d,
    "attempts": %d,
    "vcs_per_sec": %.2f,
    "major_words_per_vc": %.1f,
    "allocated_words_per_vc": %.1f
  },
  "simplify": {
    "cold_seconds": %.4f,
    "memo_warm_seconds": %.4f,
    "warm_speedup": %.2f
  },
  "pr4_baseline_seconds": %.3f,
  "speedup_vs_pr4": %.2f
}
|}
      dt vcs_total r.Echo.Implementation_proof.ip_auto
      r.Echo.Implementation_proof.ip_hinted r.Echo.Implementation_proof.ip_residual
      r.Echo.Implementation_proof.ip_timed_out r.Echo.Implementation_proof.ip_attempts
      vcs_per_sec (per_vc major_words) (per_vc total_words)
      t_cold t_warm
      (t_cold /. Float.max 1e-9 t_warm)
      pr4_baseline_seq_s speedup
  in
  let oc = open_out "BENCH_prover.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_prover.json@."

(* ------------------------------------------------------------------ *)
(* Proof farm: domain-scaling curve + cold/warm cache as JSON          *)
(* ------------------------------------------------------------------ *)

(* a machine-independent key for one VC's outcome: the timed-out payload
   is wall-clock and must not enter the comparison *)
let status_key (vr : Echo.Implementation_proof.vc_result) =
  let s =
    match vr.Echo.Implementation_proof.vr_status with
    | Echo.Implementation_proof.Auto -> "auto"
    | Echo.Implementation_proof.Hinted n -> Printf.sprintf "hinted:%d" n
    | Echo.Implementation_proof.Residual r -> "residual:" ^ r
    | Echo.Implementation_proof.Timed_out _ -> "timed-out"
    | Echo.Implementation_proof.Discharged -> "discharged"
  in
  (vr.Echo.Implementation_proof.vr_vc.Logic.Formula.vc_name, s)

let verdict_keys (r : Echo.Implementation_proof.report) =
  List.map status_key r.Echo.Implementation_proof.ip_results

let farm_json () =
  section "Proof farm scaling + proof cache (BENCH_farm.json)";
  (* visible core count, so consumers (CI) can tell a genuine scaling
     regression from a single-core container time-sharing its domains *)
  let visible_cores = Domain.recommended_domain_count () in
  Fmt.pr "  visible cores: %d@." visible_cores;
  let env, annotated = Lazy.force final_annotated in
  (* scaling curve: same VC set on 1, 2 and 4 domains *)
  let curve =
    List.map
      (fun jobs ->
        let t0 = Unix.gettimeofday () in
        let r = Echo.Implementation_proof.run ~jobs env annotated in
        let dt = Unix.gettimeofday () -. t0 in
        Fmt.pr "  jobs=%d: %.2fs  (%d VCs, %d auto, %d hinted)@." jobs dt
          r.Echo.Implementation_proof.ip_total r.Echo.Implementation_proof.ip_auto
          r.Echo.Implementation_proof.ip_hinted;
        (jobs, dt, r))
      [ 1; 2; 4 ]
  in
  let baseline =
    match curve with (_, _, r) :: _ -> verdict_keys r | [] -> assert false
  in
  let verdicts_identical =
    List.for_all (fun (_, _, r) -> verdict_keys r = baseline) curve
  in
  (* cold vs warm cache: a fresh directory, then a second run over it *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "echo-bench-cache-%d" (Unix.getpid ()))
  in
  let timed_run () =
    let cache = Farm.Cache.open_ ~dir:cache_dir in
    let t0 = Unix.gettimeofday () in
    let r = Echo.Implementation_proof.run ~cache env annotated in
    (r, Unix.gettimeofday () -. t0)
  in
  let r_cold, t_cold = timed_run () in
  let r_warm, t_warm = timed_run () in
  let hit_rate =
    let h = r_warm.Echo.Implementation_proof.ip_cache_hits in
    let m = r_warm.Echo.Implementation_proof.ip_cache_misses in
    if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m)
  in
  let warm_identical = verdict_keys r_warm = verdict_keys r_cold in
  Fmt.pr "  cache: cold %.2fs, warm %.2fs (%d hit(s), %d miss(es), %.1f%% hit rate)@."
    t_cold t_warm r_warm.Echo.Implementation_proof.ip_cache_hits
    r_warm.Echo.Implementation_proof.ip_cache_misses hit_rate;
  let scaling_obj (jobs, dt, (r : Echo.Implementation_proof.report)) =
    (* an oversubscribed leg (more domains than visible cores) measures
       time-sharing, not scaling: it is recorded for completeness but
       flagged advisory so CI and history consumers skip it when judging
       the scaling curve *)
    Printf.sprintf
      {|    {"jobs": %d, "seconds": %.3f, "advisory": %b, "vcs": %d, "auto": %d, "hinted": %d, "residual": %d, "timed_out": %d}|}
      jobs dt (jobs > visible_cores)
      r.Echo.Implementation_proof.ip_total r.Echo.Implementation_proof.ip_auto
      r.Echo.Implementation_proof.ip_hinted r.Echo.Implementation_proof.ip_residual
      r.Echo.Implementation_proof.ip_timed_out
  in
  let json =
    Printf.sprintf
      {|{
  "case": "aes-final-annotated",
  "visible_cores": %d,
  "scaling": [
%s
  ],
  "verdicts_identical": %b,
  "cache": {
    "cold_seconds": %.3f,
    "warm_seconds": %.3f,
    "cold_hits": %d,
    "cold_misses": %d,
    "warm_hits": %d,
    "warm_misses": %d,
    "warm_hit_rate_pct": %.1f,
    "warm_verdicts_identical": %b
  }
}
|}
      visible_cores
      (String.concat ",\n" (List.map scaling_obj curve))
      verdicts_identical t_cold t_warm
      r_cold.Echo.Implementation_proof.ip_cache_hits
      r_cold.Echo.Implementation_proof.ip_cache_misses
      r_warm.Echo.Implementation_proof.ip_cache_hits
      r_warm.Echo.Implementation_proof.ip_cache_misses hit_rate warm_identical
  in
  let oc = open_out "BENCH_farm.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_farm.json@."

(* ------------------------------------------------------------------ *)
(* Certified refactoring: per-step equivalence evidence as JSON         *)
(* ------------------------------------------------------------------ *)

let certify_json () =
  section "Certified refactoring (BENCH_certify.json)";
  (* smoke keeps CI fast with a prefix of the script; the full run
     certifies all 14 blocks *)
  let upto = if smoke then Some 3 else None in
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "echo-bench-certify-%d" (Unix.getpid ()))
  in
  (* cold then warm against the same cache directory: the warm run's
     equivalence VCs come back as cache hits, pricing re-certification *)
  let certified_run () =
    let cfg =
      { (Refactor.Certify.default_config ~entries:[ "encrypt_block"; "decrypt_block" ] ()) with
        Refactor.Certify.cf_cache = Some (Farm.Cache.open_ ~dir:cache_dir) }
    in
    let t0 = Unix.gettimeofday () in
    let _, history = Aes.Aes_refactoring.run ?upto ~certify:cfg () in
    (history, Unix.gettimeofday () -. t0)
  in
  let h_cold, t_cold = certified_run () in
  let h_warm, t_warm = certified_run () in
  let certs = Refactor.History.certificates h_cold in
  let audit = Refactor.Certify.audit certs in
  let s_cold = Refactor.History.certification_stats h_cold in
  let s_warm = Refactor.History.certification_stats h_warm in
  let steps = Refactor.History.step_count h_cold in
  let per_sec dt = float_of_int steps /. Float.max 1e-9 dt in
  let hit_rate (s : Refactor.Certify.stats) =
    let h = s.Refactor.Certify.ct_cache_hits
    and m = s.Refactor.Certify.ct_cache_misses in
    if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m)
  in
  Fmt.pr "  %d step(s): %d certified, %d refuted, %d unknown (%d targets)@." steps
    audit.Refactor.Certify.au_certified audit.Refactor.Certify.au_refuted
    audit.Refactor.Certify.au_unknown s_cold.Refactor.Certify.ct_targets;
  Fmt.pr
    "  cold: %.2fs (%.2f steps/s; VCs %.2fs, oracle %.2fs), %d VC(s) generated, %d proved, %d oracle trial(s)@."
    t_cold (per_sec t_cold) s_cold.Refactor.Certify.ct_vc_seconds
    s_cold.Refactor.Certify.ct_oracle_seconds s_cold.Refactor.Certify.ct_vcs_generated
    s_cold.Refactor.Certify.ct_vcs_proved s_cold.Refactor.Certify.ct_oracle_trials;
  Fmt.pr
    "  warm: %.2fs (%.2f steps/s; VCs %.2fs, oracle %.2fs), cache %d hit(s) / %d miss(es) (%.1f%% hit rate)@."
    t_warm (per_sec t_warm) s_warm.Refactor.Certify.ct_vc_seconds
    s_warm.Refactor.Certify.ct_oracle_seconds s_warm.Refactor.Certify.ct_cache_hits
    s_warm.Refactor.Certify.ct_cache_misses (hit_rate s_warm);
  let run_obj (s : Refactor.Certify.stats) dt =
    let trials_per_sec =
      if s.Refactor.Certify.ct_oracle_seconds <= 0.0 then 0.0
      else
        float_of_int s.Refactor.Certify.ct_oracle_trials
        /. s.Refactor.Certify.ct_oracle_seconds
    in
    Printf.sprintf
      {|{"seconds": %.3f, "steps_per_sec": %.3f, "vc_seconds": %.3f, "oracle_seconds": %.3f, "trials_per_sec": %.1f, "cache_hits": %d, "cache_misses": %d, "hit_rate_pct": %.1f}|}
      dt (per_sec dt) s.Refactor.Certify.ct_vc_seconds
      s.Refactor.Certify.ct_oracle_seconds trials_per_sec
      s.Refactor.Certify.ct_cache_hits s.Refactor.Certify.ct_cache_misses
      (hit_rate s)
  in
  let json =
    Printf.sprintf
      {|{
  "case": "aes-refactoring-script",
  "steps": %d,
  "certified": %d,
  "refuted": %d,
  "unknown": %d,
  "targets": %d,
  "vcs_generated": %d,
  "vcs_proved": %d,
  "oracle_trials": %d,
  "cold": %s,
  "warm": %s
}
|}
      steps audit.Refactor.Certify.au_certified audit.Refactor.Certify.au_refuted
      audit.Refactor.Certify.au_unknown s_cold.Refactor.Certify.ct_targets
      s_cold.Refactor.Certify.ct_vcs_generated s_cold.Refactor.Certify.ct_vcs_proved
      s_cold.Refactor.Certify.ct_oracle_trials
      (run_obj s_cold t_cold) (run_obj s_warm t_warm)
  in
  let oc = open_out "BENCH_certify.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_certify.json@."

(* ------------------------------------------------------------------ *)
(* Change-impact analysis: incremental re-verification economics       *)
(* ------------------------------------------------------------------ *)

(* the synthetic one-subprogram edit the CI gate is built on: a true
   assert prepended to the body — changes the body digest and adds one
   trivial VC while leaving every contract and verdict class alone *)
let impact_edit_sub = "shift_rows"

let impact_benign_edit prog =
  Ast.update_sub prog impact_edit_sub (fun sp ->
      { sp with Ast.sub_body = Ast.Assert (Ast.Bool_lit true) :: sp.Ast.sub_body })

let impact_json () =
  section "Change-impact incremental re-verification (BENCH_impact.json)";
  let tmp name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "echo-bench-impact-%s-%d" name (Unix.getpid ()))
  in
  let base_dir = tmp "base" and ref_dir = tmp "ref" and incr_dir = tmp "incr" in
  (* ECHO_JOBS lets each CI matrix leg exercise its own farm width;
     unset, follow the visible-core cap rather than a hard-coded 4 *)
  let jobs =
    match Sys.getenv_opt "ECHO_JOBS" with
    | Some s ->
        (try max 1 (int_of_string (String.trim s))
         with _ -> Farm.Pool.default_jobs ())
    | None -> Farm.Pool.default_jobs ()
  in
  let timed config =
    let t0 = Unix.gettimeofday () in
    let r = Echo.Orchestrator.run ~config Aes.Aes_echo.case_study in
    (r, Unix.gettimeofday () -. t0)
  in
  (* 1. the cold full run: pristine program, fresh run directory — the
     wall clock the incremental run is measured against *)
  let cfg_full =
    { Echo.Orchestrator.default_config with
      Echo.Orchestrator.oc_run_dir = Some base_dir;
      oc_jobs = jobs }
  in
  let r_full, t_full = timed cfg_full in
  Fmt.pr "  full (cold):        %.2fs  %a@." t_full Echo.Orchestrator.pp_verdict
    r_full.Echo.Orchestrator.o_verdict;
  (* 2. the reference run: the same edit, full re-prove (carry off) — the
     verdicts the incremental run must reproduce exactly *)
  let cfg_ref =
    { cfg_full with
      Echo.Orchestrator.oc_run_dir = Some ref_dir;
      oc_baseline = Some base_dir;
      oc_edit = Some impact_benign_edit;
      oc_carry = false }
  in
  let r_ref, t_ref = timed cfg_ref in
  Fmt.pr "  full on edited:     %.2fs  %a@." t_ref Echo.Orchestrator.pp_verdict
    r_ref.Echo.Orchestrator.o_verdict;
  (* 3. the incremental run: same edit, carry on — only the impacted VCs
     are re-proved, every other baseline verdict is carried over *)
  let cfg_incr = { cfg_ref with Echo.Orchestrator.oc_run_dir = Some incr_dir;
                   oc_carry = true } in
  let r_incr, t_incr = timed cfg_incr in
  Fmt.pr "  incremental:        %.2fs  %a@." t_incr Echo.Orchestrator.pp_verdict
    r_incr.Echo.Orchestrator.o_verdict;
  let impl r =
    match r.Echo.Orchestrator.o_impl with
    | Some ip -> ip
    | None -> failwith "impact bench: run produced no implementation proof"
  in
  let ip_incr = impl r_incr in
  let total = ip_incr.Echo.Implementation_proof.ip_total in
  let carried = ip_incr.Echo.Implementation_proof.ip_carried in
  let reproved = total - carried in
  let reproved_pct =
    if total = 0 then 0.0 else 100.0 *. float_of_int reproved /. float_of_int total
  in
  (* verdict identity: carried results keep the baseline status, so the
     per-VC (name, status) multiset must match the full-on-edited run *)
  let keys r = List.sort compare (verdict_keys (impl r)) in
  let verdicts_identical = keys r_incr = keys r_ref in
  let speedup = if t_incr <= 0.0 then 0.0 else t_full /. t_incr in
  let audit =
    match r_incr.Echo.Orchestrator.o_impact with
    | Some a -> a
    | None -> failwith "impact bench: incremental run produced no impact audit"
  in
  let changed = List.length audit.Echo.Checkpoint.im_changed in
  let impacted = List.length audit.Echo.Checkpoint.im_impacted in
  let carried_subs = List.length audit.Echo.Checkpoint.im_carried in
  Fmt.pr
    "  impact: %d changed, %d re-prove, %d carried; VCs %d/%d re-proved (%.1f%%)@."
    changed impacted carried_subs reproved total reproved_pct;
  Fmt.pr "  verdicts identical: %b; speedup vs cold full run: %.1fx@."
    verdicts_identical speedup;
  let json =
    Printf.sprintf
      {|{
  "case": "aes-one-subprogram-edit",
  "edit_sub": "%s",
  "jobs": %d,
  "subs_changed": %d,
  "impact_set_size": %d,
  "subs_carried": %d,
  "total_vcs": %d,
  "reproved_vcs": %d,
  "carried_vcs": %d,
  "reproved_pct": %.1f,
  "verdicts_identical": %b,
  "full_seconds": %.3f,
  "full_on_edited_seconds": %.3f,
  "incremental_seconds": %.3f,
  "speedup": %.1f
}
|}
      impact_edit_sub jobs changed impacted carried_subs total reproved carried
      reproved_pct verdicts_identical t_full t_ref t_incr speedup
  in
  let oc = open_out "BENCH_impact.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_impact.json@."

(* ------------------------------------------------------------------ *)
(* Echo-as-a-service: daemon job-stream economics (BENCH_serve.json)   *)
(* ------------------------------------------------------------------ *)

let serve_read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let serve_example name =
  let candidates =
    [ Filename.concat "examples/programs" name;
      Filename.concat "../examples/programs" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> serve_read_file p
  | None -> failwith ("serve bench: cannot find examples/programs/" ^ name)

(* the same benign-edit shape the impact bench uses, aimed at one of the
   stream pipeline's twelve independent stages: one subprogram's body
   digest changes, no verdict class does, and the impact set is a small
   fraction of the program's VCs *)
let serve_benign_edit src =
  let prog = Parser.of_string src in
  let prog =
    Ast.update_sub prog "mix" (fun sp ->
        { sp with Ast.sub_body = Ast.Assert (Ast.Bool_lit true) :: sp.Ast.sub_body })
  in
  Pretty.program_to_string prog

let serve_verdict_keys (results : Echo.Verify.vc_summary list) =
  List.map
    (fun (s : Echo.Verify.vc_summary) ->
      (s.Echo.Verify.vs_sub, s.Echo.Verify.vs_name, s.Echo.Verify.vs_status))
    results
  |> List.sort compare

let serve_percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
      List.nth sorted (max 0 (min (n - 1) (rank - 1)))

let serve_temp_dir name =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "echo-bench-serve-%s-%d" name (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let serve_json () =
  section "Echo-as-a-service job stream (BENCH_serve.json)";
  let src = serve_example "stream.mspark" in
  let edited = serve_benign_edit src in
  (* one-shot references, outside the daemon and its cache: the stream's
     verdicts must be indistinguishable from these *)
  let direct = Echo.Verify.run ~source:src () in
  let direct_edited = Echo.Verify.run ~source:edited () in
  (* the 20-job mixed stream of the acceptance gate: 1 cold + 12 warm
     duplicates + 1 incremental + 5 incremental duplicates + 1 job whose
     first worker attempt is killed mid-proof *)
  let specs =
    [ Serve.Protocol.job ~id:"cold" ~source:src () ]
    @ List.init 12 (fun i ->
          Serve.Protocol.job ~id:(Printf.sprintf "dup-%02d" (i + 1)) ~source:src ())
    @ [ Serve.Protocol.job ~id:"incr" ~source:edited ~baseline_job:"cold" () ]
    @ List.init 5 (fun i ->
          Serve.Protocol.job
            ~id:(Printf.sprintf "incr-dup-%02d" (i + 1))
            ~source:edited ~baseline_job:"cold" ())
    @ [ Serve.Protocol.job ~id:"crash" ~source:src ~fail:"crash" () ]
  in
  let dup_submissions = 17 in
  let config =
    { Serve.Daemon.default_config with
      Serve.Daemon.dc_jobs = 2;
      dc_capacity = 32;
      dc_cache_dir = Some (serve_temp_dir "cache");
      dc_state_dir = Some (serve_temp_dir "state") }
  in
  let t0 = Unix.gettimeofday () in
  let results, stats =
    Serve.Client.with_daemon ~config (fun cl ->
        let results =
          List.map
            (fun js ->
              let t = Unix.gettimeofday () in
              match Serve.Client.run_job cl js with
              | Ok (outcome, dedup, attempts) ->
                  (js.Serve.Protocol.js_id, outcome, dedup, attempts,
                   Unix.gettimeofday () -. t)
              | Error e ->
                  failwith
                    (Printf.sprintf "serve bench: job %s rejected: %s"
                       js.Serve.Protocol.js_id e))
            specs
        in
        let stats =
          match Serve.Client.stats cl with
          | Ok st -> st
          | Error e -> failwith ("serve bench: stats after stream: " ^ e)
        in
        (results, stats))
  in
  let total_s = Unix.gettimeofday () -. t0 in
  let find id =
    let _, o, d, a, l = List.find (fun (i, _, _, _, _) -> i = id) results in
    (o, d, a, l)
  in
  let cold, _, _, _ = find "cold" in
  let incr, _, _, _ = find "incr" in
  let crash, _, crash_attempts, _ = find "crash" in
  let latencies = List.map (fun (_, _, _, _, l) -> l) results in
  let dedup_hits =
    List.length (List.filter (fun (_, _, d, _, _) -> d) results)
  in
  let hit_rate =
    if dup_submissions = 0 then 100.0
    else 100.0 *. float_of_int dedup_hits /. float_of_int dup_submissions
  in
  let jobs_per_sec =
    if total_s <= 0.0 then 0.0
    else float_of_int (List.length results) /. total_s
  in
  let vcs_proved =
    List.fold_left
      (fun acc (_, (o : Serve.Protocol.wire_outcome), dedup, _, _) ->
        if dedup then acc else acc + o.Serve.Protocol.w_total - o.Serve.Protocol.w_carried)
      0 results
  in
  let vcs_per_sec =
    if total_s <= 0.0 then 0.0 else float_of_int vcs_proved /. total_s
  in
  let p50 = serve_percentile 50.0 latencies in
  let p95 = serve_percentile 95.0 latencies in
  let identical_cold =
    serve_verdict_keys direct.Echo.Verify.vj_results
    = serve_verdict_keys cold.Serve.Protocol.w_results
  in
  let identical_incr =
    serve_verdict_keys direct_edited.Echo.Verify.vj_results
    = serve_verdict_keys incr.Serve.Protocol.w_results
  in
  let identical_crash =
    serve_verdict_keys direct.Echo.Verify.vj_results
    = serve_verdict_keys crash.Serve.Protocol.w_results
  in
  let incr_total = incr.Serve.Protocol.w_total in
  let reproved = incr_total - incr.Serve.Protocol.w_carried in
  let reproved_pct =
    if incr_total = 0 then 0.0
    else 100.0 *. float_of_int reproved /. float_of_int incr_total
  in
  (* the daemon answered a stats request after the injected crash, so it
     survived it; the worker pool is what restarted *)
  let daemon_restarts = 0 in
  Fmt.pr "  %d jobs in %.2fs (%.1f jobs/s, %d VCs proved, %.1f VCs/s)@."
    (List.length results) total_s jobs_per_sec vcs_proved vcs_per_sec;
  Fmt.pr "  latency p50 %.3fs p95 %.3fs@." p50 p95;
  Fmt.pr "  dedup: %d/%d duplicate submissions hit (%.1f%%)@." dedup_hits
    dup_submissions hit_rate;
  Fmt.pr "  verdict identity vs one-shot: cold %b, incremental %b, crash-retry %b@."
    identical_cold identical_incr identical_crash;
  Fmt.pr "  incremental: %d/%d VCs re-proved (%.1f%%)@." reproved incr_total
    reproved_pct;
  Fmt.pr
    "  crash injection: %d attempt(s), %d worker crash(es), %d restart(s), daemon restarts %d@."
    crash_attempts stats.Serve.Protocol.st_worker_crashes
    stats.Serve.Protocol.st_worker_restarts daemon_restarts;
  let json =
    Printf.sprintf
      {|{
  "case": "stream-20-job-stream",
  "workers": 2,
  "jobs_submitted": %d,
  "completed": %d,
  "dup_submissions": %d,
  "dedup_hits": %d,
  "dedup_hit_rate_pct": %.1f,
  "jobs_per_sec": %.2f,
  "vcs_proved": %d,
  "vcs_per_sec": %.2f,
  "latency_p50_seconds": %.4f,
  "latency_p95_seconds": %.4f,
  "verdicts_identical_cold": %b,
  "verdicts_identical_incremental": %b,
  "verdicts_identical_crash_retry": %b,
  "incremental_total_vcs": %d,
  "incremental_reproved_vcs": %d,
  "incremental_reproved_pct": %.1f,
  "crash_job_attempts": %d,
  "worker_crashes": %d,
  "worker_restarts": %d,
  "daemon_restarts": %d,
  "total_seconds": %.3f
}
|}
      (List.length specs) stats.Serve.Protocol.st_completed dup_submissions
      dedup_hits hit_rate jobs_per_sec vcs_proved vcs_per_sec p50 p95
      identical_cold identical_incr identical_crash incr_total reproved
      reproved_pct crash_attempts stats.Serve.Protocol.st_worker_crashes
      stats.Serve.Protocol.st_worker_restarts daemon_restarts total_s
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc json;
  close_out oc;
  Fmt.pr "wrote BENCH_serve.json@.";
  serve_rates := (jobs_per_sec, p95)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the machinery                          *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let env0, prog0 = Aes.Aes_impl.checked () in
  let key = Aes.Aes_kat.key_bytes (List.hd Aes.Aes_kat.vectors) in
  let pt = Aes.Aes_kat.plaintext_bytes (List.hd Aes.Aes_kat.vectors) in
  let t_interp =
    Test.make ~name:"interp: encrypt_block (AES-128)" (Staged.stage (fun () ->
        ignore (Aes.Aes_kat.run_block env0 prog0 ~entry:"encrypt_block" ~key ~nk:4 ~input:pt)))
  in
  let sample_vc =
    lazy
      (let env, annotated = Lazy.force final_annotated in
       let report = Vcgen.generate env annotated in
       List.hd (Vcgen.all_vcs report))
  in
  let t_simplify =
    Test.make ~name:"simplify: one VC of the final program"
      (Staged.stage (fun () -> ignore (Logic.Simplify.simplify_vc (Lazy.force sample_vc))))
  in
  let t_prove =
    Test.make ~name:"prove: one VC of the final program"
      (Staged.stage (fun () -> ignore (Logic.Prover.prove_vc (Lazy.force sample_vc))))
  in
  let t_metrics =
    Test.make ~name:"metrics: analyze optimized AES"
      (Staged.stage (fun () -> ignore (Metrics.analyze prog0)))
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    let results = Benchmark.all cfg [ clock ] test in
    Hashtbl.iter
      (fun name raws ->
        match
          Analyze.one
            (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
            clock raws
        with
        | ols -> (
            match Analyze.OLS.estimates ols with
            | Some [ est ] -> Fmt.pr "  %-44s %10.1f ns/run@." name est
            | _ -> Fmt.pr "  %-44s (no estimate)@." name)
        | exception _ -> Fmt.pr "  %-44s (analysis failed)@." name)
      results
  in
  List.iter benchmark [ t_interp; t_simplify; t_prove; t_metrics ]

(* ------------------------------------------------------------------ *)

let () =
  Fmt.pr "Echo verification-refactoring benchmark harness@.";
  if quick then Fmt.pr "(--quick: skipping the defect experiment)@.";
  if smoke then Fmt.pr "(--smoke: orchestrated pipeline + telemetry artifacts only)@.";
  let t0 = Unix.gettimeofday () in
  if smoke then begin
    serve_json ();
    pipeline_json ();
    analysis_json ();
    prover_json ();
    farm_json ();
    certify_json ();
    impact_json ()
  end
  else begin
    (* serve first: the daemon forks worker processes, and Unix.fork is
       forbidden once any section has spawned a farm domain *)
    if want "serve" || !only = None then serve_json ();
    if want "fig2ab" || !only = None then fig2_metrics ();
    if want "fig2cde" || !only = None then fig2_vcs ();
    if want "fig2f" || !only = None then fig2f ();
    if want "table1" || !only = None then table1 ();
    if want "impl_proof" || !only = None then impl_proof ();
    if want "implication" || !only = None then implication_proof ();
    if (want "tables23" || !only = None) && not quick then tables23 ();
    if want "ablation_simplify" || !only = None then ablation_simplifier ();
    if want "ablation_mapping" || !only = None then ablation_mapping ();
    if want "ablation_order" || !only = None then ablation_order ();
    if want "pipeline" || !only = None then pipeline_json ();
    if want "analysis" || !only = None then analysis_json ();
    if want "prover" || !only = None then prover_json ();
    if want "farm" || !only = None then farm_json ();
    if want "certify" || !only = None then certify_json ();
    if want "impact" || !only = None then impact_json ();
    if want "micro" || !only = None then micro_benchmarks ()
  end;
  Fmt.pr "@.total: %.1fs@." (Unix.gettimeofday () -. t0)
